//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds without network access, so this vendored crate
//! provides exactly the surface the code uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] and [`Rng::gen_bool`] —
//! on top of a xoshiro256++ generator seeded via SplitMix64. Streams are
//! deterministic per seed (which the test suite relies on) but do **not**
//! match upstream `rand`'s streams.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 64 fresh bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive). The output
    /// type is its own parameter so integer literals in the range infer from
    /// the call site, exactly as with upstream `rand`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// A generator whose stream is a deterministic function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// `f64` uniform in `[0, 1)` from 53 random bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// A range type [`Rng::gen_range`] can sample a `T` from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..5);
            assert!((-3..5).contains(&v));
            let f = rng.gen_range(-1.5..=2.5);
            assert!((-1.5..=2.5).contains(&f));
            let u = rng.gen_range(0..7usize);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_bool_frequency_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 produced {hits}/10000");
    }
}
