//! Offline stand-in for `criterion`.
//!
//! A minimal-but-working bench harness exposing the subset of criterion's API
//! the workspace's benches use: [`Criterion::benchmark_group`] /
//! [`Criterion::bench_function`] / `bench_with_input`, [`Bencher::iter`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark is timed for a fixed number of
//! batched samples and reported as `mean ± 95% CI` on stdout. There is no
//! statistical outlier analysis, no warm-up tuning, and no HTML report.
//!
//! Honors `--bench` (ignored filter position) the way `cargo bench` passes it.

#![warn(missing_docs)]

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level handle handed to every bench function.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench` appends `--bench`; a bare positional arg is a filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with("--") && !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Begins a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), sample_size: 20 }
    }

    /// Times a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        run_bench(self, None, &id.0, 20, f);
    }
}

/// A named group sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion's default is 100).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Times one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        let id = id.into();
        let (name, n) = (self.name.clone(), self.sample_size);
        run_bench(self.criterion, Some(&name), &id.0, n, f);
    }

    /// Times one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (report flushing is immediate here, so this is a no-op).
    pub fn finish(self) {}
}

/// A benchmark's display identity.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Just the parameter as the name.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Passed to the closure; its [`iter`](Bencher::iter) runs the measured code.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, amortizing over enough iterations per sample that a
    /// single sample is at least ~1ms.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate the per-sample iteration count.
        let mut iters = 1usize;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = t0.elapsed().as_secs_f64();
            if dt >= 1e-3 || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / iters as f64);
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    group: Option<&str>,
    id: &str,
    sample_size: usize,
    mut f: F,
) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if let Some(filter) = &criterion.filter {
        if !full.contains(filter.as_str()) {
            return;
        }
    }
    let mut b = Bencher { samples: Vec::new(), sample_size };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{full:<50} (no samples)");
        return;
    }
    let n = b.samples.len() as f64;
    let mean = b.samples.iter().sum::<f64>() / n;
    let var = if b.samples.len() > 1 {
        b.samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    let ci = 1.96 * (var / n).sqrt();
    println!("{full:<50} {:>12} ± {}", fmt_time(mean), fmt_time(ci));
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collects bench functions into a runnable group, as criterion's macro does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_times_and_reports() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_function("busy", |b| {
            b.iter(|| {
                ran += 1;
                (0..100u64).sum::<u64>()
            })
        });
        group.finish();
        assert!(ran > 0, "the routine must actually run");
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).0, "f/8");
        assert_eq!(BenchmarkId::from_parameter("native").0, "native");
    }
}
