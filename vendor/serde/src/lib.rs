//! Offline stand-in for `serde`.
//!
//! The workspace annotates its value types with
//! `#[derive(Serialize, Deserialize)]` so that downstream users with the real
//! `serde` can swap it in, but the offline build has no registry access. This
//! proc-macro crate supplies both derives as no-ops: the attribute compiles,
//! no trait impls are generated, and nothing in-tree depends on them (the
//! engine's wire format is the hand-rolled `knn_engine::json` module).

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`'s derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`'s derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
