//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest's API that this workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, range / tuple / collection / option / sample strategies,
//! [`any`] for primitives, and the `prop_assert*` / `prop_assume!` macros.
//! Failing cases are reported with their seed and case number but are **not
//! shrunk** — this is a test harness for an offline build, not a replacement
//! for upstream proptest.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng as _, RngCore, SeedableRng};

pub mod test_runner {
    //! Runner configuration and case-level error type.

    /// Mirror of `proptest::test_runner::Config` (only `cases` is honored).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// A `prop_assert*` failed; the test fails.
        Fail(String),
    }
}

pub use test_runner::{Config as ProptestConfig, TestCaseError};

/// The generator driving every strategy: the workspace's vendored `StdRng`.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic per-(test, case) generator.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// A strategy generating a value, then sampling from the strategy `f`
    /// builds from it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample_value(rng)).sample_value(rng)
    }
}

/// A strategy always yielding a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f64);

/// String strategies: upstream proptest interprets `&str` as a regex. This
/// stand-in ignores the pattern's structure and produces printable text whose
/// length honors a trailing `{lo,hi}` repetition if present (covering the
/// `"\\PC{0,200}"` fuzz-input idiom); everything else gets length 0..=64.
impl Strategy for &'static str {
    type Value = String;
    fn sample_value(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repeat_suffix(self).unwrap_or((0, 64));
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| {
                // Mostly ASCII printable, occasionally wider unicode.
                if rng.gen_bool(0.9) {
                    rng.gen_range(0x20u32..0x7f) as u8 as char
                } else {
                    char::from_u32(rng.gen_range(0xA1u32..0x2FF)).unwrap_or('¿')
                }
            })
            .collect()
    }
}

fn parse_repeat_suffix(pat: &str) -> Option<(usize, usize)> {
    let body = pat.strip_suffix('}')?;
    let brace = body.rfind('{')?;
    let (lo, hi) = body[brace + 1..].split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) (A, B, C, D, E, F)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — an unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias toward small magnitudes half the time: property tests
                // hit more edge cases near zero than in the far tails.
                let raw = rng.next_u64() as u128 | ((rng.next_u64() as u128) << 64);
                if rng.gen_bool(0.5) {
                    (raw % 1000) as $t
                } else {
                    raw as $t
                }
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, i128, u8, u16, u32, u64, u128, usize, isize);

pub mod collection {
    //! Collection strategies (`vec`, `btree_map`).

    use super::{Strategy, TestRng};
    use rand::Rng as _;
    use std::collections::BTreeMap;
    use std::ops::{Range, RangeInclusive};

    /// Anything usable as a collection-size specification.
    pub trait SizeRange {
        /// Draws a target size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    /// A `Vec` of `len` samples of `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V, L> {
        key: K,
        value: V,
        len: L,
    }

    impl<K, V, L> Strategy for BTreeMapStrategy<K, V, L>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        L: SizeRange,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.len.pick(rng);
            let mut out = BTreeMap::new();
            // Key collisions make an exact size unreachable in general; cap
            // the attempts and accept whatever distinct keys were drawn.
            for _ in 0..(target.max(1) * 20) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.sample_value(rng), self.value.sample_value(rng));
            }
            out
        }
    }

    /// A `BTreeMap` with about `len` entries (exact when the key space allows).
    pub fn btree_map<K, V, L>(key: K, value: V, len: L) -> BTreeMapStrategy<K, V, L>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        L: SizeRange,
    {
        BTreeMapStrategy { key, value, len }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// See [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            rng.gen_bool(0.75).then(|| self.0.sample_value(rng))
        }
    }

    /// `Some` of a sample three quarters of the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod sample {
    //! Sampling from explicit choices.

    use super::{Strategy, TestRng};
    use rand::{Rng as _, RngCore as _};

    /// See [`select`].
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample_value(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "select() needs a non-empty choice set");
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }

    /// A uniformly random element of `choices`.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        Select(choices)
    }

    /// A position into a not-yet-known collection: `any::<Index>()` then
    /// `idx.index(len)`.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// This index resolved against a collection of `len` elements.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl super::Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

pub mod strategy {
    //! Re-exports mirroring `proptest::strategy`.
    pub use super::{Just, Strategy};
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{any, Arbitrary, Just, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced strategy modules, as upstream's prelude exposes them.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Defines `#[test]` functions that run their body over many sampled inputs.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     fn addition_commutes(a in 0..100i64, b in 0..100i64) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::proptest!( @impl ($cfg) $($rest)* );
    };
    ( @impl ($cfg:expr) ) => {};
    ( @impl ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), cfg.cases, |rng| {
                $( let $pat = $crate::Strategy::sample_value(&($strat), rng); )+
                #[allow(clippy::redundant_closure_call)]
                (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })()
            });
        }
        $crate::proptest!( @impl ($cfg) $($rest)* );
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!( @impl ($crate::ProptestConfig::default()) $($rest)* );
    };
}

/// Runs `case` for `cases` deterministic seeds; panics on the first failure.
/// Called by the [`proptest!`] expansion — not part of upstream's API.
pub fn run_cases<F>(name: &str, cases: u32, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rejected = 0u32;
    for i in 0..cases as u64 {
        let mut rng = TestRng::for_case(name, i);
        match case(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}`: case {i}/{cases} failed: {msg}")
            }
        }
    }
    if rejected * 4 > cases * 3 {
        panic!("proptest `{name}`: {rejected}/{cases} cases rejected by prop_assume!");
    }
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($a), stringify!($b), a, b, format!($($fmt)+)
            )));
        }
    }};
}

/// `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Skips the current case when its sampled inputs don't satisfy `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        fn ranges_and_tuples((a, b) in (0..10i32, 5..=9usize), v in prop::collection::vec(any::<bool>(), 0..4)) {
            prop_assert!((0..10).contains(&a));
            prop_assert!((5..=9).contains(&b));
            prop_assert!(v.len() < 4);
        }

        fn flat_map_dependent(pair in (1..=5usize).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0..100u32, n))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }

        fn assume_skips(x in 0..100i32) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failures_panic_with_case_info() {
        crate::run_cases("always_fails", 4, |_rng| Err(crate::TestCaseError::Fail("boom".into())));
    }
}
