//! KD-tree for dense `f64` points under any ℓp metric.
//!
//! Standard median-split construction and branch-and-bound k-NN search. The
//! pruning bound uses the splitting-plane distance raised to the p-th power,
//! which lower-bounds the true `dist^p` for every p ≥ 1, so search is exact
//! for all ℓp metrics.

use knn_space::LpMetric;
use std::collections::BinaryHeap;

#[derive(Debug)]
enum Node {
    Leaf {
        /// Indices into the point array.
        items: Vec<u32>,
    },
    Split {
        axis: u16,
        value: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// An exact KD-tree index.
#[derive(Debug)]
pub struct KdTree {
    points: Vec<Vec<f64>>,
    metric: LpMetric,
    root: Node,
}

const LEAF_SIZE: usize = 12;

/// Max-heap entry so the `BinaryHeap` keeps the *worst* current neighbor on top.
struct HeapItem {
    dist: f64,
    idx: usize,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.idx == other.idx
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Larger distance first; on ties, larger index first so that the
        // retained set prefers smaller indices (deterministic order).
        self.dist
            .partial_cmp(&other.dist)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.idx.cmp(&other.idx))
    }
}

impl KdTree {
    /// Builds the tree in `O(n log² n)`.
    pub fn new(points: Vec<Vec<f64>>, metric: LpMetric) -> Self {
        assert!(!points.is_empty(), "KdTree needs at least one point");
        let dim = points[0].len();
        assert!(points.iter().all(|p| p.len() == dim));
        let mut items: Vec<u32> = (0..points.len() as u32).collect();
        let root = Self::build(&points, &mut items, 0, dim);
        KdTree { points, metric, root }
    }

    fn build(points: &[Vec<f64>], items: &mut [u32], depth: usize, dim: usize) -> Node {
        if items.len() <= LEAF_SIZE {
            return Node::Leaf { items: items.to_vec() };
        }
        let axis = depth % dim;
        items.sort_by(|&a, &b| {
            points[a as usize][axis]
                .partial_cmp(&points[b as usize][axis])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mid = items.len() / 2;
        let value = points[items[mid] as usize][axis];
        let (l, r) = items.split_at_mut(mid);
        // Degenerate axis (all equal): fall back to a leaf to guarantee progress.
        if l.is_empty() || r.is_empty() {
            return Node::Leaf { items: items.to_vec() };
        }
        Node::Split {
            axis: axis as u16,
            value,
            left: Box::new(Self::build(points, l, depth + 1, dim)),
            right: Box::new(Self::build(points, r, depth + 1, dim)),
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff no points are indexed (impossible by construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `k` nearest neighbors of `q` as `(index, distance^p)`, sorted.
    pub fn knn(&self, q: &[f64], k: usize) -> Vec<(usize, f64)> {
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
        let mut visited = 0u64;
        self.search(&self.root, q, k, &mut heap, &mut visited);
        crate::tally::bump_kd_node_visits(visited);
        let out: Vec<(usize, f64)> = heap.into_iter().map(|h| (h.idx, h.dist)).collect();
        crate::finalize_neighbors(out, k)
    }

    /// Approximate heap footprint in bytes: the owned point copies plus the
    /// tree nodes. An estimate for the resource-accounting gauges.
    pub fn approx_bytes(&self) -> usize {
        fn node_bytes(node: &Node) -> usize {
            std::mem::size_of::<Node>()
                + match node {
                    Node::Leaf { items } => items.len() * std::mem::size_of::<u32>(),
                    Node::Split { left, right, .. } => node_bytes(left) + node_bytes(right),
                }
        }
        let dim = self.points.first().map(|p| p.len()).unwrap_or(0);
        self.points.len() * (dim * std::mem::size_of::<f64>() + 24) + node_bytes(&self.root)
    }

    /// The nearest neighbor of `q`.
    pub fn nearest(&self, q: &[f64]) -> (usize, f64) {
        self.knn(q, 1)[0]
    }

    fn search(
        &self,
        node: &Node,
        q: &[f64],
        k: usize,
        heap: &mut BinaryHeap<HeapItem>,
        visited: &mut u64,
    ) {
        *visited += 1;
        match node {
            Node::Leaf { items } => {
                for &i in items {
                    let d = self.metric.dist_pow(q, &self.points[i as usize]);
                    if heap.len() < k {
                        heap.push(HeapItem { dist: d, idx: i as usize });
                    } else if let Some(top) = heap.peek() {
                        if d < top.dist || (d == top.dist && (i as usize) < top.idx) {
                            heap.pop();
                            heap.push(HeapItem { dist: d, idx: i as usize });
                        }
                    }
                }
            }
            Node::Split { axis, value, left, right } => {
                let delta = q[*axis as usize] - value;
                let (near, far) = if delta < 0.0 { (left, right) } else { (right, left) };
                self.search(near, q, k, heap, visited);
                // Visit the far side only if the splitting plane is closer
                // than the current worst neighbor (p-th power comparison).
                let plane_pow = delta.abs().powi(self.metric.p() as i32);
                let must_visit =
                    heap.len() < k || heap.peek().is_some_and(|top| plane_pow <= top.dist);
                if must_visit {
                    self.search(far, q, k, heap, visited);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(rng: &mut StdRng, n: usize, d: usize) -> Vec<Vec<f64>> {
        (0..n).map(|_| (0..d).map(|_| rng.gen_range(-10.0..10.0)).collect()).collect()
    }

    #[test]
    fn matches_brute_force_l2() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = random_points(&mut rng, 300, 5);
        let tree = KdTree::new(pts.clone(), LpMetric::L2);
        let brute = BruteForceIndex::new(pts, LpMetric::L2);
        for _ in 0..50 {
            let q: Vec<f64> = (0..5).map(|_| rng.gen_range(-12.0..12.0)).collect();
            let a = tree.knn(&q, 7);
            let b = brute.knn(&q, 7);
            assert_eq!(
                a.iter().map(|x| x.0).collect::<Vec<_>>(),
                b.iter().map(|x| x.0).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn matches_brute_force_l1() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts = random_points(&mut rng, 200, 3);
        let tree = KdTree::new(pts.clone(), LpMetric::L1);
        let brute = BruteForceIndex::new(pts, LpMetric::L1);
        for _ in 0..50 {
            let q: Vec<f64> = (0..3).map(|_| rng.gen_range(-12.0..12.0)).collect();
            assert_eq!(tree.nearest(&q).0, brute.nearest(&q).unwrap().0);
        }
    }

    #[test]
    fn duplicated_coordinates() {
        // Many identical points stress the degenerate-split path.
        let mut pts = vec![vec![1.0, 1.0]; 40];
        pts.push(vec![2.0, 2.0]);
        let tree = KdTree::new(pts, LpMetric::L2);
        assert_eq!(tree.nearest(&[2.1, 2.1]).0, 40);
        assert_eq!(tree.nearest(&[1.0, 1.0]).0, 0);
    }

    #[test]
    fn k_larger_than_n() {
        let pts = vec![vec![0.0], vec![1.0]];
        let tree = KdTree::new(pts, LpMetric::L2);
        let nn = tree.knn(&[0.2], 10);
        assert_eq!(nn.len(), 2);
        assert_eq!(nn[0].0, 0);
    }
}
