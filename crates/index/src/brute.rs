//! Reference linear-scan index over any field and ℓp metric.

use knn_num::Field;
use knn_space::LpMetric;

/// Exact k-NN by linear scan. Distances are compared on their p-th powers,
/// which is exact in the `Rat` instantiation.
#[derive(Clone, Debug)]
pub struct BruteForceIndex<F> {
    points: Vec<Vec<F>>,
    metric: LpMetric,
}

impl<F: Field> BruteForceIndex<F> {
    /// Builds the index (stores the points).
    pub fn new(points: Vec<Vec<F>>, metric: LpMetric) -> Self {
        BruteForceIndex { points, metric }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff the index is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The stored point `i`.
    pub fn point(&self, i: usize) -> &[F] {
        &self.points[i]
    }

    /// The `k` nearest neighbors of `q` as `(index, distance^p)`, sorted by
    /// distance then index.
    pub fn knn(&self, q: &[F], k: usize) -> Vec<(usize, F)> {
        let all: Vec<(usize, F)> =
            self.points.iter().enumerate().map(|(i, p)| (i, self.metric.dist_pow(q, p))).collect();
        crate::finalize_neighbors(all, k)
    }

    /// The nearest neighbor of `q` (index, distance^p); `None` when empty.
    pub fn nearest(&self, q: &[F]) -> Option<(usize, F)> {
        self.knn(q, 1).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_num::Rat;

    #[test]
    fn nearest_and_knn() {
        let pts = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 2.0]];
        let idx = BruteForceIndex::new(pts, LpMetric::L2);
        assert_eq!(idx.len(), 3);
        let nn = idx.nearest(&[0.9, 0.1]).unwrap();
        assert_eq!(nn.0, 1);
        let two = idx.knn(&[0.0, 0.0], 2);
        assert_eq!(two[0].0, 0);
        assert_eq!(two[1].0, 1);
    }

    #[test]
    fn tie_break_by_index() {
        let pts = vec![vec![1.0], vec![-1.0], vec![1.0]];
        let idx = BruteForceIndex::new(pts, LpMetric::L1);
        let nn = idx.knn(&[0.0], 3);
        assert_eq!(nn.iter().map(|x| x.0).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn exact_ties_with_rationals() {
        let pts = vec![vec![Rat::frac(1, 3), Rat::zero()], vec![Rat::frac(-1, 3), Rat::zero()]];
        let idx = BruteForceIndex::new(pts, LpMetric::L2);
        let nn = idx.knn(&[Rat::zero(), Rat::zero()], 2);
        assert_eq!(nn[0].1, nn[1].1, "exactly equidistant");
        assert_eq!(nn[0].0, 0, "tie broken by index");
    }
}
