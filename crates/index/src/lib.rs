//! Exact nearest-neighbor search structures (the FAISS substitute of §9.2).
//!
//! The explanation algorithms only ever need *exact* k-NN queries — the
//! optimistic classifier's tie handling makes approximate search unsound — so
//! this crate provides exact structures with different performance envelopes:
//!
//! * [`BruteForceIndex`] — linear scan, any ℓp, any field; the reference.
//! * [`KdTree`] — axis-aligned splits with branch-and-bound search for dense
//!   `f64` data under any ℓp (per-axis distance lower bounds are valid for
//!   every p ≥ 1); the workhorse behind the Figure 6a sweep.
//! * [`VpTree`] — vantage-point tree for arbitrary metrics given as a
//!   closure, pruning through the triangle inequality.
//! * [`HammingIndex`] — bit-packed linear scan with per-word popcount and
//!   early abort; the discrete-setting workhorse.
//!
//! All structures return `(point index, distance key)` pairs sorted by
//! distance, ties broken by index, so every caller observes identical,
//! deterministic neighbor orders.
//!
//! ```
//! use knn_index::KdTree;
//! use knn_space::LpMetric;
//!
//! let tree = KdTree::new(
//!     vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![5.0, 5.0]],
//!     LpMetric::L2,
//! );
//! let hits = tree.knn(&[0.9, 0.1], 2);            // (index, ℓ2²) pairs
//! assert_eq!(hits[0].0, 1);                        // (1,0) is closest
//! assert_eq!(hits[1].0, 0);
//! ```

#![warn(missing_docs)]

pub mod brute;
pub mod hamming;
pub mod kdtree;
pub mod vptree;

/// Thread-local work tally for resource accounting.
///
/// Search structures bump a plain thread-local counter as they work; the
/// serving engine reads the counter before and after a query's compute phase
/// and attributes the delta to the query's route. Because a single query
/// executes entirely on one worker thread, the delta is exact, and because
/// the counter is a non-atomic `Cell` the bump costs ~1 ns — it never touches
/// shared state, so the byte-determinism contract is untouched.
pub mod tally {
    use std::cell::Cell;

    thread_local! {
        static KD_NODE_VISITS: Cell<u64> = const { Cell::new(0) };
    }

    /// Monotonic count of KD-tree nodes visited on this thread.
    pub fn kd_node_visits() -> u64 {
        KD_NODE_VISITS.with(|c| c.get())
    }

    pub(crate) fn bump_kd_node_visits(n: u64) {
        KD_NODE_VISITS.with(|c| c.set(c.get().wrapping_add(n)));
    }
}

pub use brute::BruteForceIndex;
pub use hamming::HammingIndex;
pub use kdtree::KdTree;
pub use vptree::VpTree;

/// Sorts `(index, key)` pairs by key then index, truncating to `k`.
pub(crate) fn finalize_neighbors<D: PartialOrd>(
    mut out: Vec<(usize, D)>,
    k: usize,
) -> Vec<(usize, D)> {
    out.sort_by(|a, b| {
        a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    out.truncate(k);
    out
}
