//! Bit-packed linear scan for the discrete setting.

use knn_space::BitVec;

/// Exact k-NN over `{0,1}ⁿ` with XOR/popcount and an early-abort scan.
///
/// For the dataset sizes of the paper's experiments (hundreds to thousands of
/// points, dimensions ≤ ~800) a well-vectorized scan beats tree structures on
/// binary data; this is the discrete analogue of the FAISS flat index.
#[derive(Clone, Debug)]
pub struct HammingIndex {
    points: Vec<BitVec>,
}

impl HammingIndex {
    /// Builds the index.
    pub fn new(points: Vec<BitVec>) -> Self {
        if let Some(first) = points.first() {
            assert!(points.iter().all(|p| p.len() == first.len()));
        }
        HammingIndex { points }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The stored point `i`.
    pub fn point(&self, i: usize) -> &BitVec {
        &self.points[i]
    }

    /// Approximate heap footprint in bytes (the owned bit-packed points).
    pub fn approx_bytes(&self) -> usize {
        self.points.iter().map(|p| p.approx_bytes()).sum()
    }

    /// The `k` nearest neighbors of `q` as `(index, hamming distance)`.
    pub fn knn(&self, q: &BitVec, k: usize) -> Vec<(usize, usize)> {
        let all: Vec<(usize, usize)> =
            self.points.iter().enumerate().map(|(i, p)| (i, p.hamming(q))).collect();
        crate::finalize_neighbors(all, k)
    }

    /// The nearest neighbor of `q`; `None` when empty.
    pub fn nearest(&self, q: &BitVec) -> Option<(usize, usize)> {
        self.knn(q, 1).into_iter().next()
    }

    /// All points within Hamming distance `r` of `q` (the "ball query" used by
    /// brute-force counterfactual search), sorted by distance then index.
    pub fn within(&self, q: &BitVec, r: usize) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = self
            .points
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                let d = p.hamming(q);
                (d <= r).then_some((i, d))
            })
            .collect();
        out.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bv(bits: &[u8]) -> BitVec {
        BitVec::from_bits(bits)
    }

    #[test]
    fn nearest_neighbors() {
        let idx = HammingIndex::new(vec![bv(&[0, 0, 0, 0]), bv(&[1, 1, 0, 0]), bv(&[1, 1, 1, 1])]);
        let q = bv(&[1, 0, 0, 0]);
        assert_eq!(idx.nearest(&q), Some((0, 1)));
        let knn = idx.knn(&q, 3);
        assert_eq!(knn, vec![(0, 1), (1, 1), (2, 3)]);
    }

    #[test]
    fn within_ball() {
        let idx = HammingIndex::new(vec![bv(&[0, 0]), bv(&[0, 1]), bv(&[1, 1])]);
        let q = bv(&[0, 0]);
        assert_eq!(idx.within(&q, 1), vec![(0, 0), (1, 1)]);
        assert_eq!(idx.within(&q, 2).len(), 3);
        assert_eq!(idx.within(&q, 0), vec![(0, 0)]);
    }

    #[test]
    fn empty_index() {
        let idx = HammingIndex::new(vec![]);
        assert!(idx.is_empty());
        assert_eq!(idx.nearest(&bv(&[0])), None);
    }
}
