//! Vantage-point tree for arbitrary metrics.
//!
//! Works with any distance function satisfying the triangle inequality —
//! including the Hamming distance on [`knn_space::BitVec`] and true ℓp
//! distances (note: the *p-th power* of an ℓp distance for p ≥ 2 does **not**
//! satisfy the triangle inequality, so this structure takes real distances).

use std::collections::BinaryHeap;

#[derive(Debug)]
enum Node {
    Leaf(Vec<u32>),
    Ball { center: u32, radius: f64, inside: Box<Node>, outside: Box<Node> },
}

/// An exact VP-tree over points of type `P` with a caller-supplied metric.
pub struct VpTree<P> {
    points: Vec<P>,
    dist: Box<dyn Fn(&P, &P) -> f64 + Send + Sync>,
    root: Node,
}

const LEAF_SIZE: usize = 10;

struct HeapItem {
    dist: f64,
    idx: usize,
}
impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.idx == other.idx
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .partial_cmp(&other.dist)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.idx.cmp(&other.idx))
    }
}

impl<P> VpTree<P> {
    /// Builds the tree with the given metric.
    pub fn new(points: Vec<P>, dist: impl Fn(&P, &P) -> f64 + Send + Sync + 'static) -> Self {
        assert!(!points.is_empty(), "VpTree needs at least one point");
        let mut items: Vec<u32> = (0..points.len() as u32).collect();
        let root = Self::build(&points, &dist, &mut items);
        VpTree { points, dist: Box::new(dist), root }
    }

    fn build(points: &[P], dist: &impl Fn(&P, &P) -> f64, items: &mut [u32]) -> Node {
        if items.len() <= LEAF_SIZE {
            return Node::Leaf(items.to_vec());
        }
        // First item is the vantage point (deterministic choice).
        let vp = items[0];
        let mut rest: Vec<(u32, f64)> = items[1..]
            .iter()
            .map(|&i| (i, dist(&points[vp as usize], &points[i as usize])))
            .collect();
        rest.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let mid = rest.len() / 2;
        let radius = rest[mid].1;
        let mut inside: Vec<u32> = rest[..mid].iter().map(|x| x.0).collect();
        let mut outside: Vec<u32> = rest[mid..].iter().map(|x| x.0).collect();
        if inside.is_empty() || outside.is_empty() {
            return Node::Leaf(items.to_vec());
        }
        Node::Ball {
            center: vp,
            radius,
            inside: Box::new(Self::build(points, dist, &mut inside)),
            outside: Box::new(Self::build(points, dist, &mut outside)),
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff no points are indexed (impossible by construction).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `k` nearest neighbors of `q` as `(index, distance)`, sorted.
    pub fn knn(&self, q: &P, k: usize) -> Vec<(usize, f64)> {
        let mut heap = BinaryHeap::new();
        self.search(&self.root, q, k, &mut heap);
        let out: Vec<(usize, f64)> = heap.into_iter().map(|h| (h.idx, h.dist)).collect();
        crate::finalize_neighbors(out, k)
    }

    /// The nearest neighbor of `q`.
    pub fn nearest(&self, q: &P) -> (usize, f64) {
        self.knn(q, 1)[0]
    }

    fn offer(&self, heap: &mut BinaryHeap<HeapItem>, k: usize, idx: usize, d: f64) {
        if heap.len() < k {
            heap.push(HeapItem { dist: d, idx });
        } else if let Some(top) = heap.peek() {
            if d < top.dist || (d == top.dist && idx < top.idx) {
                heap.pop();
                heap.push(HeapItem { dist: d, idx });
            }
        }
    }

    fn search(&self, node: &Node, q: &P, k: usize, heap: &mut BinaryHeap<HeapItem>) {
        match node {
            Node::Leaf(items) => {
                for &i in items {
                    let d = (self.dist)(q, &self.points[i as usize]);
                    self.offer(heap, k, i as usize, d);
                }
            }
            Node::Ball { center, radius, inside, outside } => {
                let d = (self.dist)(q, &self.points[*center as usize]);
                self.offer(heap, k, *center as usize, d);
                let worst = |heap: &BinaryHeap<HeapItem>| {
                    if heap.len() < k {
                        f64::INFINITY
                    } else {
                        heap.peek().map_or(f64::INFINITY, |t| t.dist)
                    }
                };
                let (near, far, plane_gap) = if d < *radius {
                    (inside, outside, radius - d)
                } else {
                    (outside, inside, d - radius)
                };
                self.search(near, q, k, heap);
                if plane_gap <= worst(heap) {
                    self.search(far, q, k, heap);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_space::BitVec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn hamming_vp_tree_matches_linear_scan() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 250;
        let dim = 64;
        let pts: Vec<BitVec> =
            (0..n).map(|_| (0..dim).map(|_| rng.gen_bool(0.5)).collect()).collect();
        let tree = VpTree::new(pts.clone(), |a: &BitVec, b: &BitVec| a.hamming(b) as f64);
        for _ in 0..40 {
            let q: BitVec = (0..dim).map(|_| rng.gen_bool(0.5)).collect();
            let got = tree.knn(&q, 5);
            let mut want: Vec<(usize, f64)> =
                pts.iter().enumerate().map(|(i, p)| (i, p.hamming(&q) as f64)).collect();
            want.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
            want.truncate(5);
            assert_eq!(
                got.iter().map(|x| x.0).collect::<Vec<_>>(),
                want.iter().map(|x| x.0).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn euclidean_vp_tree() {
        let mut rng = StdRng::seed_from_u64(8);
        let pts: Vec<Vec<f64>> =
            (0..150).map(|_| (0..4).map(|_| rng.gen_range(-5.0..5.0)).collect()).collect();
        let l2 = |a: &Vec<f64>, b: &Vec<f64>| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
        };
        let tree = VpTree::new(pts.clone(), l2);
        for _ in 0..30 {
            let q: Vec<f64> = (0..4).map(|_| rng.gen_range(-6.0..6.0)).collect();
            let (gi, _) = tree.nearest(&q);
            let mut bi = 0;
            for i in 1..pts.len() {
                if l2(&pts[i], &q) < l2(&pts[bi], &q) {
                    bi = i;
                }
            }
            assert_eq!(gi, bi);
        }
    }

    #[test]
    fn identical_points() {
        let pts = vec![BitVec::zeros(8); 30];
        let tree = VpTree::new(pts, |a: &BitVec, b: &BitVec| a.hamming(b) as f64);
        let q = BitVec::ones(8);
        let nn = tree.knn(&q, 3);
        assert_eq!(nn.len(), 3);
        assert!(nn.iter().all(|&(_, d)| d == 8.0));
    }
}
