//! Property tests: every index structure returns exactly the brute-force
//! k-NN answer (same multiset of distances; same points up to ties) on
//! arbitrary inputs, including duplicate points and k ≥ n.

use knn_index::{BruteForceIndex, HammingIndex, KdTree, VpTree};
use knn_space::{BitVec, LpMetric};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Workload {
    pts: Vec<Vec<f64>>,
    q: Vec<f64>,
    k: usize,
}

fn workload() -> impl Strategy<Value = Workload> {
    (1..=5usize).prop_flat_map(|dim| {
        (
            prop::collection::vec(prop::collection::vec(-4..=4i32, dim), 1..=24),
            prop::collection::vec(-4..=4i32, dim),
            1..=8usize,
        )
            .prop_map(move |(pts, q, k)| Workload {
                pts: pts
                    .into_iter()
                    .map(|p| p.into_iter().map(|v| v as f64 / 2.0).collect())
                    .collect(),
                q: q.into_iter().map(|v| v as f64 / 2.0).collect(),
                k,
            })
    })
}

/// Sorted distance multiset — the tie-stable way to compare k-NN answers.
fn dists(ans: &[(usize, f64)]) -> Vec<f64> {
    let mut d: Vec<f64> = ans.iter().map(|&(_, d)| d).collect();
    d.sort_by(|a, b| a.partial_cmp(b).unwrap());
    d
}

fn close(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn kdtree_and_vptree_match_brute_force(w in workload(), p2 in any::<bool>()) {
        let metric = if p2 { LpMetric::L2 } else { LpMetric::L1 };
        let brute = BruteForceIndex::new(w.pts.clone(), metric);
        let kd = KdTree::new(w.pts.clone(), metric);
        let vp = VpTree::new(w.pts.clone(), move |a: &Vec<f64>, b: &Vec<f64>| {
            metric.dist_f64(a, b)
        });
        // Brute force and the KD-tree report p-th powers of distances; the
        // VP-tree works in the true-metric domain (it needs the triangle
        // inequality), so its answers are compared after re-powering.
        let want = dists(&brute.knn(&w.q, w.k));
        prop_assert!(close(&dists(&kd.knn(&w.q, w.k)), &want),
            "kd {:?} vs brute {:?}", dists(&kd.knn(&w.q, w.k)), want);
        let vp_pow: Vec<f64> = dists(&vp.knn(&w.q, w.k))
            .into_iter()
            .map(|d| if p2 { d * d } else { d })
            .collect();
        prop_assert!(close(&vp_pow, &want),
            "vp (re-powered) {vp_pow:?} vs brute {want:?}");
    }

    #[test]
    fn hamming_index_matches_naive_scan(
        pts in prop::collection::vec(prop::collection::vec(any::<bool>(), 6), 1..=20),
        q in prop::collection::vec(any::<bool>(), 6),
        k in 1..=6usize,
    ) {
        let bpts: Vec<BitVec> = pts.iter().map(|p| BitVec::from_bools(p)).collect();
        let bq = BitVec::from_bools(&q);
        let idx = HammingIndex::new(bpts.clone());
        let mut naive: Vec<usize> = bpts.iter().map(|p| p.hamming(&bq)).collect();
        naive.sort_unstable();
        naive.truncate(k);
        let mut got: Vec<usize> = idx.knn(&bq, k).into_iter().map(|(_, d)| d).collect();
        got.sort_unstable();
        prop_assert_eq!(got, naive);
    }
}
