//! Theorem 1: Vertex Cover → Minimum Sufficient Reason.
//!
//! **Discrete, k = 1** — `x̄ = 0ⁿ`, `S⁻` the edge incidence vectors, `S⁺` the
//! "guards": each edge vector with one of its two 1s flipped to 0. The proof
//! shows the sufficient reasons of `x̄` are *exactly* the vertex covers.
//!
//! **Continuous, any odd k, any ℓp** — each edge is represented by
//! `(k+1)/2` copies at heights `1 + ε_h` (with `1/2 > ε₁ > ⋯ > ε_{(k+1)/2}`)
//! and guards replace a `1 + ε_h` coordinate by `ε_h`.

use knn_core::{BitVec, BooleanDataset, ContinuousDataset, Label, OddK};
use knn_datasets::Graph;
use knn_num::Rat;

/// Discrete instance of Minimum-SR produced from a Vertex Cover instance.
#[derive(Clone, Debug)]
pub struct DiscreteMsrInstance {
    /// The dataset (S⁺ = guards, S⁻ = edge vectors).
    pub ds: BooleanDataset,
    /// The anchor point `x̄ = 0ⁿ`.
    pub x: BitVec,
}

/// Theorem 1(1): builds the discrete k = 1 instance.
/// Requires at least one edge.
pub fn discrete_instance(g: &Graph) -> DiscreteMsrInstance {
    assert!(g.n_edges() >= 1, "the construction needs at least one edge");
    let n = g.n_vertices();
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for (u, v) in g.edges() {
        let mut y = BitVec::zeros(n);
        y.set(u, true);
        y.set(v, true);
        neg.push(y.clone());
        // Guards: flip the first and second set components back to 0.
        pos.push(y.with_flipped(u));
        pos.push(y.with_flipped(v));
    }
    DiscreteMsrInstance { ds: BooleanDataset::from_sets(pos, neg), x: BitVec::zeros(n) }
}

/// Continuous instance of Minimum-SR (Theorem 1(2)); the same point set works
/// for every integer p ≥ 1.
#[derive(Clone, Debug)]
pub struct ContinuousMsrInstance {
    /// The dataset over exact rationals.
    pub ds: ContinuousDataset<Rat>,
    /// The anchor point `x̄ = 0ⁿ`.
    pub x: Vec<Rat>,
    /// The neighborhood size the instance targets.
    pub k: OddK,
}

/// Theorem 1(2): builds the continuous instance for neighborhood size `k`.
pub fn continuous_instance(g: &Graph, k: OddK) -> ContinuousMsrInstance {
    assert!(g.n_edges() >= 1);
    let n = g.n_vertices();
    let maj = k.majority();
    // 1/2 > ε₁ > … > ε_maj > 0: take ε_h = 1 / (2(h + 1)).
    let eps: Vec<Rat> = (1..=maj).map(|h| Rat::frac(1, 2 * (h as i64 + 1))).collect();
    let mut ds = ContinuousDataset::new(n);
    for (u, v) in g.edges() {
        for e in &eps {
            let mut y = vec![Rat::zero(); n];
            y[u] = Rat::one() + e.clone();
            y[v] = Rat::one() + e.clone();
            // Guards first (S⁺): one coordinate dropped to ε_h.
            let mut g1 = y.clone();
            g1[u] = e.clone();
            let mut g2 = y.clone();
            g2[v] = e.clone();
            ds.push(g1, Label::Positive);
            ds.push(g2, Label::Positive);
            ds.push(y, Label::Negative);
        }
    }
    ContinuousMsrInstance { ds, x: vec![Rat::zero(); n], k }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_core::abductive::hamming::HammingAbductive;
    use knn_core::abductive::l1::L1Abductive;
    use knn_core::abductive::l2::L2Abductive;
    use knn_core::classifier::{BooleanKnn, ContinuousKnn};
    use knn_core::LpMetric;
    use knn_datasets::graphs::random_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_graphs() -> Vec<Graph> {
        let mut gs = vec![
            Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]), // triangle
            Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]), // path
            Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]), // star
            Graph::from_edges(4, &[(0, 1), (2, 3)]),         // matching
        ];
        let mut rng = StdRng::seed_from_u64(100);
        for _ in 0..4 {
            let g = random_graph(&mut rng, 5, 0.5);
            if g.n_edges() >= 1 {
                gs.push(g);
            }
        }
        gs
    }

    #[test]
    fn discrete_anchor_is_positive() {
        for g in small_graphs() {
            let inst = discrete_instance(&g);
            let knn = BooleanKnn::new(&inst.ds, OddK::ONE);
            assert_eq!(knn.classify(&inst.x), Label::Positive, "f(x̄) must be 1");
        }
    }

    #[test]
    fn discrete_sufficient_reasons_are_exactly_vertex_covers() {
        for g in small_graphs() {
            if g.n_vertices() > 5 {
                continue;
            }
            let inst = discrete_instance(&g);
            let ab = HammingAbductive::new(&inst.ds, OddK::ONE);
            for mask in 0u32..(1 << g.n_vertices()) {
                let subset: Vec<usize> =
                    (0..g.n_vertices()).filter(|i| (mask >> i) & 1 == 1).collect();
                assert_eq!(
                    ab.is_sufficient(&inst.x, &subset),
                    g.is_vertex_cover(&subset),
                    "graph {g:?}, subset {subset:?}"
                );
            }
        }
    }

    #[test]
    fn discrete_minimum_sr_equals_minimum_vertex_cover() {
        for g in small_graphs() {
            let inst = discrete_instance(&g);
            let ab = HammingAbductive::new(&inst.ds, OddK::ONE);
            let msr = ab.minimum(&inst.x);
            assert_eq!(msr.len(), g.min_vertex_cover_size(), "graph {g:?}: MSR {msr:?}");
            assert!(g.is_vertex_cover(&msr), "an MSR must itself be a cover");
        }
    }

    #[test]
    fn continuous_anchor_is_positive_l2_and_l1() {
        for g in small_graphs() {
            for k in [OddK::ONE, OddK::THREE] {
                let inst = continuous_instance(&g, k);
                let l2 = ContinuousKnn::new(&inst.ds, LpMetric::L2, k);
                assert_eq!(l2.classify(&inst.x), Label::Positive);
                let l1 = ContinuousKnn::new(&inst.ds, LpMetric::L1, k);
                assert_eq!(l1.classify(&inst.x), Label::Positive);
            }
        }
    }

    #[test]
    fn continuous_l2_minimum_sr_equals_vertex_cover_k1() {
        for g in small_graphs() {
            if g.n_vertices() > 4 || g.n_edges() > 4 {
                continue; // LP-heavy; keep instances small
            }
            let inst = continuous_instance(&g, OddK::ONE);
            let ab = L2Abductive::new(&inst.ds, OddK::ONE);
            let msr = ab.minimum(&inst.x);
            assert_eq!(msr.len(), g.min_vertex_cover_size(), "graph {g:?}");
        }
    }

    #[test]
    fn continuous_l2_minimum_sr_equals_vertex_cover_k3() {
        // One modest instance: the triangle with k = 3.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let inst = continuous_instance(&g, OddK::THREE);
        let ab = L2Abductive::new(&inst.ds, OddK::THREE);
        let msr = ab.minimum(&inst.x);
        assert_eq!(msr.len(), g.min_vertex_cover_size());
    }

    #[test]
    fn continuous_l1_minimum_sr_equals_vertex_cover_k1() {
        for g in small_graphs() {
            if g.n_vertices() > 5 {
                continue;
            }
            let inst = continuous_instance(&g, OddK::ONE);
            let ab = L1Abductive::new(&inst.ds);
            let msr = ab.minimum(&inst.x);
            assert_eq!(msr.len(), g.min_vertex_cover_size(), "graph {g:?}");
        }
    }

    #[test]
    fn guards_are_strictly_closer_than_edges() {
        // The construction's balance: every guard is closer to x̄ than every
        // edge vector, for both metrics and all ε levels.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let inst = continuous_instance(&g, OddK::THREE);
        let m2 = LpMetric::L2;
        let mut guard_max: Option<Rat> = None;
        let mut edge_min: Option<Rat> = None;
        for (p, l) in inst.ds.iter() {
            let d = m2.dist_pow(&inst.x, p);
            match l {
                Label::Positive => guard_max = Some(guard_max.map_or(d.clone(), |g: Rat| g.max(d))),
                Label::Negative => edge_min = Some(edge_min.map_or(d.clone(), |g: Rat| g.min(d))),
            }
        }
        assert!(guard_max.unwrap() < edge_min.unwrap());
    }
}
