//! Theorem 7: Vertex Cover → k-Check Sufficient Reason({0,1}, D_H), k ≥ 3.
//!
//! Under the normalization `n/2 ≤ q ≤ n − 2` (achieved by the padding step
//! below), the constructed dataset over `{0,1}^{n + (k+1)/2 + (2q−n)}` has
//! the property that the **empty set** is not a sufficient reason for
//! `x̄ = 0̄` iff `G` has a vertex cover of size ≤ q. The same `(S⁺, S⁻, x̄)`
//! is reused by Theorem 8's Σ₂ᵖ-hardness of Minimum-SR.

use knn_core::{BitVec, BooleanDataset, OddK};
use knn_datasets::Graph;

/// The constructed Check-SR instance.
#[derive(Clone, Debug)]
pub struct VcCheckSrInstance {
    /// The dataset.
    pub ds: BooleanDataset,
    /// The anchor `x̄ = 0̄`.
    pub x: BitVec,
    /// The neighborhood size.
    pub k: OddK,
    /// The (possibly padded) graph's vertex count `n`.
    pub n: usize,
    /// The cover budget `q` after normalization.
    pub q: usize,
}

/// Result of normalizing a Vertex Cover budget.
#[derive(Clone, Debug)]
pub enum Normalized {
    /// The instance is trivially YES (`q ≥ n − 1`, or `q = 0` on an edgeless graph).
    TrivialYes,
    /// The instance is trivially NO (`q = 0` with at least one edge; the
    /// fresh-vertex padding needs `q ≥ 1`).
    TrivialNo,
    /// A normalized instance with `n/2 ≤ q ≤ n − 2`.
    Instance(Graph, usize),
}

/// Normalizes a Vertex Cover instance to `n/2 ≤ q ≤ n − 2` (proof of Thm 7):
/// when `1 ≤ q < n/2`, add `n − 2q` fresh vertices adjacent to all original
/// ones and replace `q` by `n − q`.
pub fn normalize(g: &Graph, q: usize) -> Normalized {
    let n = g.n_vertices();
    if q >= n.saturating_sub(1) {
        return Normalized::TrivialYes; // any n−1 vertices cover everything
    }
    if q == 0 {
        return if g.n_edges() == 0 { Normalized::TrivialYes } else { Normalized::TrivialNo };
    }
    if 2 * q >= n {
        return Normalized::Instance(g.clone(), q);
    }
    let fresh = n - 2 * q;
    let mut g2 = Graph::new(n + fresh);
    for (u, v) in g.edges() {
        g2.add_edge(u, v);
    }
    for f in 0..fresh {
        for v in 0..n {
            g2.add_edge(n + f, v);
        }
    }
    Normalized::Instance(g2, n - q)
}

/// Theorem 7's construction for a normalized instance (`n/2 ≤ q ≤ n − 2`).
pub fn instance(g: &Graph, q: usize, k: OddK) -> VcCheckSrInstance {
    let n = g.n_vertices();
    assert!(k.get() >= 3, "Theorem 7 concerns k ≥ 3");
    assert!(2 * q >= n && q <= n - 2, "instance must be normalized first");
    assert!(g.n_edges() >= 1);
    let maj = k.majority();
    let tail = 2 * q - n;
    let dim = n + maj + tail;

    // β ranges over {0,1}^maj \ {0}.
    let mut neg = Vec::new();
    for (u, v) in g.edges() {
        for beta_mask in 1u32..(1u32 << maj) {
            let mut p = BitVec::zeros(dim);
            p.set(u, true);
            p.set(v, true);
            for h in 0..maj {
                if (beta_mask >> h) & 1 == 1 {
                    p.set(n + h, true);
                }
            }
            for t in 0..tail {
                p.set(n + maj + t, true);
            }
            neg.push(p);
        }
    }
    // S⁺ = {(0ⁿ, α₁, 1^tail)} ∪ {(1ⁿ, α_h, 0^tail) : h = 2..maj}.
    let mut pos = Vec::new();
    {
        let mut p = BitVec::zeros(dim);
        p.set(n, true); // α₁
        for t in 0..tail {
            p.set(n + maj + t, true);
        }
        pos.push(p);
    }
    for h in 1..maj {
        let mut p = BitVec::zeros(dim);
        for i in 0..n {
            p.set(i, true);
        }
        p.set(n + h, true);
        pos.push(p);
    }
    VcCheckSrInstance { ds: BooleanDataset::from_sets(pos, neg), x: BitVec::zeros(dim), k, n, q }
}

/// End-to-end: does `G` have a vertex cover of size ≤ `q`, decided through
/// the reduction and the SAT-backed Check-SR of `knn-core`? (YES ⟺ the empty
/// set is NOT sufficient.) Returns the trivial answer for degenerate budgets.
pub fn vertex_cover_via_check_sr(g: &Graph, q: usize, k: OddK) -> bool {
    match normalize(g, q) {
        Normalized::TrivialYes => true,
        Normalized::TrivialNo => false,
        Normalized::Instance(g2, q2) => {
            let inst = instance(&g2, q2, k);
            let ab = knn_core::abductive::hamming::HammingAbductive::new(&inst.ds, inst.k);
            !ab.is_sufficient(&inst.x, &[])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_core::classifier::BooleanKnn;
    use knn_core::Label;
    use knn_datasets::graphs::random_graph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn normalization_preserves_the_answer() {
        let mut rng = StdRng::seed_from_u64(140);
        for _ in 0..20 {
            let g = random_graph(&mut rng, 6, 0.5);
            if g.n_edges() == 0 {
                continue;
            }
            let q = rng.gen_range(0..5usize);
            match normalize(&g, q) {
                Normalized::TrivialYes => assert!(g.has_vertex_cover_of_size(q)),
                Normalized::TrivialNo => assert!(!g.has_vertex_cover_of_size(q)),
                Normalized::Instance(g2, q2) => {
                    assert!(2 * q2 >= g2.n_vertices() && q2 <= g2.n_vertices() - 2);
                    assert_eq!(
                        g.has_vertex_cover_of_size(q),
                        g2.has_vertex_cover_of_size(q2),
                        "G={g:?} q={q}"
                    );
                }
            }
        }
    }

    #[test]
    fn anchor_is_negative() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let Normalized::Instance(g2, q2) = normalize(&g, 2) else {
            panic!("q = 2 = n − 2 is non-trivial");
        };
        let inst = instance(&g2, q2, OddK::THREE);
        let knn = BooleanKnn::new(&inst.ds, inst.k);
        assert_eq!(knn.classify(&inst.x), Label::Negative, "f(x̄) = 0 by construction");
    }

    #[test]
    fn equivalence_on_small_graphs_k3() {
        let mut rng = StdRng::seed_from_u64(141);
        let mut tested = 0;
        while tested < 12 {
            let g = random_graph(&mut rng, 5, 0.5);
            if g.n_edges() == 0 {
                continue;
            }
            let q = rng.gen_range(1..4usize);
            tested += 1;
            assert_eq!(
                vertex_cover_via_check_sr(&g, q, OddK::THREE),
                g.has_vertex_cover_of_size(q),
                "G={g:?} q={q}"
            );
        }
    }

    #[test]
    fn equivalence_k5() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]); // 4-cycle, τ = 2
        for q in 1..3usize {
            assert_eq!(
                vertex_cover_via_check_sr(&g, q, OddK::of(5)),
                g.has_vertex_cover_of_size(q),
                "q={q}"
            );
        }
    }

    #[test]
    fn witness_translates_back_to_a_cover() {
        // For a YES instance, any counterexample z yields a cover of size ≤ q+1
        // whose q-subsets are covers (property (2) in the proof).
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]); // 4-cycle, τ = 2
        let Normalized::Instance(g2, q2) = normalize(&g, 2) else {
            panic!("q = 2 = n − 2 is non-trivial");
        };
        let inst = instance(&g2, q2, OddK::THREE);
        let ab = knn_core::abductive::hamming::HammingAbductive::new(&inst.ds, inst.k);
        match ab.check(&inst.x, &[]) {
            knn_core::SrCheck::NotSufficient { witness } => {
                let c: Vec<usize> = (0..inst.n).filter(|&i| !witness.get(i)).collect();
                assert!(c.len() <= inst.q + 1);
                if c.len() <= inst.q {
                    assert!(g2.is_vertex_cover(&c));
                } else {
                    for drop in 0..c.len() {
                        let mut sub = c.clone();
                        sub.remove(drop);
                        assert!(g2.is_vertex_cover(&sub));
                    }
                }
            }
            knn_core::SrCheck::Sufficient => panic!("triangle has a 2-cover"),
        }
    }
}
