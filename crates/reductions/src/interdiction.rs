//! Theorems 8 and 9: Σ₂ᵖ-completeness of Minimum-SR in the discrete setting.
//!
//! * [`independent_set_interdiction`] / [`exists_forall_vertex_cover`] —
//!   brute-force ground truth for the two quantified graph problems;
//! * [`isi_to_eavc`] — Theorem 9's reduction `(G, p, q) ↦ (G, p, |V| − q)`;
//! * [`eavc_to_minimum_sr`] — Theorem 8: the `(S⁺, S⁻, x̄)` of Theorem 7
//!   turns ∃∀-VC into "is there a sufficient reason of size ≤ p?".

use crate::vc_check_sr::{self, VcCheckSrInstance};
use knn_core::OddK;
use knn_datasets::Graph;

/// Brute force for Independent Set Interdiction: is there `S ⊆ V`, `|S| ≤ p`,
/// meeting every independent set of size ≥ q?
pub fn independent_set_interdiction(g: &Graph, p: usize, q: usize) -> bool {
    let n = g.n_vertices();
    assert!(n <= 16);
    'outer: for s_mask in 0u32..(1u32 << n) {
        if (s_mask.count_ones() as usize) > p {
            continue;
        }
        // Every independent set of size ≥ q must intersect S.
        for i_mask in 0u32..(1u32 << n) {
            if (i_mask.count_ones() as usize) < q || i_mask & s_mask != 0 {
                continue;
            }
            let set: Vec<usize> = (0..n).filter(|v| (i_mask >> v) & 1 == 1).collect();
            if g.is_independent(&set) {
                continue 'outer; // S misses this independent set
            }
        }
        return true;
    }
    false
}

/// Brute force for ∃∀-Vertex-Cover: is there `S ⊆ V`, `|S| ≤ p`, such that no
/// superset `S' ⊇ S` with `|S'| ≤ q` is a vertex cover?
pub fn exists_forall_vertex_cover(g: &Graph, p: usize, q: usize) -> bool {
    let n = g.n_vertices();
    assert!(n <= 16);
    'outer: for s_mask in 0u32..(1u32 << n) {
        if (s_mask.count_ones() as usize) > p {
            continue;
        }
        for sp_mask in 0u32..(1u32 << n) {
            if sp_mask & s_mask != s_mask || (sp_mask.count_ones() as usize) > q {
                continue;
            }
            let cover: Vec<usize> = (0..n).filter(|v| (sp_mask >> v) & 1 == 1).collect();
            if g.is_vertex_cover(&cover) {
                continue 'outer; // a small covering superset exists
            }
        }
        return true;
    }
    false
}

/// Theorem 9: ISI`(G, p, q)` ⟺ ∃∀-VC`(G, p, |V| − q)`.
pub fn isi_to_eavc(g: &Graph, p: usize, q: usize) -> (Graph, usize, usize) {
    (g.clone(), p, g.n_vertices().saturating_sub(q))
}

/// Theorem 9's normalization: pushes an ∃∀-VC instance into the regime
/// `n/2 ≤ q ≤ n − 2` needed by Theorem 8. Returns `None` when the instance is
/// trivially NO (`q ≥ n − 1`: every ≥(n−1)-subset is a cover).
pub fn normalize_eavc(g: &Graph, p: usize, q: usize) -> Option<(Graph, usize, usize)> {
    let n = g.n_vertices();
    if q >= n.saturating_sub(1) {
        return None;
    }
    if 2 * q >= n {
        return Some((g.clone(), p, q));
    }
    let fresh = n - 2 * q;
    let mut g2 = Graph::new(n + fresh);
    for (u, v) in g.edges() {
        g2.add_edge(u, v);
    }
    for f in 0..fresh {
        for v in 0..n {
            g2.add_edge(n + f, v);
        }
    }
    Some((g2, p, n - q))
}

/// Theorem 8: builds the Minimum-SR instance (the decision is
/// "∃ sufficient reason of size ≤ p"). `q` must be normalized.
pub fn eavc_to_minimum_sr(g: &Graph, q: usize, k: OddK) -> VcCheckSrInstance {
    vc_check_sr::instance(g, q, k)
}

/// End-to-end decision of ∃∀-VC through the Minimum-SR reduction, using the
/// exact IHS Minimum-SR solver of `knn-core` (whose oracle is the SAT
/// checker — the same NP/coNP oracle stack as the Σ₂ᵖ upper bound).
pub fn eavc_via_minimum_sr(g: &Graph, p: usize, q: usize, k: OddK) -> bool {
    assert!(p < q, "the problem definition requires p < q");
    match normalize_eavc(g, p, q) {
        None => false,
        Some((g2, p2, q2)) => {
            let inst = eavc_to_minimum_sr(&g2, q2, k);
            let ab = knn_core::abductive::hamming::HammingAbductive::new(&inst.ds, inst.k);
            ab.has_sufficient_reason_of_size(&inst.x, p2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_datasets::graphs::random_graph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn isi_examples() {
        // Triangle: independent sets of size ≥ 2 don't exist → any S works,
        // including the empty set.
        let tri = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!(independent_set_interdiction(&tri, 0, 2));
        // Empty graph on 3 vertices: independent sets of size 2 = all pairs;
        // hitting all pairs needs ≥ 2 vertices.
        let empty = Graph::new(3);
        assert!(!independent_set_interdiction(&empty, 1, 2));
        assert!(independent_set_interdiction(&empty, 2, 2));
    }

    #[test]
    fn eavc_examples() {
        // Path 0-1-2: covers of size ≤ 1: {1}. ∃∀-VC(p=1, q=1): pick S={0}:
        // supersets of size ≤1 = {0} itself, not a cover → YES.
        let path = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(exists_forall_vertex_cover(&path, 1, 1));
        // With q=2 and p=1: S={0}: {0,1} is a cover ⊇ S → fails; S={2}:
        // {1,2} covers; S={1}: {1} covers already... every S fails → NO.
        assert!(!exists_forall_vertex_cover(&path, 1, 2));
    }

    #[test]
    fn theorem9_reduction_equivalence() {
        let mut rng = StdRng::seed_from_u64(150);
        for round in 0..30 {
            let g = random_graph(&mut rng, 5, 0.5);
            let p = rng.gen_range(0..3usize);
            let q = rng.gen_range(1..5usize);
            let (g2, p2, q2) = isi_to_eavc(&g, p, q);
            assert_eq!(
                independent_set_interdiction(&g, p, q),
                exists_forall_vertex_cover(&g2, p2, q2),
                "round {round}: G={g:?} p={p} q={q}"
            );
        }
    }

    #[test]
    fn eavc_normalization_preserves_answer() {
        let mut rng = StdRng::seed_from_u64(151);
        for round in 0..20 {
            let g = random_graph(&mut rng, 5, 0.5);
            if g.n_edges() == 0 {
                continue;
            }
            let p = rng.gen_range(0..2usize);
            let q = rng.gen_range(p + 1..5usize);
            match normalize_eavc(&g, p, q) {
                None => assert!(!exists_forall_vertex_cover(&g, p, q), "round {round}"),
                Some((g2, p2, q2)) => {
                    assert_eq!(
                        exists_forall_vertex_cover(&g, p, q),
                        exists_forall_vertex_cover(&g2, p2, q2),
                        "round {round}: G={g:?} p={p} q={q}"
                    );
                }
            }
        }
    }

    #[test]
    fn theorem8_end_to_end_small_graphs() {
        let mut rng = StdRng::seed_from_u64(152);
        let mut tested = 0;
        while tested < 6 {
            let g = random_graph(&mut rng, 4, 0.6);
            if g.n_edges() < 2 {
                continue;
            }
            let p = rng.gen_range(0..2usize);
            let q = rng.gen_range(p + 1..4usize);
            tested += 1;
            assert_eq!(
                eavc_via_minimum_sr(&g, p, q, OddK::THREE),
                exists_forall_vertex_cover(&g, p, q),
                "G={g:?} p={p} q={q}"
            );
        }
    }
}
