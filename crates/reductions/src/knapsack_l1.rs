//! Theorem 4: half-value Knapsack → k-Counterfactual(ℝ, D₁), with
//! `|S⁺| = |S⁻| = (k+1)/2`.
//!
//! Construction (k = 1): `x̄ = 0ⁿ`, radius `ℓ = W`, `S⁺ = {ḡ}` with
//! `g_i = w_i`, `S⁻ = {h̄}` with `h_i = w_i − γ·v_i`, `γ = 1/(2·max v)`.
//! Items placed in the knapsack correspond to coordinates pushed from `0` to
//! `w_i` (the right end of the interval `[h_i, g_i]`), contributing `γ·v_i`
//! to the distance-difference budget.
//!
//! The general-k padding adds `(k−1)/2` points per class on the first axis
//! and one extra coordinate pinning the padding points near the ball.

use knn_core::{ContinuousDataset, Label, OddK};
use knn_datasets::combinatorial::HalfValueKnapsack;
use knn_num::Rat;

/// A continuous counterfactual instance over exact rationals.
#[derive(Clone, Debug)]
pub struct L1CfInstance {
    /// The dataset.
    pub ds: ContinuousDataset<Rat>,
    /// The anchor point.
    pub x: Vec<Rat>,
    /// The distance bound `ℓ`.
    pub radius: Rat,
    /// The neighborhood size.
    pub k: OddK,
}

/// Theorem 4's base construction (k = 1).
pub fn instance_k1(inst: &HalfValueKnapsack) -> L1CfInstance {
    let n = inst.len();
    assert!(n >= 1);
    let max_v = *inst.values.iter().max().unwrap();
    let gamma = Rat::frac(1, 2 * max_v as i64);
    let g: Vec<Rat> = inst.weights.iter().map(|&w| Rat::from_int(w as i64)).collect();
    let h: Vec<Rat> = inst
        .weights
        .iter()
        .zip(&inst.values)
        .map(|(&w, &v)| Rat::from_int(w as i64) - gamma.clone() * Rat::from_int(v as i64))
        .collect();
    L1CfInstance {
        ds: ContinuousDataset::from_sets(vec![g], vec![h]),
        x: vec![Rat::zero(); n],
        radius: Rat::from_int(inst.capacity as i64),
        k: OddK::ONE,
    }
}

/// The padding step: lifts a k = 1 instance with `|S⁺| = |S⁻| = 1` to an
/// equivalent instance for odd `k ≥ 1` with `|S⁺| = |S⁻| = (k+1)/2`
/// (the proof's final paragraph).
pub fn pad_to_k(base: &L1CfInstance, k: OddK) -> L1CfInstance {
    assert_eq!(base.k, OddK::ONE);
    assert_eq!(base.ds.count_of(Label::Positive), 1);
    assert_eq!(base.ds.count_of(Label::Negative), 1);
    let n = base.ds.dim();
    if k == OddK::ONE {
        return base.clone();
    }
    let kk = k.get() as i64;
    // M = 10(ℓ + k): the padding points dominate inside the ball.
    let m_val = Rat::from_int(10) * (base.radius.clone() + Rat::from_int(kk));
    let mut ds = ContinuousDataset::new(n + 1);
    // Original points get the extra coordinate M.
    for (p, l) in base.ds.iter() {
        let mut q = p.to_vec();
        q.push(m_val.clone());
        ds.push(q, l);
    }
    // Padding points p_j = (j, 0, …, 0 | 0): first (k−1)/2 positive, rest negative.
    for j in 1..=(kk - 1) {
        let mut p = vec![Rat::zero(); n + 1];
        p[0] = Rat::from_int(j);
        let label = if j <= (kk - 1) / 2 { Label::Positive } else { Label::Negative };
        ds.push(p, label);
    }
    let mut x = base.x.clone();
    x.push(Rat::zero());
    L1CfInstance { ds, x, radius: base.radius.clone(), k }
}

/// Decides the constructed instance exactly, using the structure established
/// in the proof: an optimal counterfactual may be assumed to have
/// `y_i ∈ {0, w_i}` per coordinate (and 0 in all padding coordinates), so the
/// decision reduces to scanning item subsets — this *is* the backward
/// direction of the equivalence, and serves as the exact decision procedure
/// for equivalence testing. Exponential, small instances only.
pub fn decide_by_restriction(inst: &HalfValueKnapsack, cf: &L1CfInstance) -> bool {
    use knn_core::classifier::ContinuousKnn;
    use knn_core::LpMetric;
    let n = inst.len();
    assert!(n <= 16);
    let knn = ContinuousKnn::new(&cf.ds, LpMetric::L1, cf.k);
    let base_label = knn.classify(&cf.x);
    for mask in 0u32..(1 << n) {
        let mut y = cf.x.clone();
        let mut dist = Rat::zero();
        for i in 0..n {
            if (mask >> i) & 1 == 1 {
                y[i] = Rat::from_int(inst.weights[i] as i64);
                dist = dist + y[i].clone();
            }
        }
        if dist <= cf.radius && knn.classify(&y) != base_label {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_core::classifier::ContinuousKnn;
    use knn_core::LpMetric;
    use knn_datasets::combinatorial::random_knapsack;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn anchor_is_negative() {
        let inst = HalfValueKnapsack { weights: vec![2, 3], values: vec![4, 5], capacity: 3 };
        let cf = instance_k1(&inst);
        let knn = ContinuousKnn::new(&cf.ds, LpMetric::L1, OddK::ONE);
        assert_eq!(knn.classify(&cf.x), Label::Negative, "‖h̄‖₁ < ‖ḡ‖₁ ⇒ f(0̄) = 0");
    }

    #[test]
    fn equivalence_via_restriction_k1() {
        let mut rng = StdRng::seed_from_u64(110);
        for round in 0..30 {
            let inst = random_knapsack(&mut rng, 5, 6, 6);
            let cf = instance_k1(&inst);
            assert_eq!(
                inst.brute_force(),
                decide_by_restriction(&inst, &cf),
                "round {round}: {inst:?}"
            );
        }
    }

    #[test]
    fn equivalence_against_milp_solver_k1() {
        // Cross-check with the exact MILP counterfactual solver (f64).
        let mut rng = StdRng::seed_from_u64(111);
        for round in 0..12 {
            let inst = random_knapsack(&mut rng, 4, 5, 5);
            let cf = instance_k1(&inst);
            let dsf = cf.ds.map_field(|r| r.to_f64());
            let xf: Vec<f64> = cf.x.iter().map(|r| r.to_f64()).collect();
            let milp = knn_core::counterfactual::l1::L1Counterfactual::new(&dsf);
            let (_, dist) = milp.closest(&xf).expect("both classes nonempty");
            let says_yes = dist <= cf.radius.to_f64() + 1e-6;
            assert_eq!(
                inst.brute_force(),
                says_yes,
                "round {round}: optimal CF distance {dist}, W = {}",
                cf.radius
            );
        }
    }

    #[test]
    fn padding_preserves_the_answer() {
        let mut rng = StdRng::seed_from_u64(112);
        for round in 0..15 {
            let inst = random_knapsack(&mut rng, 4, 5, 5);
            let base = instance_k1(&inst);
            let padded = pad_to_k(&base, OddK::THREE);
            assert_eq!(padded.ds.count_of(Label::Positive), 2);
            assert_eq!(padded.ds.count_of(Label::Negative), 2);
            // The anchor keeps its label.
            let knn = ContinuousKnn::new(&padded.ds, LpMetric::L1, OddK::THREE);
            assert_eq!(knn.classify(&padded.x), Label::Negative);
            // Decision equivalence through the restricted scan (padding
            // coordinates stay 0 per the proof).
            let got = {
                let n = inst.len();
                let base_label = knn.classify(&padded.x);
                let mut yes = false;
                for mask in 0u32..(1 << n) {
                    let mut y = padded.x.clone();
                    let mut dist = Rat::zero();
                    for i in 0..n {
                        if (mask >> i) & 1 == 1 {
                            y[i] = Rat::from_int(inst.weights[i] as i64);
                            dist = dist + y[i].clone();
                        }
                    }
                    if dist <= padded.radius && knn.classify(&y) != base_label {
                        yes = true;
                        break;
                    }
                }
                yes
            };
            assert_eq!(inst.brute_force(), got, "round {round}");
        }
    }
}
