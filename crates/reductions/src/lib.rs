//! Executable hardness reductions from the paper.
//!
//! Every lower bound in Table 1 is proved by a many-one (or Turing) reduction
//! from a classical hard problem. This crate implements each construction
//! **as code**, together with equivalence checkers that validate, on
//! exhaustively solvable instances, that the source problem's answer matches
//! the target explanation problem's answer computed by `knn-core`'s
//! algorithms. This both documents the constructions and acts as a deep
//! integration test of the classifier semantics (the constructions are
//! razor-sharp about ties).
//!
//! | Module | Theorem | Reduction |
//! |---|---|---|
//! | [`vertex_cover_msr`] | Thm 1 | Vertex Cover → Minimum-SR (discrete k = 1; continuous ℓp, any odd k) |
//! | [`clique_l2`] | Thm 3 (Lemmas 2–3) | k-RegClique → (2k−1)-Counterfactual(ℝ, D₂) |
//! | [`knapsack_l1`] | Thm 4 | Half-value Knapsack → k-Counterfactual(ℝ, D₁) |
//! | [`partition_l1`] | Thm 5 | Partition → k-Check-SR(ℝ, D₁), k ≥ 3 |
//! | [`bmcf`] | Prop 5 + Thm 6 | Vertex Cover → p-BMCF → k-Counterfactual({0,1}, D_H) |
//! | [`vc_check_sr`] | Thm 7 | Vertex Cover → k-Check-SR({0,1}, D_H), k ≥ 3 |
//! | [`interdiction`] | Thm 9 + Thm 8 | Independent-Set-Interdiction → ∃∀-VC → k-Minimum-SR({0,1}, D_H) |

#![warn(missing_docs)]

pub mod bmcf;
pub mod clique_l2;
pub mod interdiction;
pub mod knapsack_l1;
pub mod partition_l1;
pub mod vc_check_sr;
pub mod vertex_cover_msr;
