//! Theorem 5: Partition → k-Check Sufficient Reason(ℝ, D₁), for odd k ≥ 3.
//!
//! Construction (multiplicity-free form): dimension `(k+1) + n`. The first
//! `k+1` coordinates are auxiliary one-hot tags, one per dataset point; the
//! last `n` carry the partition values:
//!
//! * `ᾱ = 0̄ₙ` (positive, 1 copy), `β̄ = 2v̄` (positive, (k−1)/2 copies),
//!   `γ̄ = v̄` (negative, (k+1)/2 copies);
//! * `x̄ = 0̄` and the queried set `X` is the block of auxiliary coordinates.
//!
//! `X` is **not** a sufficient reason iff the Partition instance has a
//! solution — hence Check-SR is coNP-hard.

use knn_core::{ContinuousDataset, Label, OddK};
use knn_datasets::combinatorial::PartitionInstance;
use knn_num::Rat;

/// The constructed Check-SR instance.
#[derive(Clone, Debug)]
pub struct CheckSrInstance {
    /// The dataset.
    pub ds: ContinuousDataset<Rat>,
    /// The anchor point `x̄ = 0̄`.
    pub x: Vec<Rat>,
    /// The queried component set `X` (the auxiliary block).
    pub fixed: Vec<usize>,
    /// The neighborhood size.
    pub k: OddK,
}

/// Builds the Theorem 5 instance for odd `k ≥ 3`.
pub fn instance(inst: &PartitionInstance, k: OddK) -> CheckSrInstance {
    assert!(k.get() >= 3, "Theorem 5 concerns k ≥ 3");
    let n = inst.values.len();
    let kk = k.get() as usize;
    let aux = kk + 1;
    let dim = aux + n;
    let v: Vec<Rat> = inst.values.iter().map(|&x| Rat::from_int(x as i64)).collect();

    let block = |tag: usize, values: &[Rat]| -> Vec<Rat> {
        let mut p = vec![Rat::zero(); dim];
        p[tag] = Rat::one();
        p[aux..].clone_from_slice(values);
        p
    };

    let zero_block: Vec<Rat> = vec![Rat::zero(); n];
    let two_v: Vec<Rat> = v.iter().map(|x| x.clone() + x.clone()).collect();

    let mut ds = ContinuousDataset::new(dim);
    let mut tag = 0;
    // ᾱ: positive, multiplicity 1.
    ds.push(block(tag, &zero_block), Label::Positive);
    tag += 1;
    // β̄: positive, multiplicity (k−1)/2.
    for _ in 0..k.minority() {
        ds.push(block(tag, &two_v), Label::Positive);
        tag += 1;
    }
    // γ̄: negative, multiplicity (k+1)/2.
    for _ in 0..k.majority() {
        ds.push(block(tag, &v), Label::Negative);
        tag += 1;
    }
    debug_assert_eq!(tag, aux);
    CheckSrInstance { ds, x: vec![Rat::zero(); dim], fixed: (0..aux).collect(), k }
}

/// Exact decision of the constructed instance via the proof's restriction:
/// a counterexample, if one exists, can be taken with `z_i ∈ {0, 2vᵢ}` on the
/// value coordinates and `x̄`'s zeros on the auxiliary block. Scanning these
/// `2ⁿ` candidates with the exact classifier decides Check-SR on this family.
pub fn is_sufficient_by_restriction(inst: &PartitionInstance, cf: &CheckSrInstance) -> bool {
    use knn_core::classifier::ContinuousKnn;
    use knn_core::LpMetric;
    let n = inst.values.len();
    assert!(n <= 16);
    let aux = cf.fixed.len();
    let knn = ContinuousKnn::new(&cf.ds, LpMetric::L1, cf.k);
    let base = knn.classify(&cf.x);
    for mask in 0u32..(1 << n) {
        let mut z = cf.x.clone();
        for i in 0..n {
            if (mask >> i) & 1 == 1 {
                z[aux + i] = Rat::from_int(2 * inst.values[i] as i64);
            }
        }
        if knn.classify(&z) != base {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_core::classifier::ContinuousKnn;
    use knn_core::LpMetric;
    use knn_datasets::combinatorial::random_partition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn anchor_is_negative() {
        let p = PartitionInstance { values: vec![1, 2, 3] };
        let cf = instance(&p, OddK::THREE);
        let knn = ContinuousKnn::new(&cf.ds, LpMetric::L1, OddK::THREE);
        assert_eq!(knn.classify(&cf.x), Label::Negative, "f(x̄) = 0 by construction");
    }

    #[test]
    fn known_instances() {
        // {1,2,3} partitions (1+2 = 3): X is NOT sufficient.
        let yes = PartitionInstance { values: vec![1, 2, 3] };
        let cf = instance(&yes, OddK::THREE);
        assert!(!is_sufficient_by_restriction(&yes, &cf));
        // {1,2,4} does not partition: X IS sufficient.
        let no = PartitionInstance { values: vec![1, 2, 4] };
        let cf = instance(&no, OddK::THREE);
        assert!(is_sufficient_by_restriction(&no, &cf));
    }

    #[test]
    fn equivalence_random_k3_and_k5() {
        let mut rng = StdRng::seed_from_u64(120);
        for round in 0..25 {
            let p = random_partition(&mut rng, 5, 8);
            for k in [OddK::THREE, OddK::of(5)] {
                let cf = instance(&p, k);
                assert_eq!(
                    is_sufficient_by_restriction(&p, &cf),
                    !p.brute_force(),
                    "round {round}, k={k}: {p:?}"
                );
            }
        }
    }

    #[test]
    fn partition_witness_is_counterexample() {
        // For a YES partition instance, the restricted z built from a solution
        // must be classified positive (the counterexample of the proof).
        let p = PartitionInstance { values: vec![2, 3, 5] }; // 2+3 = 5
        let cf = instance(&p, OddK::THREE);
        let knn = ContinuousKnn::new(&cf.ds, LpMetric::L1, OddK::THREE);
        let aux = cf.fixed.len();
        // T = {0, 1} (values 2 and 3): z = (0…0 | 4, 6, 0).
        let mut z = cf.x.clone();
        z[aux] = Rat::from_int(4);
        z[aux + 1] = Rat::from_int(6);
        assert_eq!(knn.classify(&z), Label::Positive);
    }
}
