//! Proposition 5 and Theorem 6: Vertex Cover → p-BMCF → k-Counterfactual
//! ({0,1}, D_H).
//!
//! `p`-Boolean Matrix Column Flipping: given an `m × n` boolean matrix `B`
//! and `ℓ ≤ n`, is there a column set `T`, `|T| ≤ ℓ`, such that after
//! flipping the columns of `T` at least `m − p` rows have weight ≤ **`|T|`**?
//!
//! **Erratum note.** The paper states the row-weight bound as `|T| − 1`.
//! Carrying out the distance bookkeeping of Theorem 6's construction exactly
//! (and checking it mechanically against brute force — see the tests) gives:
//! with `x̄ = 1̄`, anchor flips `T` inside the matrix block, every `S⁻` tail
//! sits at distance `n − |T| + p` and the row `b` of `S⁺` at
//! `n − w_T(b) + p + 1`, so `f(ȳ) = 0` ⟺ the `(p+1)`-st largest flipped row
//! weight is ≤ `|T|` — the bound `|T| − 1` makes the published equivalence
//! fail on small instances (e.g. rows `{01011, 00011, 01001}`, `ℓ = 1`,
//! `p = 1`). We therefore use the corrected bound; the NP-hardness chain is
//! unaffected and even simplifies: flipping a column set `T` turns an edge
//! row's weight into `|T| + 2 − 2|e ∩ T|`, so "weight ≤ |T|" is *exactly*
//! "`T` covers `e`", and Vertex Cover embeds with no extra column.

use knn_core::{BitVec, BooleanDataset, OddK};
use knn_datasets::Graph;

/// A p-BMCF instance (with the corrected weight bound; see module docs).
#[derive(Clone, Debug)]
pub struct BmcfInstance {
    /// Row-major boolean matrix.
    pub rows: Vec<BitVec>,
    /// Column budget `ℓ`.
    pub budget: usize,
    /// The slack parameter `p`.
    pub p: usize,
}

impl BmcfInstance {
    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.rows.first().map_or(0, |r| r.len())
    }

    /// Evaluates a specific column set `T` against the BMCF condition:
    /// at least `m − p` rows of the column-flipped matrix have weight ≤ `|T|`.
    pub fn satisfied_by(&self, t: &[usize]) -> bool {
        if t.len() > self.budget {
            return false;
        }
        let mut good_rows = 0;
        for row in &self.rows {
            let mut w = 0usize;
            for i in 0..row.len() {
                if row.get(i) != t.contains(&i) {
                    w += 1;
                }
            }
            if w <= t.len() {
                good_rows += 1;
            }
        }
        good_rows + self.p >= self.rows.len()
    }

    /// Brute-force decision (exponential in the number of columns).
    pub fn brute_force(&self) -> bool {
        let n = self.n_cols();
        assert!(n <= 20);
        for mask in 0u32..(1u32 << n) {
            if (mask.count_ones() as usize) > self.budget {
                continue;
            }
            let t: Vec<usize> = (0..n).filter(|i| (mask >> i) & 1 == 1).collect();
            if self.satisfied_by(&t) {
                return true;
            }
        }
        false
    }
}

/// Proposition 5 (simplified by the corrected bound): modified Vertex Cover
/// (cover all but ≤ p edges with ≤ ℓ vertices) → p-BMCF on the transposed
/// incidence matrix with the same budget.
pub fn vertex_cover_to_bmcf(g: &Graph, l: usize, p: usize) -> BmcfInstance {
    let n = g.n_vertices();
    let mut rows = Vec::with_capacity(g.n_edges());
    for (u, v) in g.edges() {
        let mut row = BitVec::zeros(n);
        row.set(u, true);
        row.set(v, true);
        rows.push(row);
    }
    BmcfInstance { rows, budget: l, p }
}

/// Brute-force for the modified Vertex Cover source problem: is there
/// `V' ⊆ V`, `|V'| ≤ l`, covering at least `|E| − p` edges?
pub fn almost_vertex_cover(g: &Graph, l: usize, p: usize) -> bool {
    let n = g.n_vertices();
    assert!(n <= 20);
    let edges: Vec<(usize, usize)> = g.edges().collect();
    for mask in 0u32..(1u32 << n) {
        if (mask.count_ones() as usize) > l {
            continue;
        }
        let covered =
            edges.iter().filter(|&&(u, v)| (mask >> u) & 1 == 1 || (mask >> v) & 1 == 1).count();
        if covered + p >= edges.len() {
            return true;
        }
    }
    false
}

/// The discrete counterfactual instance of Theorem 6.
#[derive(Clone, Debug)]
pub struct HammingCfInstance {
    /// The dataset.
    pub ds: BooleanDataset,
    /// The anchor `x̄ = 1̄`.
    pub x: BitVec,
    /// The distance bound `ℓ`.
    pub radius: usize,
    /// The neighborhood size `k = 2p + 1`.
    pub k: OddK,
}

/// Theorem 6: p-BMCF → (2p+1)-Counterfactual({0,1}, D_H).
///
/// The instance must satisfy the proof's normalizations: no repeated rows,
/// every row with at least two 0s **and two 1s** (the incidence rows of
/// Proposition 5 satisfy both for n ≥ 4 — two 1s keep all positives closer
/// to `x̄ = 1̄` than the one-hot negatives, so `f(x̄) = 1`), and `m ≥ p + 1`.
pub fn bmcf_to_counterfactual(inst: &BmcfInstance) -> HammingCfInstance {
    let n = inst.n_cols();
    let p = inst.p;
    let m = inst.rows.len();
    assert!(m > p, "need at least p+1 rows");
    let dim = n + p + 1;
    let mut pos = Vec::with_capacity(m);
    for row in &inst.rows {
        assert!(
            row.len() - row.weight() >= 2 && row.weight() >= 2,
            "each row needs at least two 0s and two 1s (proof normalization)"
        );
        pos.push(row.concat(&BitVec::zeros(p + 1)));
    }
    // S⁻: the p+1 tails 0ⁿ⁺ʲ 1 0^{p−j}.
    let mut neg = Vec::with_capacity(p + 1);
    for j in 0..=p {
        let mut t = BitVec::zeros(dim);
        t.set(n + j, true);
        neg.push(t);
    }
    HammingCfInstance {
        ds: BooleanDataset::from_sets(pos, neg),
        x: BitVec::ones(dim),
        radius: inst.budget,
        k: OddK::of((2 * p + 1) as u32),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_core::classifier::BooleanKnn;
    use knn_core::counterfactual::hamming::within_sat;
    use knn_core::Label;
    use knn_datasets::graphs::random_graph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn bmcf_brute_force_sanity() {
        // Rows 1100 and 0110: T = {1} flips column 1: rows become 1000 (w=1 ≤ 1)
        // and 0010 (w=1 ≤ 1): satisfied with budget 1 and p = 0.
        let rows = vec![BitVec::from_bits(&[1, 1, 0, 0]), BitVec::from_bits(&[0, 1, 1, 0])];
        let inst = BmcfInstance { rows: rows.clone(), budget: 1, p: 0 };
        assert!(inst.satisfied_by(&[1]));
        assert!(inst.brute_force());
        // Budget 0: both rows keep weight 2 > 0: unsatisfied.
        let zero = BmcfInstance { rows, budget: 0, p: 0 };
        assert!(!zero.brute_force());
    }

    #[test]
    fn vc_to_bmcf_equivalence() {
        let mut rng = StdRng::seed_from_u64(130);
        for round in 0..30 {
            let g = random_graph(&mut rng, 5, 0.6);
            if g.n_edges() < 2 {
                continue;
            }
            let p = rng.gen_range(0..2usize);
            let l = rng.gen_range(0..4usize);
            let bmcf = vertex_cover_to_bmcf(&g, l, p);
            assert_eq!(
                almost_vertex_cover(&g, l, p),
                bmcf.brute_force(),
                "round {round}: G={g:?} l={l} p={p}"
            );
        }
    }

    fn random_bmcf(rng: &mut StdRng, p: usize) -> Option<BmcfInstance> {
        let n = rng.gen_range(4..6usize);
        let m = rng.gen_range(p + 1..p + 4);
        let mut rows: Vec<BitVec> = Vec::new();
        for _ in 0..m {
            // Between 2 and n−2 ones per row (normalization: two 1s, two 0s).
            let mut row = BitVec::zeros(n);
            let ones = rng.gen_range(2..=(n - 2));
            let mut idxs: Vec<usize> = (0..n).collect();
            for i in (1..idxs.len()).rev() {
                idxs.swap(i, rng.gen_range(0..=i));
            }
            for &i in idxs.iter().take(ones) {
                row.set(i, true);
            }
            if rows.contains(&row) {
                return None; // repeated rows violate the normalization
            }
            rows.push(row);
        }
        let budget = rng.gen_range(1..=n);
        Some(BmcfInstance { rows, budget, p })
    }

    #[test]
    fn bmcf_to_cf_equivalence_p0_and_p1() {
        let mut rng = StdRng::seed_from_u64(131);
        let mut tested = 0;
        while tested < 30 {
            let p = rng.gen_range(0..2usize);
            let Some(inst) = random_bmcf(&mut rng, p) else {
                continue;
            };
            tested += 1;
            let cf = bmcf_to_counterfactual(&inst);
            let knn = BooleanKnn::new(&cf.ds, cf.k);
            assert_eq!(knn.classify(&cf.x), Label::Positive, "f(x̄) = 1 by construction");
            let sat = within_sat(&cf.ds, cf.k, &cf.x, cf.radius);
            assert_eq!(inst.brute_force(), sat, "instance {inst:?}");
        }
    }

    #[test]
    fn end_to_end_vertex_cover_to_counterfactual() {
        // Full pipeline: VC → BMCF → CF, checked against brute-force VC.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]); // path, τ = 2
        for l in 1..4usize {
            let bmcf = vertex_cover_to_bmcf(&g, l, 0);
            let cf = bmcf_to_counterfactual(&bmcf);
            let sat = within_sat(&cf.ds, cf.k, &cf.x, cf.radius);
            assert_eq!(
                g.has_vertex_cover_of_size(l),
                sat,
                "budget {l}: τ(G) = {}",
                g.min_vertex_cover_size()
            );
        }
    }
}
