//! Theorem 3 (with Lemmas 2 and 3): k-RegClique → (2k−1)-Counterfactual(ℝ, D₂),
//! showing W[1]-hardness in k.
//!
//! **Lemma 2** embeds the nodes of a d-regular graph into `{0,1}^m`
//! (`m = n² + n + d − 5`) so that all vectors have equal weight, adjacent
//! pairs are at Hamming distance `2(n+d−3)` and non-adjacent pairs at
//! `2(n+d−1)`.
//!
//! **Reduction**: embedded nodes are positive; the origin is a negative point
//! with multiplicity k (our datasets allow repeated points, so the paper's
//! multiplicity-elimination gadget — whose `m¹⁰⁰` auxiliary coordinates are
//! astronomically many and exist only to keep the *point set* a set — is not
//! needed). A `(2k−1)`-NN counterfactual for `x̄ = 0̄` within radius
//! `λ₁ = α·√(k/(2(k+1)))` exists iff `G` has a k-clique. The paper duplicates
//! every coordinate `T` times solely to make `λ₁` itself rational; since our
//! decision API takes the **squared** radius, and `λ₁² = (n+d−3)·k/(k+1)` is
//! already rational, the duplication is unnecessary and we pass `λ₁²` exactly.

use knn_core::{ContinuousDataset, Label, OddK};
use knn_datasets::Graph;
use knn_num::Rat;
use knn_space::BitVec;

/// Lemma 2: the constant-weight embedding of a d-regular graph.
///
/// Returns one bit vector per node, of dimension `n² + n + d − 5`.
/// Panics unless the graph is regular with `n + d ≥ 5`.
pub fn embed_regular_graph(g: &Graph) -> Vec<BitVec> {
    let n = g.n_vertices();
    let d = g.regular_degree().expect("graph must be regular");
    assert!(n + d >= 5, "Lemma 2 needs n + d ≥ 5");
    let pad = n + d - 5;
    let m = n * n + pad;
    (0..n)
        .map(|u| {
            let mut v = BitVec::zeros(m);
            for block in 0..n {
                if block == u {
                    // Neighbor indicators in u's own block.
                    for w in 0..n {
                        if g.has_edge(u, w) {
                            v.set(block * n + w, true);
                        }
                    }
                } else {
                    // One-hot encoding of u elsewhere.
                    v.set(block * n + u, true);
                }
            }
            for i in 0..pad {
                v.set(n * n + i, true);
            }
            v
        })
        .collect()
}

/// The constructed counterfactual instance.
#[derive(Clone, Debug)]
pub struct CliqueCfInstance {
    /// The dataset: embedded nodes positive, the origin negative ×k.
    pub ds: ContinuousDataset<Rat>,
    /// The anchor `x̄ = 0̄`.
    pub x: Vec<Rat>,
    /// The **squared** radius `λ₁² = (n+d−3)·k/(k+1)`.
    pub radius_sq: Rat,
    /// The classifier's neighborhood size `2k − 1`.
    pub knn_k: OddK,
    /// The clique size `k` being decided.
    pub clique_k: usize,
}

/// Theorem 3's reduction for clique size `k ≥ 1`.
pub fn instance(g: &Graph, k: usize) -> CliqueCfInstance {
    assert!(k >= 1);
    let n = g.n_vertices();
    let d = g.regular_degree().expect("graph must be regular");
    assert!(n >= k, "clique cannot exceed the vertex count");
    let embedded = embed_regular_graph(g);
    let dim = embedded[0].len();
    let mut ds = ContinuousDataset::new(dim);
    for e in &embedded {
        ds.push(
            e.iter().map(|b| if b { Rat::one() } else { Rat::zero() }).collect(),
            Label::Positive,
        );
    }
    for _ in 0..k {
        ds.push(vec![Rat::zero(); dim], Label::Negative);
    }
    let radius_sq = Rat::frac(((n + d - 3) * k) as i64, (k + 1) as i64);
    CliqueCfInstance {
        ds,
        x: vec![Rat::zero(); dim],
        radius_sq,
        knn_k: OddK::of((2 * k - 1) as u32),
        clique_k: k,
    }
}

/// Definition 1's quantity `r(x₁, …, x_k)`: the minimum norm of a point at
/// least as close to every `xᵢ` as to the origin. Computed exactly by QP:
/// the constraints `‖y − xᵢ‖ ≤ ‖y‖` are the halfspaces `2xᵢ·y ≥ ‖xᵢ‖²`.
/// Returns the squared value.
pub fn r_value_sq(points: &[Vec<Rat>]) -> Option<Rat> {
    use knn_qp::{project_onto_polyhedron, Polyhedron, QpOutcome};
    let dim = points.first()?.len();
    let mut poly = Polyhedron::whole_space(dim);
    for p in points {
        let norm_sq = knn_num::field::norm_sq(p);
        let row: Vec<Rat> = p.iter().map(|v| v.clone() + v.clone()).collect();
        poly.add_ge(row, norm_sq);
    }
    let origin = vec![Rat::zero(); dim];
    match project_onto_polyhedron(&origin, &poly) {
        QpOutcome::Optimal { dist_sq, .. } => Some(dist_sq),
        QpOutcome::Infeasible => None,
    }
}

/// Decides k-clique through the reduction and the polynomial ℓ2
/// counterfactual algorithm of Theorem 2.
pub fn clique_via_counterfactual(g: &Graph, k: usize) -> bool {
    let inst = instance(g, k);
    let cf = knn_core::counterfactual::l2::L2Counterfactual::new(&inst.ds, inst.knn_k);
    cf.within(&inst.x, &inst.radius_sq).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_core::classifier::ContinuousKnn;
    use knn_core::LpMetric;
    use knn_datasets::graphs::random_regular_graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn k4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    fn c5() -> Graph {
        Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
    }

    #[test]
    fn embedding_satisfies_lemma2() {
        for g in [k4(), c5()] {
            let n = g.n_vertices();
            let d = g.regular_degree().unwrap();
            let emb = embed_regular_graph(&g);
            let w = 2 * (n + d - 3);
            for (u, eu) in emb.iter().enumerate() {
                assert_eq!(eu.weight(), w, "weight of node {u}");
                for (v, ev) in emb.iter().enumerate().skip(u + 1) {
                    let dist = eu.hamming(ev);
                    if g.has_edge(u, v) {
                        assert_eq!(dist, 2 * (n + d - 3), "adjacent {u},{v}");
                    } else {
                        assert_eq!(dist, 2 * (n + d - 1), "non-adjacent {u},{v}");
                    }
                }
            }
        }
    }

    #[test]
    fn lemma3_upper_bound_is_tight_for_simplices() {
        // An exact regular simplex: k unit-ish vectors pairwise at distance α
        // and at distance α from the origin. Use the embedding of a clique:
        // in K4 every pair is adjacent, so any k nodes form the Lemma 3(a)
        // configuration with α² = 2(n+d−3).
        let g = k4();
        let emb = embed_regular_graph(&g);
        let (n, d) = (4usize, 3usize);
        let alpha_sq = Rat::from_int(2 * (n + d - 3) as i64);
        for k in 2..=3usize {
            let pts: Vec<Vec<Rat>> = emb[..k]
                .iter()
                .map(|e| e.iter().map(|b| if b { Rat::one() } else { Rat::zero() }).collect())
                .collect();
            let r_sq = r_value_sq(&pts).expect("feasible");
            let expect = alpha_sq.clone() * Rat::frac(k as i64, 2 * (k as i64 + 1));
            assert_eq!(r_sq, expect, "k = {k}");
        }
    }

    #[test]
    fn lemma3_lower_bound_for_non_cliques() {
        // In C5, any two non-adjacent nodes are at β > α: r must exceed λ₁.
        let g = c5();
        let emb = embed_regular_graph(&g);
        let (n, d) = (5usize, 2usize);
        let k = 2usize;
        let lambda1_sq = Rat::frac(((n + d - 3) * k) as i64, (k + 1) as i64);
        // Nodes 0 and 2 are non-adjacent in C5.
        let pts: Vec<Vec<Rat>> = [0, 2]
            .iter()
            .map(|&u| emb[u].iter().map(|b| if b { Rat::one() } else { Rat::zero() }).collect())
            .collect();
        let r_sq = r_value_sq(&pts).expect("feasible");
        assert!(r_sq > lambda1_sq, "non-clique pair must exceed λ₁: {r_sq} vs {lambda1_sq}");
    }

    #[test]
    fn anchor_is_negative() {
        let inst = instance(&k4(), 2);
        let knn = ContinuousKnn::new(&inst.ds, LpMetric::L2, inst.knn_k);
        assert_eq!(knn.classify(&inst.x), Label::Negative);
    }

    #[test]
    fn clique_decision_k2_matches_brute_force() {
        // k = 2: a 2-clique is an edge; C5 and K4 both have edges; a perfect
        // matching graph (3-regular? no) — use a 2-regular disjoint union? A
        // 2-clique always exists when the graph has ≥1 edge, so also test the
        // negative direction with an edgeless 0-regular graph... which fails
        // n+d ≥ 5 for small n; use n=6, d=0? d=0 means no edges: 6+0 ≥ 5 ✓.
        for (g, k) in [(k4(), 2usize), (c5(), 2)] {
            assert_eq!(
                clique_via_counterfactual(&g, k),
                g.has_clique_of_size(k),
                "graph {g:?} k={k}"
            );
        }
        let edgeless = Graph::new(6);
        assert!(!clique_via_counterfactual(&edgeless, 2), "no edges, no 2-clique");
    }

    #[test]
    fn clique_decision_k3() {
        // K4 has triangles; C5 does not — the W[1]-hardness pivot case.
        assert!(clique_via_counterfactual(&k4(), 3));
        assert!(!clique_via_counterfactual(&c5(), 3));
    }

    #[test]
    fn random_regular_graphs_k3() {
        let mut rng = StdRng::seed_from_u64(160);
        for _ in 0..3 {
            let g = random_regular_graph(&mut rng, 6, 3);
            assert_eq!(clique_via_counterfactual(&g, 3), g.has_clique_of_size(3), "graph {g:?}");
        }
    }
}
