//! Uniform random datasets (the Figure 5 workload).

use knn_space::{BitVec, BooleanDataset, ContinuousDataset, Label};
use rand::Rng;

/// Uniformly random boolean dataset: `n_points` samples from `{0,1}^dim`,
/// labeled by independent Bernoulli(`p_positive`) draws — the synthetic
/// workload of §9.1 (which uses `p = 1/2`).
///
/// Guarantees at least one point of each class when `n_points ≥ 2` by
/// re-labeling the first two points if a class is missing (an all-one-class
/// training set makes every explanation problem degenerate).
pub fn random_boolean_dataset(
    rng: &mut impl Rng,
    n_points: usize,
    dim: usize,
    p_positive: f64,
) -> BooleanDataset {
    assert!(n_points >= 2, "need at least two points");
    let mut ds = BooleanDataset::new(dim);
    let mut labels: Vec<Label> = (0..n_points)
        .map(|_| if rng.gen_bool(p_positive) { Label::Positive } else { Label::Negative })
        .collect();
    if !labels.contains(&Label::Positive) {
        labels[0] = Label::Positive;
    }
    if !labels.contains(&Label::Negative) {
        labels[1] = Label::Negative;
    }
    for label in labels {
        let point: BitVec = (0..dim).map(|_| rng.gen_bool(0.5)).collect();
        ds.push(point, label);
    }
    ds
}

/// A uniformly random query point in `{0,1}^dim`.
pub fn random_boolean_point(rng: &mut impl Rng, dim: usize) -> BitVec {
    (0..dim).map(|_| rng.gen_bool(0.5)).collect()
}

/// Uniformly random continuous dataset over `[-1, 1]^dim` with Bernoulli labels.
pub fn random_real_dataset(
    rng: &mut impl Rng,
    n_points: usize,
    dim: usize,
    p_positive: f64,
) -> ContinuousDataset<f64> {
    assert!(n_points >= 2);
    let mut ds = ContinuousDataset::new(dim);
    let mut labels: Vec<Label> = (0..n_points)
        .map(|_| if rng.gen_bool(p_positive) { Label::Positive } else { Label::Negative })
        .collect();
    if !labels.contains(&Label::Positive) {
        labels[0] = Label::Positive;
    }
    if !labels.contains(&Label::Negative) {
        labels[1] = Label::Negative;
    }
    for label in labels {
        let point: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        ds.push(point, label);
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn boolean_dataset_shape_and_classes() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = random_boolean_dataset(&mut rng, 50, 16, 0.5);
        assert_eq!(ds.len(), 50);
        assert_eq!(ds.dim(), 16);
        assert!(ds.count_of(Label::Positive) >= 1);
        assert!(ds.count_of(Label::Negative) >= 1);
    }

    #[test]
    fn extreme_label_probability_still_has_both_classes() {
        let mut rng = StdRng::seed_from_u64(4);
        let ds = random_boolean_dataset(&mut rng, 20, 8, 0.0);
        assert_eq!(ds.count_of(Label::Positive), 1);
        let ds2 = random_boolean_dataset(&mut rng, 20, 8, 1.0);
        assert_eq!(ds2.count_of(Label::Negative), 1);
    }

    #[test]
    fn real_dataset_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let ds = random_real_dataset(&mut rng, 30, 4, 0.5);
        for (p, _) in ds.iter() {
            assert!(p.iter().all(|&v| (-1.0..1.0).contains(&v)));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = random_boolean_dataset(&mut StdRng::seed_from_u64(9), 10, 12, 0.5);
        let b = random_boolean_dataset(&mut StdRng::seed_from_u64(9), 10, 12, 0.5);
        for i in 0..a.len() {
            assert_eq!(a.point(i), b.point(i));
            assert_eq!(a.label(i), b.label(i));
        }
    }
}
