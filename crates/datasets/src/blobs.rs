//! Gaussian blob datasets (the Figure 2 illustration workload).

use knn_space::{ContinuousDataset, Label};
use rand::Rng;

/// A Gaussian cluster specification.
#[derive(Clone, Debug)]
pub struct Blob {
    /// Cluster mean.
    pub center: Vec<f64>,
    /// Isotropic standard deviation.
    pub sigma: f64,
    /// Class of the cluster's samples.
    pub label: Label,
    /// Number of samples to draw.
    pub count: usize,
}

fn gaussian(rng: &mut impl Rng) -> f64 {
    let (u1, u2): (f64, f64) = (rng.gen_range(1e-12..1.0), rng.gen_range(0.0..1.0));
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a dataset from a mixture of isotropic Gaussians.
pub fn blobs_dataset(rng: &mut impl Rng, blobs: &[Blob]) -> ContinuousDataset<f64> {
    let dim = blobs.first().expect("need at least one blob").center.len();
    assert!(blobs.iter().all(|b| b.center.len() == dim));
    let mut ds = ContinuousDataset::new(dim);
    for b in blobs {
        for _ in 0..b.count {
            let p: Vec<f64> = b.center.iter().map(|&c| c + b.sigma * gaussian(rng)).collect();
            ds.push(p, b.label);
        }
    }
    ds
}

/// The two-class 2-D layout used by the Figure 2 harness: a positive cluster
/// ring around a negative core, plus satellite clusters, giving the curved
/// decision boundary the figure illustrates.
pub fn figure2_layout(rng: &mut impl Rng) -> ContinuousDataset<f64> {
    blobs_dataset(
        rng,
        &[
            Blob { center: vec![0.0, 0.0], sigma: 0.45, label: Label::Negative, count: 24 },
            Blob { center: vec![2.1, 0.4], sigma: 0.4, label: Label::Positive, count: 14 },
            Blob { center: vec![-1.6, 1.6], sigma: 0.35, label: Label::Positive, count: 12 },
            Blob { center: vec![0.3, -2.1], sigma: 0.4, label: Label::Positive, count: 12 },
            Blob { center: vec![-1.9, -1.4], sigma: 0.35, label: Label::Negative, count: 10 },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn blob_counts_and_labels() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = blobs_dataset(
            &mut rng,
            &[
                Blob { center: vec![0.0, 0.0], sigma: 0.1, label: Label::Negative, count: 5 },
                Blob { center: vec![5.0, 5.0], sigma: 0.1, label: Label::Positive, count: 7 },
            ],
        );
        assert_eq!(ds.len(), 12);
        assert_eq!(ds.count_of(Label::Positive), 7);
    }

    #[test]
    fn samples_concentrate_near_centers() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = blobs_dataset(
            &mut rng,
            &[Blob { center: vec![3.0, -1.0], sigma: 0.2, label: Label::Positive, count: 50 }],
        );
        for (p, _) in ds.iter() {
            let d = ((p[0] - 3.0).powi(2) + (p[1] + 1.0).powi(2)).sqrt();
            assert!(d < 1.5, "sample {p:?} is implausibly far from its center");
        }
    }

    #[test]
    fn figure2_layout_has_both_classes() {
        let mut rng = StdRng::seed_from_u64(3);
        let ds = figure2_layout(&mut rng);
        assert!(ds.count_of(Label::Positive) > 10);
        assert!(ds.count_of(Label::Negative) > 10);
        assert_eq!(ds.dim(), 2);
    }
}
