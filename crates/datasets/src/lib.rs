//! Synthetic workload generators for the `explainable-knn` experiments.
//!
//! The paper evaluates on (a) uniformly random boolean vectors with Bernoulli
//! labels (Figure 5) and (b) the MNIST handwritten-digit dataset at several
//! rescalings, both grayscale and binarized (Figures 1 and 6). MNIST itself is
//! not redistributable in this offline environment, so [`digits`] generates
//! **stroke-rendered digit images** — seven-segment-style templates with
//! random translation, scale, stroke thickness and pixel noise — preserving
//! exactly the workload properties the experiments exercise: high dimension
//! (`side²` features), per-class cluster structure, sparse between-class
//! differences, and a natural side-length sweep. The substitution is recorded
//! in DESIGN.md §1 and EXPERIMENTS.md.
//!
//! The crate also generates the combinatorial instances that feed the
//! hardness-reduction tests: random graphs (Vertex Cover, Clique), knapsack
//! and partition instances, each with small-scale brute-force solvers used as
//! ground truth.

#![warn(missing_docs)]

pub mod blobs;
pub mod combinatorial;
pub mod digits;
pub mod graphs;
pub mod idx;
pub mod random;

pub use digits::{render_digit, DigitsConfig};
pub use graphs::Graph;
