//! Reader for the IDX file format — the container MNIST ships in
//! (`train-images-idx3-ubyte` / `train-labels-idx1-ubyte`).
//!
//! The synthetic stroke digits of [`crate::digits`] stand in for MNIST in the
//! offline experiments (DESIGN.md §1), but a user with the real files can
//! load them here and run the paper's *exact* Figure 1 / Figure 6 workloads:
//!
//! ```no_run
//! # use knn_datasets::idx;
//! let images = idx::read_idx_images(&std::fs::read("train-images-idx3-ubyte").unwrap()).unwrap();
//! let labels = idx::read_idx_labels(&std::fs::read("train-labels-idx1-ubyte").unwrap()).unwrap();
//! let ds = idx::one_vs_rest(&images, &labels, &[4, 9], 4, 500).unwrap();
//! ```
//!
//! Format (per Y. LeCun's spec): big-endian; magic `0x00 0x00 <type> <rank>`
//! with `type = 0x08` (unsigned byte) for MNIST; then `rank` big-endian u32
//! dimension sizes; then the data, row-major.

use knn_space::{BitVec, BooleanDataset, ContinuousDataset, Label};

/// A decoded IDX image stack: `count` images of `rows × cols` bytes.
#[derive(Clone, Debug, PartialEq)]
pub struct IdxImages {
    /// Number of images.
    pub count: usize,
    /// Image height.
    pub rows: usize,
    /// Image width.
    pub cols: usize,
    /// Row-major pixel bytes, `count * rows * cols` long.
    pub pixels: Vec<u8>,
}

impl IdxImages {
    /// The `i`-th image as `f64` grayscale in `[0, 1]`.
    pub fn image(&self, i: usize) -> Vec<f64> {
        let sz = self.rows * self.cols;
        self.pixels[i * sz..(i + 1) * sz].iter().map(|&b| b as f64 / 255.0).collect()
    }
}

/// Decoding errors with enough context to debug a truncated download.
#[derive(Clone, Debug, PartialEq)]
pub enum IdxError {
    /// Fewer than 4 header bytes, or bad magic prefix / element type.
    BadMagic,
    /// The rank in the magic does not match the reader used (images need
    /// rank 3, labels rank 1).
    WrongRank {
        /// The rank this reader handles.
        expected: u8,
        /// The rank found in the file.
        got: u8,
    },
    /// The payload is shorter than the header promises.
    Truncated {
        /// Bytes the header promises.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// Image/label pairing mismatch or an out-of-range request.
    Inconsistent(String),
}

impl std::fmt::Display for IdxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdxError::BadMagic => write!(f, "not an unsigned-byte IDX file"),
            IdxError::WrongRank { expected, got } => {
                write!(f, "IDX rank {got}, expected {expected}")
            }
            IdxError::Truncated { expected, got } => {
                write!(f, "IDX payload truncated: {got} of {expected} bytes")
            }
            IdxError::Inconsistent(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for IdxError {}

fn header(bytes: &[u8], expected_rank: u8) -> Result<Vec<usize>, IdxError> {
    if bytes.len() < 4 || bytes[0] != 0 || bytes[1] != 0 || bytes[2] != 0x08 {
        return Err(IdxError::BadMagic);
    }
    let rank = bytes[3];
    if rank != expected_rank {
        return Err(IdxError::WrongRank { expected: expected_rank, got: rank });
    }
    let need = 4 + 4 * rank as usize;
    if bytes.len() < need {
        return Err(IdxError::Truncated { expected: need, got: bytes.len() });
    }
    Ok((0..rank as usize)
        .map(|i| {
            let o = 4 + 4 * i;
            u32::from_be_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]) as usize
        })
        .collect())
}

/// Decodes a rank-3 unsigned-byte IDX file (MNIST images).
pub fn read_idx_images(bytes: &[u8]) -> Result<IdxImages, IdxError> {
    let dims = header(bytes, 3)?;
    let (count, rows, cols) = (dims[0], dims[1], dims[2]);
    let data = &bytes[16..];
    let expected = count * rows * cols;
    if data.len() < expected {
        return Err(IdxError::Truncated { expected: expected + 16, got: bytes.len() });
    }
    Ok(IdxImages { count, rows, cols, pixels: data[..expected].to_vec() })
}

/// Decodes a rank-1 unsigned-byte IDX file (MNIST labels).
pub fn read_idx_labels(bytes: &[u8]) -> Result<Vec<u8>, IdxError> {
    let dims = header(bytes, 1)?;
    let count = dims[0];
    let data = &bytes[8..];
    if data.len() < count {
        return Err(IdxError::Truncated { expected: count + 8, got: bytes.len() });
    }
    Ok(data[..count].to_vec())
}

/// Builds the paper's one-vs-rest grayscale dataset from decoded MNIST:
/// among images whose label is in `classes`, the first `n_per_class` of each
/// are taken; `positive_digit` is the positive class (§9.1's protocol).
pub fn one_vs_rest(
    images: &IdxImages,
    labels: &[u8],
    classes: &[u8],
    positive_digit: u8,
    n_per_class: usize,
) -> Result<ContinuousDataset<f64>, IdxError> {
    if images.count != labels.len() {
        return Err(IdxError::Inconsistent(format!(
            "{} images but {} labels",
            images.count,
            labels.len()
        )));
    }
    if !classes.contains(&positive_digit) {
        return Err(IdxError::Inconsistent(format!(
            "positive digit {positive_digit} not among the selected classes"
        )));
    }
    let mut ds = ContinuousDataset::new(images.rows * images.cols);
    let mut taken = vec![0usize; 256];
    for i in 0..images.count {
        let l = labels[i];
        if classes.contains(&l) && taken[l as usize] < n_per_class {
            taken[l as usize] += 1;
            let label = if l == positive_digit { Label::Positive } else { Label::Negative };
            ds.push(images.image(i), label);
        }
    }
    Ok(ds)
}

/// The binarized (threshold 0.5) variant of [`one_vs_rest`] — the discrete
/// setting of Figure 1.
pub fn one_vs_rest_binary(
    images: &IdxImages,
    labels: &[u8],
    classes: &[u8],
    positive_digit: u8,
    n_per_class: usize,
) -> Result<BooleanDataset, IdxError> {
    let gray = one_vs_rest(images, labels, classes, positive_digit, n_per_class)?;
    let mut ds = BooleanDataset::new(gray.dim());
    for (p, l) in gray.iter() {
        ds.push(BitVec::from_bools(&p.iter().map(|&v| v >= 0.5).collect::<Vec<_>>()), l);
    }
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a valid rank-3 IDX byte blob.
    fn make_images(count: usize, rows: usize, cols: usize) -> Vec<u8> {
        let mut b = vec![0, 0, 0x08, 3];
        for d in [count, rows, cols] {
            b.extend_from_slice(&(d as u32).to_be_bytes());
        }
        for i in 0..count * rows * cols {
            b.push((i % 251) as u8);
        }
        b
    }

    fn make_labels(labels: &[u8]) -> Vec<u8> {
        let mut b = vec![0, 0, 0x08, 1];
        b.extend_from_slice(&(labels.len() as u32).to_be_bytes());
        b.extend_from_slice(labels);
        b
    }

    #[test]
    fn roundtrip_images_and_labels() {
        let img = read_idx_images(&make_images(3, 2, 2)).unwrap();
        assert_eq!((img.count, img.rows, img.cols), (3, 2, 2));
        assert_eq!(img.image(0), vec![0.0, 1.0 / 255.0, 2.0 / 255.0, 3.0 / 255.0]);
        let labels = read_idx_labels(&make_labels(&[4, 9, 4])).unwrap();
        assert_eq!(labels, vec![4, 9, 4]);
    }

    #[test]
    fn corrupt_headers_are_rejected() {
        assert_eq!(read_idx_images(&[]).unwrap_err(), IdxError::BadMagic);
        assert_eq!(read_idx_images(&[0, 0, 0x0D, 3, 0]).unwrap_err(), IdxError::BadMagic);
        assert_eq!(
            read_idx_images(&make_labels(&[1, 2])).unwrap_err(),
            IdxError::WrongRank { expected: 3, got: 1 }
        );
        let mut truncated = make_images(2, 2, 2);
        truncated.truncate(18);
        assert!(matches!(read_idx_images(&truncated).unwrap_err(), IdxError::Truncated { .. }));
    }

    #[test]
    fn one_vs_rest_selects_and_labels() {
        let images = read_idx_images(&make_images(6, 2, 2)).unwrap();
        let labels = [4u8, 9, 4, 9, 4, 7];
        let ds = one_vs_rest(&images, &labels, &[4, 9], 4, 2).unwrap();
        assert_eq!(ds.len(), 4, "2 fours + 2 nines; the 7 is skipped");
        assert_eq!(ds.count_of(Label::Positive), 2);
        let bin = one_vs_rest_binary(&images, &labels, &[4, 9], 9, 2).unwrap();
        assert_eq!(bin.count_of(Label::Positive), 2);
    }

    #[test]
    fn inconsistencies_are_reported() {
        let images = read_idx_images(&make_images(3, 2, 2)).unwrap();
        assert!(one_vs_rest(&images, &[1, 2], &[1], 1, 1).is_err(), "count mismatch");
        assert!(
            one_vs_rest(&images, &[1, 2, 3], &[1, 2], 3, 1).is_err(),
            "positive class not selected"
        );
    }
}
