//! Undirected graphs and brute-force solvers for the reduction sources
//! (Vertex Cover, Clique, Independent Set).

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A simple undirected graph on vertices `0..n`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    n: usize,
    edges: BTreeSet<(usize, usize)>,
}

impl Graph {
    /// An edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph { n, edges: BTreeSet::new() }
    }

    /// Builds a graph from an edge list (self-loops rejected).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Adds an undirected edge.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "vertex out of range");
        assert_ne!(u, v, "self-loops not allowed");
        self.edges.insert((u.min(v), u.max(v)));
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Edge list (u < v), sorted.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// True iff `{u, v}` is an edge.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u != v && self.edges.contains(&(u.min(v), u.max(v)))
    }

    /// Degree of vertex `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.edges.iter().filter(|&&(a, b)| a == u || b == u).count()
    }

    /// True iff every vertex has the same degree; returns it.
    pub fn regular_degree(&self) -> Option<usize> {
        if self.n == 0 {
            return Some(0);
        }
        let d = self.degree(0);
        (1..self.n).all(|u| self.degree(u) == d).then_some(d)
    }

    /// True iff `cover` touches every edge.
    pub fn is_vertex_cover(&self, cover: &[usize]) -> bool {
        self.edges.iter().all(|&(u, v)| cover.contains(&u) || cover.contains(&v))
    }

    /// True iff `set` is a clique.
    pub fn is_clique(&self, set: &[usize]) -> bool {
        for (i, &u) in set.iter().enumerate() {
            for &v in &set[i + 1..] {
                if !self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// True iff `set` is independent.
    pub fn is_independent(&self, set: &[usize]) -> bool {
        for (i, &u) in set.iter().enumerate() {
            for &v in &set[i + 1..] {
                if self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// Brute-force minimum vertex cover size (exponential; small graphs only).
    pub fn min_vertex_cover_size(&self) -> usize {
        assert!(self.n <= 24, "brute force limited to small graphs");
        for size in 0..=self.n {
            if self.exists_subset(size, |s| self.is_vertex_cover(s)) {
                return size;
            }
        }
        self.n
    }

    /// Brute-force check: is there a vertex cover of size ≤ `k`?
    pub fn has_vertex_cover_of_size(&self, k: usize) -> bool {
        self.min_vertex_cover_size() <= k
    }

    /// Brute-force check: is there a clique of size ≥ `k`?
    pub fn has_clique_of_size(&self, k: usize) -> bool {
        assert!(self.n <= 24, "brute force limited to small graphs");
        if k == 0 {
            return true;
        }
        self.exists_subset(k, |s| self.is_clique(s))
    }

    /// Brute-force maximum independent set size.
    pub fn max_independent_set_size(&self) -> usize {
        assert!(self.n <= 24, "brute force limited to small graphs");
        (0..=self.n)
            .rev()
            .find(|&size| self.exists_subset(size, |s| self.is_independent(s)))
            .unwrap_or(0)
    }

    fn exists_subset(&self, size: usize, pred: impl Fn(&[usize]) -> bool) -> bool {
        let mut subset: Vec<usize> = Vec::with_capacity(size);
        self.search_subsets(0, size, &mut subset, &pred)
    }

    fn search_subsets(
        &self,
        start: usize,
        size: usize,
        subset: &mut Vec<usize>,
        pred: &impl Fn(&[usize]) -> bool,
    ) -> bool {
        if subset.len() == size {
            return pred(subset);
        }
        if self.n - start < size - subset.len() {
            return false;
        }
        for v in start..self.n {
            subset.push(v);
            if self.search_subsets(v + 1, size, subset, pred) {
                subset.pop();
                return true;
            }
            subset.pop();
        }
        false
    }
}

/// Erdős–Rényi random graph `G(n, p)`.
pub fn random_graph(rng: &mut impl Rng, n: usize, p: f64) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in u + 1..n {
            if rng.gen_bool(p) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Random `d`-regular graph via the pairing model with rejection (needs
/// `n·d` even, `d < n`; retries until a simple graph is produced).
pub fn random_regular_graph(rng: &mut impl Rng, n: usize, d: usize) -> Graph {
    assert!(d < n && (n * d).is_multiple_of(2), "invalid regular graph parameters");
    'retry: loop {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        // Fisher-Yates shuffle.
        for i in (1..stubs.len()).rev() {
            stubs.swap(i, rng.gen_range(0..=i));
        }
        let mut g = Graph::new(n);
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v || g.has_edge(u, v) {
                continue 'retry;
            }
            g.add_edge(u, v);
        }
        return g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn basics() {
        let g = triangle();
        assert_eq!(g.n_edges(), 3);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.regular_degree(), Some(2));
    }

    #[test]
    fn vertex_cover_brute_force() {
        let g = triangle();
        assert_eq!(g.min_vertex_cover_size(), 2);
        assert!(g.is_vertex_cover(&[0, 1]));
        assert!(!g.is_vertex_cover(&[0]));
        // Path on 4 vertices: cover size 2.
        let p4 = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(p4.min_vertex_cover_size(), 2);
        // Star K_{1,4}: cover size 1.
        let star = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(star.min_vertex_cover_size(), 1);
    }

    #[test]
    fn clique_and_independent_set() {
        let g = triangle();
        assert!(g.has_clique_of_size(3));
        assert!(!g.has_clique_of_size(4));
        assert_eq!(g.max_independent_set_size(), 1);
        let empty = Graph::new(5);
        assert_eq!(empty.max_independent_set_size(), 5);
        assert!(empty.has_clique_of_size(1));
        assert!(!empty.has_clique_of_size(2));
    }

    #[test]
    fn gallai_identity_on_random_graphs() {
        // α(G) + τ(G) = n (observation 1 in the proof of Theorem 9).
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10 {
            let g = random_graph(&mut rng, 8, 0.4);
            assert_eq!(g.max_independent_set_size() + g.min_vertex_cover_size(), 8);
        }
    }

    #[test]
    fn regular_graph_generation() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = random_regular_graph(&mut rng, 8, 3);
        assert_eq!(g.regular_degree(), Some(3));
        assert_eq!(g.n_edges(), 12);
    }
}
