//! Knapsack and Partition instances — sources of the ℓ1 hardness reductions
//! (Theorems 4 and 5) — with brute-force ground-truth solvers.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The knapsack variant used in the proof of Theorem 4: can items of at least
/// **half the total value** fit within capacity `w_max`?
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HalfValueKnapsack {
    /// Item weights (positive).
    pub weights: Vec<u64>,
    /// Item values (positive).
    pub values: Vec<u64>,
    /// Knapsack capacity `W`.
    pub capacity: u64,
}

impl HalfValueKnapsack {
    /// Number of items.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True iff there are no items.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Brute-force decision: is there `T` with `Σ_{i∈T} w_i ≤ W` and
    /// `Σ_{i∈T} v_i ≥ (Σ v)/2`? (Exponential; small instances only.)
    pub fn brute_force(&self) -> bool {
        let n = self.len();
        assert!(n <= 22, "brute force limited to small instances");
        let total: u64 = self.values.iter().sum();
        for mask in 0u32..(1u32 << n) {
            let mut w = 0u64;
            let mut v = 0u64;
            for i in 0..n {
                if (mask >> i) & 1 == 1 {
                    w += self.weights[i];
                    v += self.values[i];
                }
            }
            // value ≥ total/2  ⟺  2·value ≥ total (avoids integer halving).
            if w <= self.capacity && 2 * v >= total {
                return true;
            }
        }
        false
    }
}

/// Random half-value knapsack instance.
pub fn random_knapsack(
    rng: &mut impl Rng,
    n: usize,
    max_weight: u64,
    max_value: u64,
) -> HalfValueKnapsack {
    let weights: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=max_weight)).collect();
    let values: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=max_value)).collect();
    let total_w: u64 = weights.iter().sum();
    let capacity = rng.gen_range(1..=total_w.max(1));
    HalfValueKnapsack { weights, values, capacity }
}

/// A Partition instance: positive integers `v_1..v_n`; is there `T` with
/// `Σ_{i∈T} v_i = Σ_{i∉T} v_i`? (Source of Theorem 5's reduction.)
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PartitionInstance {
    /// The multiset of positive integers.
    pub values: Vec<u64>,
}

impl PartitionInstance {
    /// Brute-force decision (exponential; small instances only).
    pub fn brute_force(&self) -> bool {
        let n = self.values.len();
        assert!(n <= 22, "brute force limited to small instances");
        let total: u64 = self.values.iter().sum();
        if !total.is_multiple_of(2) {
            return false;
        }
        for mask in 0u32..(1u32 << n) {
            let mut s = 0u64;
            for i in 0..n {
                if (mask >> i) & 1 == 1 {
                    s += self.values[i];
                }
            }
            if 2 * s == total {
                return true;
            }
        }
        false
    }
}

/// Random partition instance.
pub fn random_partition(rng: &mut impl Rng, n: usize, max_value: u64) -> PartitionInstance {
    PartitionInstance { values: (0..n).map(|_| rng.gen_range(1..=max_value)).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn knapsack_decisions() {
        // Two items of value 5 each, total 10; need ≥ 5 within capacity.
        let yes = HalfValueKnapsack { weights: vec![3, 4], values: vec![5, 5], capacity: 3 };
        assert!(yes.brute_force());
        let no = HalfValueKnapsack { weights: vec![3, 4], values: vec![5, 5], capacity: 2 };
        assert!(!no.brute_force());
    }

    #[test]
    fn knapsack_needs_combination() {
        // Must take both small items to reach half the value.
        let inst =
            HalfValueKnapsack { weights: vec![2, 2, 10], values: vec![3, 3, 6], capacity: 4 };
        assert!(inst.brute_force());
        let tight =
            HalfValueKnapsack { weights: vec![2, 2, 10], values: vec![3, 3, 6], capacity: 3 };
        assert!(!tight.brute_force());
    }

    #[test]
    fn partition_decisions() {
        assert!(PartitionInstance { values: vec![1, 2, 3] }.brute_force());
        assert!(!PartitionInstance { values: vec![1, 2, 4] }.brute_force());
        assert!(PartitionInstance { values: vec![2, 2] }.brute_force());
        assert!(!PartitionInstance { values: vec![1] }.brute_force());
        assert!(!PartitionInstance { values: vec![1, 1, 1] }.brute_force());
    }

    #[test]
    fn random_instances_well_formed() {
        let mut rng = StdRng::seed_from_u64(8);
        let k = random_knapsack(&mut rng, 6, 9, 9);
        assert_eq!(k.len(), 6);
        assert!(k.weights.iter().all(|&w| w >= 1));
        let p = random_partition(&mut rng, 6, 12);
        assert!(p.values.iter().all(|&v| v >= 1));
    }
}
