//! Stroke-rendered digit images: the MNIST substitute (see crate docs).
//!
//! Each digit class is a set of line segments in the unit square (a
//! seven-segment skeleton plus diagonals where it helps disambiguation). A
//! sample is rendered by applying a random affine jitter (translation, scale),
//! random stroke thickness, rasterizing at `side × side`, and adding pixel
//! noise. Classes are well separated for a 1-NN classifier while neighboring
//! digits (4 vs 9, 3 vs 8) differ in a small set of pixels — the property
//! Figure 1's counterfactual visualization depends on.

use knn_space::{BitVec, BooleanDataset, ContinuousDataset, Label};
use rand::Rng;

/// A line segment in the unit square.
#[derive(Clone, Copy, Debug)]
struct Seg {
    x1: f64,
    y1: f64,
    x2: f64,
    y2: f64,
}

const fn seg(x1: f64, y1: f64, x2: f64, y2: f64) -> Seg {
    Seg { x1, y1, x2, y2 }
}

// Seven-segment skeleton (y grows downward).
const TOP: Seg = seg(0.25, 0.15, 0.75, 0.15);
const TOP_LEFT: Seg = seg(0.25, 0.15, 0.25, 0.5);
const TOP_RIGHT: Seg = seg(0.75, 0.15, 0.75, 0.5);
const MIDDLE: Seg = seg(0.25, 0.5, 0.75, 0.5);
const BOT_LEFT: Seg = seg(0.25, 0.5, 0.25, 0.85);
const BOT_RIGHT: Seg = seg(0.75, 0.5, 0.75, 0.85);
const BOTTOM: Seg = seg(0.25, 0.85, 0.75, 0.85);

fn template(digit: u8) -> Vec<Seg> {
    match digit {
        0 => vec![TOP, TOP_LEFT, TOP_RIGHT, BOT_LEFT, BOT_RIGHT, BOTTOM],
        1 => vec![TOP_RIGHT, BOT_RIGHT],
        2 => vec![TOP, TOP_RIGHT, MIDDLE, BOT_LEFT, BOTTOM],
        3 => vec![TOP, TOP_RIGHT, MIDDLE, BOT_RIGHT, BOTTOM],
        4 => vec![TOP_LEFT, TOP_RIGHT, MIDDLE, BOT_RIGHT],
        5 => vec![TOP, TOP_LEFT, MIDDLE, BOT_RIGHT, BOTTOM],
        6 => vec![TOP, TOP_LEFT, MIDDLE, BOT_LEFT, BOT_RIGHT, BOTTOM],
        7 => vec![TOP, TOP_RIGHT, BOT_RIGHT],
        8 => vec![TOP, TOP_LEFT, TOP_RIGHT, MIDDLE, BOT_LEFT, BOT_RIGHT, BOTTOM],
        9 => vec![TOP, TOP_LEFT, TOP_RIGHT, MIDDLE, BOT_RIGHT, BOTTOM],
        _ => panic!("digit must be 0–9, got {digit}"),
    }
}

fn point_segment_dist(px: f64, py: f64, s: &Seg) -> f64 {
    let (dx, dy) = (s.x2 - s.x1, s.y2 - s.y1);
    let len_sq = dx * dx + dy * dy;
    let t = if len_sq == 0.0 {
        0.0
    } else {
        (((px - s.x1) * dx + (py - s.y1) * dy) / len_sq).clamp(0.0, 1.0)
    };
    let (cx, cy) = (s.x1 + t * dx, s.y1 + t * dy);
    ((px - cx).powi(2) + (py - cy).powi(2)).sqrt()
}

/// Rendering parameters for the digit generator.
#[derive(Clone, Copy, Debug)]
pub struct DigitsConfig {
    /// Image side length (the paper sweeps 12..=28).
    pub side: usize,
    /// Max |translation| of the glyph, as a fraction of the unit square.
    pub jitter: f64,
    /// Scale range around 1.0 (e.g. 0.12 → scales in [0.88, 1.12]).
    pub scale_jitter: f64,
    /// Base stroke thickness (fraction of the unit square).
    pub thickness: f64,
    /// Standard deviation of additive pixel noise (grayscale).
    pub noise: f64,
}

impl DigitsConfig {
    /// Defaults matching the qualitative look of low-resolution MNIST.
    pub fn new(side: usize) -> Self {
        DigitsConfig { side, jitter: 0.05, scale_jitter: 0.10, thickness: 0.09, noise: 0.04 }
    }
}

/// Renders one random sample of `digit` as a grayscale image in `[0,1]^{side²}`
/// (row-major).
pub fn render_digit(rng: &mut impl Rng, digit: u8, cfg: &DigitsConfig) -> Vec<f64> {
    let segs = template(digit);
    let (tx, ty) =
        (rng.gen_range(-cfg.jitter..=cfg.jitter), rng.gen_range(-cfg.jitter..=cfg.jitter));
    let scale = 1.0 + rng.gen_range(-cfg.scale_jitter..=cfg.scale_jitter);
    let thick = cfg.thickness * (1.0 + rng.gen_range(-0.25..=0.25));
    let side = cfg.side;
    let mut img = vec![0.0f64; side * side];
    for row in 0..side {
        for col in 0..side {
            // Pixel center mapped back through the inverse jitter transform.
            let px = ((col as f64 + 0.5) / side as f64 - 0.5 - tx) / scale + 0.5;
            let py = ((row as f64 + 0.5) / side as f64 - 0.5 - ty) / scale + 0.5;
            let d =
                segs.iter().map(|s| point_segment_dist(px, py, s)).fold(f64::INFINITY, f64::min);
            let mut v = if d <= thick {
                1.0
            } else if d <= 2.0 * thick {
                // Soft falloff emulating anti-aliased handwriting edges.
                1.0 - (d - thick) / thick
            } else {
                0.0
            };
            if cfg.noise > 0.0 {
                // Box-Muller Gaussian noise.
                let (u1, u2): (f64, f64) = (rng.gen_range(1e-9..1.0), rng.gen_range(0.0..1.0));
                let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                v += cfg.noise * g;
            }
            img[row * side + col] = v.clamp(0.0, 1.0);
        }
    }
    img
}

/// Binarizes a grayscale image at the given threshold.
pub fn binarize(img: &[f64], threshold: f64) -> BitVec {
    img.iter().map(|&v| v >= threshold).collect()
}

/// Generates a grayscale one-vs-rest digits dataset: `n_per_class` samples of
/// each digit in `classes`, with `positive_digit` labeled positive and every
/// other class negative — mirroring §9.1's protocol ("all images of digit d
/// are positive, images of d′ ≠ d negative").
pub fn digits_dataset(
    rng: &mut impl Rng,
    cfg: &DigitsConfig,
    classes: &[u8],
    positive_digit: u8,
    n_per_class: usize,
) -> ContinuousDataset<f64> {
    assert!(classes.contains(&positive_digit));
    let mut ds = ContinuousDataset::new(cfg.side * cfg.side);
    for &c in classes {
        for _ in 0..n_per_class {
            let img = render_digit(rng, c, cfg);
            let label = if c == positive_digit { Label::Positive } else { Label::Negative };
            ds.push(img, label);
        }
    }
    ds
}

/// The binarized variant of [`digits_dataset`] (the discrete setting of Fig 1).
pub fn binary_digits_dataset(
    rng: &mut impl Rng,
    cfg: &DigitsConfig,
    classes: &[u8],
    positive_digit: u8,
    n_per_class: usize,
) -> BooleanDataset {
    assert!(classes.contains(&positive_digit));
    let mut ds = BooleanDataset::new(cfg.side * cfg.side);
    for &c in classes {
        for _ in 0..n_per_class {
            let img = render_digit(rng, c, cfg);
            let label = if c == positive_digit { Label::Positive } else { Label::Negative };
            ds.push(binarize(&img, 0.5), label);
        }
    }
    ds
}

/// ASCII-art rendering of a grayscale image (for the examples and harnesses).
pub fn ascii_art(img: &[f64], side: usize) -> String {
    let ramp = [' ', '.', ':', '+', '#', '@'];
    let mut out = String::with_capacity((side + 1) * side);
    for row in 0..side {
        for col in 0..side {
            let v = img[row * side + col].clamp(0.0, 1.0);
            let idx = ((v * (ramp.len() - 1) as f64).round() as usize).min(ramp.len() - 1);
            out.push(ramp[idx]);
        }
        out.push('\n');
    }
    out
}

/// ASCII-art rendering of a binary image, optionally highlighting `marks`
/// (pixel indices) with `*` — used for Figure 1's diff maps.
pub fn ascii_art_binary(img: &BitVec, side: usize, marks: &[usize]) -> String {
    let mut out = String::with_capacity((side + 1) * side);
    for row in 0..side {
        for col in 0..side {
            let i = row * side + col;
            let c = if marks.contains(&i) {
                '*'
            } else if img.get(i) {
                '#'
            } else {
                '.'
            };
            out.push(c);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn renders_have_ink() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = DigitsConfig::new(16);
        for d in 0..10u8 {
            let img = render_digit(&mut rng, d, &cfg);
            assert_eq!(img.len(), 256);
            let ink: f64 = img.iter().sum();
            assert!(ink > 5.0, "digit {d} rendered blank (ink {ink})");
            // Guards against a fully-solid render (ink 256); thick-stroke
            // digits like 6/8 legitimately land around 200 at unlucky jitter.
            assert!(ink < 235.0, "digit {d} rendered solid (ink {ink})");
        }
    }

    #[test]
    fn same_class_closer_than_other_class_on_average() {
        // The 1-NN usefulness criterion: intra-class Hamming distance of the
        // binarized images must be clearly below inter-class distance.
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = DigitsConfig::new(16);
        let fours: Vec<BitVec> =
            (0..12).map(|_| binarize(&render_digit(&mut rng, 4, &cfg), 0.5)).collect();
        let nines: Vec<BitVec> =
            (0..12).map(|_| binarize(&render_digit(&mut rng, 9, &cfg), 0.5)).collect();
        let avg = |xs: &[BitVec], ys: &[BitVec]| -> f64 {
            let mut total = 0usize;
            let mut count = 0usize;
            for (i, a) in xs.iter().enumerate() {
                for (j, b) in ys.iter().enumerate() {
                    if std::ptr::eq(xs, ys) && i == j {
                        continue;
                    }
                    total += a.hamming(b);
                    count += 1;
                }
            }
            total as f64 / count as f64
        };
        let intra = avg(&fours, &fours);
        let inter = avg(&fours, &nines);
        assert!(intra < inter, "intra-class distance {intra} should be below inter-class {inter}");
    }

    #[test]
    fn dataset_labels_one_vs_rest() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = DigitsConfig::new(12);
        let ds = digits_dataset(&mut rng, &cfg, &[4, 9], 4, 7);
        assert_eq!(ds.len(), 14);
        assert_eq!(ds.count_of(Label::Positive), 7);
        assert_eq!(ds.dim(), 144);
    }

    #[test]
    fn binarized_dataset() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = DigitsConfig::new(12);
        let ds = binary_digits_dataset(&mut rng, &cfg, &[3, 8], 8, 5);
        assert_eq!(ds.len(), 10);
        assert!(ds.point(0).weight() > 0);
    }

    #[test]
    fn ascii_art_shapes() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = DigitsConfig::new(10);
        let img = render_digit(&mut rng, 0, &cfg);
        let art = ascii_art(&img, 10);
        assert_eq!(art.lines().count(), 10);
        assert!(art.lines().all(|l| l.chars().count() == 10));
        let b = binarize(&img, 0.5);
        let art2 = ascii_art_binary(&b, 10, &[0]);
        assert!(art2.starts_with('*'));
    }
}
