//! Property tests for the branch & bound MILP solver: on arbitrary small
//! mixed 0–1 programs, every configuration (node order × rounding heuristic)
//! must agree with a reference that enumerates the binary assignments and
//! solves the continuous remainder as an LP.

use knn_lp::{LpOutcome, LpProblem, Objective, Rel};
use knn_milp::{MilpConfig, MilpOutcome, MilpProblem, NodeOrder};
use proptest::prelude::*;

const TOL: f64 = 1e-5;

#[derive(Clone, Debug)]
struct Mixed {
    nb: usize,                  // binary variables
    nc: usize,                  // continuous variables, each in [0, 4]
    rows: Vec<(Vec<f64>, f64)>, // a·x ≤ b over all nb + nc variables
    objective: Vec<f64>,
}

fn mixed_strategy() -> impl Strategy<Value = Mixed> {
    (1..=4usize, 0..=2usize).prop_flat_map(|(nb, nc)| {
        let n = nb + nc;
        (
            prop::collection::vec((prop::collection::vec(-3..=3i32, n), 0..=7i32), 1..=4),
            prop::collection::vec(-4..=4i32, n),
        )
            .prop_map(move |(rows, obj)| Mixed {
                nb,
                nc,
                rows: rows
                    .into_iter()
                    .map(|(a, b)| (a.into_iter().map(f64::from).collect(), f64::from(b)))
                    .collect(),
                objective: obj.into_iter().map(f64::from).collect(),
            })
    })
}

fn build(m: &Mixed) -> MilpProblem {
    let n = m.nb + m.nc;
    let mut p = MilpProblem::new(n);
    for j in 0..m.nb {
        p.set_binary(j);
    }
    for j in m.nb..n {
        p.set_lower(j, 0.0);
        p.set_upper(j, 4.0);
    }
    for (a, b) in &m.rows {
        p.add_dense(a, Rel::Le, *b);
    }
    p
}

/// Reference: enumerate binaries, LP the continuous tail.
fn reference(m: &Mixed) -> Option<f64> {
    let n = m.nb + m.nc;
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << m.nb) {
        let mut lp = LpProblem::new(n);
        for j in 0..m.nb {
            let v = ((mask >> j) & 1) as f64;
            lp.set_lower(j, v);
            lp.set_upper(j, v);
        }
        for j in m.nb..n {
            lp.set_lower(j, 0.0);
            lp.set_upper(j, 4.0);
        }
        for (a, b) in &m.rows {
            lp.add_dense(a, Rel::Le, *b);
        }
        if let LpOutcome::Optimal { value, .. } = lp.solve(&m.objective, Objective::Maximize) {
            best = Some(best.map_or(value, |b: f64| b.max(value)));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_configuration_matches_the_reference(m in mixed_strategy()) {
        let p = build(&m);
        let want = reference(&m);
        for order in [NodeOrder::DepthFirst, NodeOrder::BestBound] {
            for rounding in [false, true] {
                let cfg = MilpConfig {
                    node_order: order,
                    rounding_heuristic: rounding,
                    ..Default::default()
                };
                match (p.solve(&m.objective, Objective::Maximize, cfg), want) {
                    (MilpOutcome::Optimal { x, value }, Some(w)) => {
                        prop_assert!((value - w).abs() < TOL,
                            "{order:?}/rounding={rounding}: {value} vs reference {w}");
                        // The reported point must itself be feasible & consistent.
                        for (a, b) in &m.rows {
                            let lhs: f64 = a.iter().zip(&x).map(|(ai, xi)| ai * xi).sum();
                            prop_assert!(lhs <= b + TOL);
                        }
                        for (j, &xj) in x.iter().enumerate().take(m.nb) {
                            prop_assert!((xj - xj.round()).abs() < TOL, "binary {j} fractional");
                        }
                    }
                    (MilpOutcome::Infeasible, None) => {}
                    (got, w) => prop_assert!(false,
                        "{order:?}/rounding={rounding}: {got:?} vs reference {w:?}"),
                }
            }
        }
    }
}
