//! 0–1 mixed-integer linear programming by branch & bound.
//!
//! This is the workspace's **Gurobi substitute** (DESIGN.md §1): the discrete
//! IQP of the paper's §9.2 linearizes exactly over binary variables
//! (`(x̄ᵢ − ȳᵢ)² = x̄ᵢ(1−ȳᵢ) + (1−x̄ᵢ)ȳᵢ`), and its `min`-constraints become
//! big-M indicator rows, so a 0–1 MILP solver is all the "IQP" experiments
//! need. The ℓ1 counterfactual model (Theorem 4 setting) also runs through
//! this crate.
//!
//! Algorithm: branch & bound over the `f64` simplex relaxation of `knn-lp`
//! with configurable node order (depth-first diving or best-bound), a
//! fix-and-repair rounding heuristic, priority-guided most-fractional
//! branching and incumbent pruning. Exact for the model class; slower than a
//! commercial solver, which EXPERIMENTS.md accounts for when comparing
//! against the paper's Figure 5a.
//!
//! ```
//! use knn_milp::{MilpProblem, MilpOutcome};
//! use knn_lp::Rel;
//!
//! // Knapsack: max 10a + 6b + 4c  s.t.  5a + 4b + 3c ≤ 8, binary.
//! let mut m = MilpProblem::new(3);
//! for j in 0..3 { m.set_binary(j); }
//! m.add_dense(&[5.0, 4.0, 3.0], Rel::Le, 8.0);
//! match m.maximize(&[10.0, 6.0, 4.0]) {
//!     MilpOutcome::Optimal { value, .. } => assert!((value - 14.0).abs() < 1e-6),
//!     other => panic!("{other:?}"),
//! }
//! ```

#![warn(missing_docs)]

use knn_lp::{LpOutcome, LpProblem, Objective, Rel};

/// Tolerance for considering a relaxation value integral.
const INT_TOL: f64 = 1e-6;

/// A mixed 0–1 linear program.
#[derive(Clone, Debug)]
pub struct MilpProblem {
    n: usize,
    binaries: Vec<bool>,
    rows: Vec<(Vec<(usize, f64)>, Rel, f64)>,
    lower: Vec<Option<f64>>,
    upper: Vec<Option<f64>>,
}

/// Result of a MILP solve.
#[derive(Clone, Debug, PartialEq)]
pub enum MilpOutcome {
    /// Proven-optimal solution.
    Optimal {
        /// The optimal assignment (binaries exactly 0/1).
        x: Vec<f64>,
        /// The objective value in the caller's sense.
        value: f64,
    },
    /// No feasible assignment.
    Infeasible,
    /// The relaxation (and hence the MILP) is unbounded.
    Unbounded,
    /// Node budget exhausted before optimality was proven; the incumbent (if
    /// any) is returned.
    BudgetExhausted {
        /// Best feasible solution and value found within the budget.
        best: Option<(Vec<f64>, f64)>,
    },
}

/// How branch & bound orders its open nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeOrder {
    /// Depth-first, diving on the relaxation's suggested rounding first.
    /// Cheap (O(depth) memory) and finds incumbents early.
    DepthFirst,
    /// Best-bound first: always expand the open node with the smallest
    /// parent relaxation value. Proves optimality in the fewest nodes at the
    /// cost of a priority queue and later incumbents; pairs well with
    /// [`MilpConfig::rounding_heuristic`].
    BestBound,
}

/// Solver configuration.
#[derive(Clone, Debug)]
pub struct MilpConfig {
    /// Maximum number of branch & bound nodes to explore.
    pub max_nodes: usize,
    /// Node expansion order.
    pub node_order: NodeOrder,
    /// Try to repair each fractional relaxation into an incumbent by fixing
    /// every binary to its rounded value and re-solving the LP for the
    /// continuous part. One extra LP per node, often pays for itself by
    /// tightening the pruning bound early.
    pub rounding_heuristic: bool,
    /// Branching priorities: among fractional binaries, the one with the
    /// highest priority is branched on (ties broken by fractionality). Empty
    /// = pure most-fractional. The counterfactual encoders use this to
    /// branch on selector indicators before coordinate flips.
    pub branch_priority: Vec<f64>,
}

impl Default for MilpConfig {
    fn default() -> Self {
        MilpConfig {
            max_nodes: 2_000_000,
            node_order: NodeOrder::DepthFirst,
            rounding_heuristic: false,
            branch_priority: Vec::new(),
        }
    }
}

impl MilpConfig {
    /// Depth-first with a node budget (the historical configuration).
    pub fn with_max_nodes(max_nodes: usize) -> Self {
        MilpConfig { max_nodes, ..Default::default() }
    }
}

/// Statistics from the last [`MilpProblem::solve_stats`] call.
#[derive(Clone, Copy, Debug, Default)]
pub struct MilpStats {
    /// Branch & bound nodes expanded (LPs solved for node relaxations).
    pub nodes: usize,
    /// Extra LPs solved by the rounding heuristic.
    pub heuristic_lps: usize,
    /// How many times the incumbent improved.
    pub incumbent_updates: usize,
}

impl MilpProblem {
    /// Creates a program with `n` continuous variables (mark binaries with
    /// [`MilpProblem::set_binary`]).
    pub fn new(n: usize) -> Self {
        MilpProblem {
            n,
            binaries: vec![false; n],
            rows: Vec::new(),
            lower: vec![None; n],
            upper: vec![None; n],
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.n
    }

    /// Declares variable `j` binary (`{0,1}`).
    pub fn set_binary(&mut self, j: usize) {
        self.binaries[j] = true;
        self.lower[j] = Some(0.0);
        self.upper[j] = Some(1.0);
    }

    /// Sets a lower bound for a continuous variable.
    pub fn set_lower(&mut self, j: usize, v: f64) {
        self.lower[j] = Some(v);
    }

    /// Sets an upper bound for a continuous variable.
    pub fn set_upper(&mut self, j: usize, v: f64) {
        self.upper[j] = Some(v);
    }

    /// Adds the sparse constraint `Σ coeffs (rel) rhs`.
    pub fn add_constraint(&mut self, coeffs: Vec<(usize, f64)>, rel: Rel, rhs: f64) {
        assert!(!rel.is_strict(), "MILP constraints must be non-strict");
        for &(j, _) in &coeffs {
            assert!(j < self.n);
        }
        self.rows.push((coeffs, rel, rhs));
    }

    /// Adds a dense constraint.
    pub fn add_dense(&mut self, a: &[f64], rel: Rel, rhs: f64) {
        assert_eq!(a.len(), self.n);
        let coeffs =
            a.iter().enumerate().filter(|(_, &c)| c != 0.0).map(|(j, &c)| (j, c)).collect();
        self.add_constraint(coeffs, rel, rhs);
    }

    /// Adds the big-M *indicator* row `v = 1 ⇒ a·x ≤ rhs`, encoded as
    /// `a·x ≤ rhs + M(1 − v)`.
    pub fn add_indicator_le(
        &mut self,
        v: usize,
        mut coeffs: Vec<(usize, f64)>,
        rhs: f64,
        big_m: f64,
    ) {
        assert!(self.binaries[v], "indicator variable must be binary");
        coeffs.push((v, big_m));
        self.add_constraint(coeffs, Rel::Le, rhs + big_m);
    }

    fn relaxation(&self, fixings: &[(usize, f64)]) -> LpProblem<f64> {
        let mut lp = LpProblem::new(self.n);
        for j in 0..self.n {
            if let Some(l) = self.lower[j] {
                lp.set_lower(j, l);
            }
            if let Some(u) = self.upper[j] {
                lp.set_upper(j, u);
            }
        }
        for (coeffs, rel, rhs) in &self.rows {
            lp.add_constraint(coeffs.clone(), *rel, *rhs);
        }
        for &(j, v) in fixings {
            lp.set_lower(j, v);
            lp.set_upper(j, v);
        }
        lp
    }

    /// Minimizes `objective·x` with the default configuration.
    pub fn minimize(&self, objective: &[f64]) -> MilpOutcome {
        self.solve(objective, Objective::Minimize, MilpConfig::default())
    }

    /// Maximizes `objective·x` with the default configuration.
    pub fn maximize(&self, objective: &[f64]) -> MilpOutcome {
        self.solve(objective, Objective::Maximize, MilpConfig::default())
    }

    /// Full solve entry point.
    pub fn solve(&self, objective: &[f64], sense: Objective, config: MilpConfig) -> MilpOutcome {
        self.solve_stats(objective, sense, config).0
    }

    /// [`MilpProblem::solve`] returning search statistics alongside the
    /// outcome (node counts for the benchmark harness and the ablation
    /// benches).
    pub fn solve_stats(
        &self,
        objective: &[f64],
        sense: Objective,
        config: MilpConfig,
    ) -> (MilpOutcome, MilpStats) {
        assert_eq!(objective.len(), self.n);
        // Internally minimize.
        let obj: Vec<f64> = match sense {
            Objective::Minimize => objective.to_vec(),
            Objective::Maximize => objective.iter().map(|c| -c).collect(),
        };
        let mut best: Option<(Vec<f64>, f64)> = None;
        let mut stats = MilpStats::default();
        let mut exhausted = false;
        let mut frontier = Frontier::new(config.node_order);
        frontier.push(f64::NEG_INFINITY, Vec::new());
        let mut saw_unbounded = false;

        while let Some((parent_bound, fixings)) = frontier.pop() {
            // A node whose parent bound already exceeds the incumbent can be
            // discarded without an LP solve (best-bound order makes this the
            // global termination test).
            if let Some((_, incumbent)) = &best {
                if parent_bound >= *incumbent - INT_TOL {
                    if config.node_order == NodeOrder::BestBound {
                        break; // all remaining nodes are at least as bad
                    }
                    continue;
                }
            }
            if stats.nodes >= config.max_nodes {
                exhausted = true;
                break;
            }
            stats.nodes += 1;
            let lp = self.relaxation(&fixings);
            match lp.solve(&obj, Objective::Minimize) {
                LpOutcome::Infeasible => continue,
                LpOutcome::Unbounded => {
                    // With all binaries bounded this means the continuous part
                    // is unbounded, which fixing binaries cannot repair.
                    saw_unbounded = true;
                    break;
                }
                LpOutcome::Optimal { x, value } => {
                    if let Some((_, incumbent)) = &best {
                        if value >= *incumbent - INT_TOL {
                            continue; // bound prune
                        }
                    }
                    let branch_var = self.pick_branch_var(&x, &config.branch_priority);
                    match branch_var {
                        None => {
                            // Integral: round binaries exactly and accept.
                            let mut xi = x;
                            for j in 0..self.n {
                                if self.binaries[j] {
                                    xi[j] = xi[j].round();
                                }
                            }
                            best = Some((xi, value));
                            stats.incumbent_updates += 1;
                        }
                        Some(j) => {
                            if config.rounding_heuristic {
                                if let Some((hx, hv)) = self.round_and_repair(&x, &fixings, &obj) {
                                    stats.heuristic_lps += 1;
                                    if best.as_ref().is_none_or(|(_, inc)| hv < *inc - INT_TOL) {
                                        best = Some((hx, hv));
                                        stats.incumbent_updates += 1;
                                    }
                                }
                            }
                            // Explore the rounding suggested by the relaxation
                            // first (pushed last → popped first in DFS; order
                            // is irrelevant under best-bound).
                            let near = x[j].round().clamp(0.0, 1.0);
                            let far = 1.0 - near;
                            let mut a = fixings.clone();
                            a.push((j, far));
                            let mut b = fixings;
                            b.push((j, near));
                            frontier.push(value, a);
                            frontier.push(value, b);
                        }
                    }
                }
            }
        }
        let outcome = if saw_unbounded {
            MilpOutcome::Unbounded
        } else if exhausted {
            let best = best.map(|(x, v)| (x, Self::resign(v, sense)));
            MilpOutcome::BudgetExhausted { best }
        } else {
            match best {
                Some((x, v)) => MilpOutcome::Optimal { x, value: Self::resign(v, sense) },
                None => MilpOutcome::Infeasible,
            }
        };
        (outcome, stats)
    }

    fn resign(v: f64, sense: Objective) -> f64 {
        match sense {
            Objective::Minimize => v,
            Objective::Maximize => -v,
        }
    }

    /// The fractional binary to branch on: highest priority first, most
    /// fractional among equals. `None` when the relaxation is integral.
    fn pick_branch_var(&self, x: &[f64], priority: &[f64]) -> Option<usize> {
        let mut branch_var = None;
        let mut best_key = (f64::NEG_INFINITY, INT_TOL);
        for j in 0..self.n {
            if !self.binaries[j] {
                continue;
            }
            let frac = (x[j] - x[j].round()).abs();
            if frac <= INT_TOL {
                continue;
            }
            let prio = priority.get(j).copied().unwrap_or(0.0);
            if (prio, frac) > best_key {
                best_key = (prio, frac);
                branch_var = Some(j);
            }
        }
        branch_var
    }

    /// Rounding primal heuristic: fix every binary to the relaxation's
    /// rounded value, re-solve the LP over the continuous variables, and
    /// return the repaired point when feasible.
    fn round_and_repair(
        &self,
        x: &[f64],
        fixings: &[(usize, f64)],
        obj: &[f64],
    ) -> Option<(Vec<f64>, f64)> {
        let mut all: Vec<(usize, f64)> = fixings.to_vec();
        for j in 0..self.n {
            if self.binaries[j] && !fixings.iter().any(|&(fj, _)| fj == j) {
                all.push((j, x[j].round().clamp(0.0, 1.0)));
            }
        }
        match self.relaxation(&all).solve(obj, Objective::Minimize) {
            LpOutcome::Optimal { x: hx, value } => {
                let mut xi = hx;
                for j in 0..self.n {
                    if self.binaries[j] {
                        xi[j] = xi[j].round();
                    }
                }
                Some((xi, value))
            }
            _ => None,
        }
    }
}

/// The open-node container: a LIFO stack (depth-first) or a min-heap on the
/// parent relaxation bound (best-bound).
enum Frontier {
    Stack(Vec<(f64, Vec<(usize, f64)>)>),
    Heap(std::collections::BinaryHeap<HeapNode>),
}

struct HeapNode {
    bound: f64,
    fixings: Vec<(usize, f64)>,
}

impl PartialEq for HeapNode {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for HeapNode {}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on bound: reverse the comparison (NaN-free by
        // construction: bounds come from finite LP optima or -inf roots).
        other.bound.total_cmp(&self.bound)
    }
}

impl Frontier {
    fn new(order: NodeOrder) -> Self {
        match order {
            NodeOrder::DepthFirst => Frontier::Stack(Vec::new()),
            NodeOrder::BestBound => Frontier::Heap(std::collections::BinaryHeap::new()),
        }
    }

    fn push(&mut self, bound: f64, fixings: Vec<(usize, f64)>) {
        match self {
            Frontier::Stack(s) => s.push((bound, fixings)),
            Frontier::Heap(h) => h.push(HeapNode { bound, fixings }),
        }
    }

    fn pop(&mut self) -> Option<(f64, Vec<(usize, f64)>)> {
        match self {
            Frontier::Stack(s) => s.pop(),
            Frontier::Heap(h) => h.pop().map(|n| (n.bound, n.fixings)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_binary_knapsack() {
        // max 10a + 6b + 4c s.t. a + b + c ≤ 2, 5a + 4b + 3c ≤ 8 → a,c = 1: 14
        // (a,b would score 16 but weighs 9 > 8).
        let mut m = MilpProblem::new(3);
        for j in 0..3 {
            m.set_binary(j);
        }
        m.add_dense(&[1.0, 1.0, 1.0], Rel::Le, 2.0);
        m.add_dense(&[5.0, 4.0, 3.0], Rel::Le, 8.0);
        match m.maximize(&[10.0, 6.0, 4.0]) {
            MilpOutcome::Optimal { x, value } => {
                assert!((value - 14.0).abs() < 1e-6);
                assert_eq!(x.iter().map(|v| v.round() as i64).collect::<Vec<_>>(), vec![1, 0, 1]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fractional_lp_relaxation_forced_integral() {
        // max a + b s.t. a + b ≤ 1.5 with binaries: LP gives 1.5, MILP 1.
        let mut m = MilpProblem::new(2);
        m.set_binary(0);
        m.set_binary(1);
        m.add_dense(&[1.0, 1.0], Rel::Le, 1.5);
        match m.maximize(&[1.0, 1.0]) {
            MilpOutcome::Optimal { value, .. } => assert!((value - 1.0).abs() < 1e-6),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn infeasible_binary_system() {
        let mut m = MilpProblem::new(2);
        m.set_binary(0);
        m.set_binary(1);
        m.add_dense(&[1.0, 1.0], Rel::Ge, 3.0);
        assert_eq!(m.minimize(&[1.0, 1.0]), MilpOutcome::Infeasible);
    }

    #[test]
    fn mixed_continuous_binary() {
        // min y s.t. y ≥ 2 − 3b, y ≥ 1 + b, b binary, y free.
        // b=0: y ≥ 2; b=1: y ≥ 2 → but b=0 gives max(2,1)=2; b=1 gives max(-1,2)=2.
        // Change: y ≥ 2 − 3b, y ≥ 0.5 + b → b=1: y ≥ max(−1, 1.5) = 1.5.
        let mut m = MilpProblem::new(2);
        m.set_binary(0);
        m.add_constraint(vec![(1, 1.0), (0, 3.0)], Rel::Ge, 2.0);
        m.add_constraint(vec![(1, 1.0), (0, -1.0)], Rel::Ge, 0.5);
        match m.minimize(&[0.0, 1.0]) {
            MilpOutcome::Optimal { x, value } => {
                assert!((value - 1.5).abs() < 1e-6);
                assert!((x[0] - 1.0).abs() < 1e-6);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn indicator_big_m() {
        // v=1 forces x ≤ 1; objective pushes x up to 10 otherwise.
        let mut m = MilpProblem::new(2);
        m.set_binary(0);
        m.set_lower(1, 0.0);
        m.set_upper(1, 10.0);
        m.add_indicator_le(0, vec![(1, 1.0)], 1.0, 100.0);
        // Force the indicator on.
        m.add_dense(&[1.0, 0.0], Rel::Ge, 1.0);
        match m.maximize(&[0.0, 1.0]) {
            MilpOutcome::Optimal { x, value } => {
                assert!((value - 1.0).abs() < 1e-6, "x should be capped at 1, got {x:?}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unbounded_detected() {
        let mut m = MilpProblem::new(1);
        assert_eq!(m.maximize(&[1.0]), MilpOutcome::Unbounded);
        m.set_upper(0, 5.0);
        match m.maximize(&[1.0]) {
            MilpOutcome::Optimal { value, .. } => assert!((value - 5.0).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_reported() {
        let mut m = MilpProblem::new(6);
        for j in 0..6 {
            m.set_binary(j);
        }
        m.add_dense(&[1.0; 6], Rel::Le, 3.2);
        let out = m.solve(&[1.0; 6], Objective::Maximize, MilpConfig::with_max_nodes(1));
        assert!(matches!(out, MilpOutcome::BudgetExhausted { .. }));
    }

    #[test]
    fn best_bound_agrees_with_depth_first() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for round in 0..20 {
            let n = rng.gen_range(3..8usize);
            let mut m = MilpProblem::new(n);
            for j in 0..n {
                m.set_binary(j);
            }
            for _ in 0..rng.gen_range(1..4usize) {
                let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-3i64..4) as f64).collect();
                m.add_dense(&a, Rel::Le, rng.gen_range(0i64..6) as f64);
            }
            let c: Vec<f64> = (0..n).map(|_| rng.gen_range(-5i64..6) as f64).collect();
            let dfs = m.solve(&c, Objective::Maximize, MilpConfig::default());
            let bb = m.solve(
                &c,
                Objective::Maximize,
                MilpConfig { node_order: NodeOrder::BestBound, ..Default::default() },
            );
            match (dfs, bb) {
                (MilpOutcome::Optimal { value: a, .. }, MilpOutcome::Optimal { value: b, .. }) => {
                    assert!((a - b).abs() < 1e-6, "round {round}: dfs {a} vs best-bound {b}")
                }
                (MilpOutcome::Infeasible, MilpOutcome::Infeasible) => {}
                (a, b) => panic!("round {round}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn rounding_heuristic_preserves_optimality_and_reports_stats() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(78);
        for _ in 0..15 {
            let n = rng.gen_range(3..7usize);
            let mut m = MilpProblem::new(n + 1); // one continuous tail variable
            for j in 0..n {
                m.set_binary(j);
            }
            m.set_lower(n, 0.0);
            m.set_upper(n, 4.0);
            let a: Vec<f64> = (0..=n).map(|_| rng.gen_range(1i64..4) as f64).collect();
            m.add_dense(&a, Rel::Le, rng.gen_range(3i64..9) as f64);
            let mut c: Vec<f64> = (0..n).map(|_| rng.gen_range(-3i64..5) as f64).collect();
            c.push(1.0);
            let plain = m.solve(&c, Objective::Maximize, MilpConfig::default());
            let (heur, stats) = m.solve_stats(
                &c,
                Objective::Maximize,
                MilpConfig { rounding_heuristic: true, ..Default::default() },
            );
            assert!(stats.nodes >= 1);
            match (plain, heur) {
                (MilpOutcome::Optimal { value: a, .. }, MilpOutcome::Optimal { value: b, .. }) => {
                    assert!((a - b).abs() < 1e-6)
                }
                (a, b) => panic!("{a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn branch_priority_changes_exploration_not_answers() {
        let mut m = MilpProblem::new(4);
        for j in 0..4 {
            m.set_binary(j);
        }
        m.add_dense(&[2.0, 3.0, 4.0, 5.0], Rel::Le, 8.0);
        let c = [3.0, 4.0, 5.0, 6.0];
        let base = m.solve(&c, Objective::Maximize, MilpConfig::default());
        for prio in [vec![3.0, 2.0, 1.0, 0.0], vec![0.0, 0.0, 0.0, 9.0]] {
            let with = m.solve(
                &c,
                Objective::Maximize,
                MilpConfig { branch_priority: prio, ..Default::default() },
            );
            match (&base, &with) {
                (MilpOutcome::Optimal { value: a, .. }, MilpOutcome::Optimal { value: b, .. }) => {
                    assert!((a - b).abs() < 1e-6)
                }
                (a, b) => panic!("{a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn budget_exhausted_value_is_in_caller_sense() {
        // A maximize instance whose first incumbent arrives before the budget
        // runs out: the reported incumbent value must be in maximize sense.
        let mut m = MilpProblem::new(4);
        for j in 0..4 {
            m.set_binary(j);
        }
        m.add_dense(&[1.0; 4], Rel::Le, 3.5);
        let (out, _) = m.solve_stats(
            &[1.0; 4],
            Objective::Maximize,
            MilpConfig { max_nodes: 3, rounding_heuristic: true, ..Default::default() },
        );
        if let MilpOutcome::BudgetExhausted { best: Some((_, v)) } = out {
            assert!(v > 0.0, "maximize incumbent must be positive, got {v}");
        }
    }

    #[test]
    fn random_pure_binary_matches_brute_force() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        for round in 0..25 {
            let n = rng.gen_range(2..7usize);
            let mrows = rng.gen_range(1..4usize);
            let mut m = MilpProblem::new(n);
            for j in 0..n {
                m.set_binary(j);
            }
            let mut rows = Vec::new();
            for _ in 0..mrows {
                let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-3i64..4) as f64).collect();
                let b = rng.gen_range(0i64..6) as f64;
                m.add_dense(&a, Rel::Le, b);
                rows.push((a, b));
            }
            let c: Vec<f64> = (0..n).map(|_| rng.gen_range(-5i64..6) as f64).collect();
            // Brute force.
            let mut best: Option<f64> = None;
            for mask in 0u32..(1 << n) {
                let x: Vec<f64> = (0..n).map(|j| ((mask >> j) & 1) as f64).collect();
                if rows
                    .iter()
                    .all(|(a, b)| a.iter().zip(&x).map(|(ai, xi)| ai * xi).sum::<f64>() <= b + 1e-9)
                {
                    let v = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum::<f64>();
                    best = Some(best.map_or(v, |bv: f64| bv.max(v)));
                }
            }
            match (m.maximize(&c), best) {
                (MilpOutcome::Optimal { value, .. }, Some(bv)) => {
                    assert!((value - bv).abs() < 1e-6, "round {round}: {value} vs {bv}");
                }
                (MilpOutcome::Infeasible, None) => {}
                (got, want) => panic!("round {round}: {got:?} vs brute {want:?}"),
            }
        }
    }
}
