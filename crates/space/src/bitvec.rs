//! Bit-packed boolean vectors for the discrete setting `({0,1}ⁿ, D_H)`.
//!
//! Hamming distances are computed with XOR + popcount over `u64` blocks, which
//! is the workhorse of the discrete benchmarks (Figure 5) and of the
//! brute-force oracles.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A fixed-length vector over `{0,1}`, packed 64 components per word.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// The all-zeros vector of dimension `len`.
    pub fn zeros(len: usize) -> Self {
        BitVec { len, words: vec![0; len.div_ceil(64)] }
    }

    /// The all-ones vector of dimension `len`.
    pub fn ones(len: usize) -> Self {
        let mut v = Self::zeros(len);
        for i in 0..len {
            v.set(i, true);
        }
        v
    }

    /// Builds a vector from booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }

    /// Builds a vector from a `{0,1}` byte slice (any nonzero byte is 1).
    pub fn from_bits(bits: &[u8]) -> Self {
        let mut v = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b != 0);
        }
        v
    }

    /// Dimension of the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Approximate heap footprint in bytes (packed words plus the vector
    /// header), used by the resource-accounting gauges.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.words.len() * std::mem::size_of::<u64>()
    }

    /// True iff the dimension is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Component `i` (panics if out of range).
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range for dimension {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets component `i`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range for dimension {}", self.len);
        if value {
            self.words[i / 64] |= 1u64 << (i % 64);
        } else {
            self.words[i / 64] &= !(1u64 << (i % 64));
        }
    }

    /// Flips component `i`.
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range for dimension {}", self.len);
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// Returns a copy with component `i` flipped.
    pub fn with_flipped(&self, i: usize) -> BitVec {
        let mut v = self.clone();
        v.flip(i);
        v
    }

    /// Number of ones (the paper's "weight" of a row).
    pub fn weight(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hamming distance `d_H(self, other)`; panics on dimension mismatch.
    pub fn hamming(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "hamming distance of mismatched dimensions");
        self.words.iter().zip(&other.words).map(|(a, b)| (a ^ b).count_ones() as usize).sum()
    }

    /// Iterator over components as booleans.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Indices where `self` and `other` differ (the "diff map" of Figure 1).
    pub fn diff_indices(&self, other: &BitVec) -> Vec<usize> {
        assert_eq!(self.len, other.len);
        (0..self.len).filter(|&i| self.get(i) != other.get(i)).collect()
    }

    /// Concatenation of two vectors (used by the hardness constructions,
    /// which build points in blocks).
    pub fn concat(&self, other: &BitVec) -> BitVec {
        let mut out = BitVec::zeros(self.len + other.len);
        for i in 0..self.len {
            out.set(i, self.get(i));
        }
        for i in 0..other.len {
            out.set(self.len + i, other.get(i));
        }
        out
    }

    /// Conversion to a `Vec<bool>`.
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// The `i`-th canonical basis vector `ᾱ_i` of dimension `len`.
    pub fn canonical(len: usize, i: usize) -> BitVec {
        let mut v = BitVec::zeros(len);
        v.set(i, true);
        v
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.iter() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let bools: Vec<bool> = iter.into_iter().collect();
        BitVec::from_bools(&bools)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_get_flip() {
        let mut v = BitVec::zeros(130);
        assert_eq!(v.weight(), 0);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1));
        assert_eq!(v.weight(), 3);
        v.flip(64);
        assert!(!v.get(64));
        assert_eq!(v.weight(), 2);
    }

    #[test]
    fn hamming_examples() {
        let a = BitVec::from_bits(&[1, 0, 1, 1, 0]);
        let b = BitVec::from_bits(&[0, 0, 1, 0, 1]);
        assert_eq!(a.hamming(&b), 3);
        assert_eq!(a.hamming(&a), 0);
        assert_eq!(a.diff_indices(&b), vec![0, 3, 4]);
    }

    #[test]
    fn ones_weight() {
        assert_eq!(BitVec::ones(200).weight(), 200);
        assert_eq!(BitVec::ones(0).weight(), 0);
    }

    #[test]
    fn concat() {
        let a = BitVec::from_bits(&[1, 0]);
        let b = BitVec::from_bits(&[1, 1, 0]);
        let c = a.concat(&b);
        assert_eq!(c.to_bools(), vec![true, false, true, true, false]);
    }

    #[test]
    fn canonical_vectors() {
        let e2 = BitVec::canonical(4, 2);
        assert_eq!(e2.to_bools(), vec![false, false, true, false]);
        assert_eq!(e2.weight(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        BitVec::zeros(4).get(4);
    }

    proptest! {
        #[test]
        fn prop_hamming_is_metric(a in prop::collection::vec(any::<bool>(), 1..200),
                                  b in prop::collection::vec(any::<bool>(), 1..200),
                                  c in prop::collection::vec(any::<bool>(), 1..200)) {
            let n = a.len().min(b.len()).min(c.len());
            let (x, y, z) = (
                BitVec::from_bools(&a[..n]),
                BitVec::from_bools(&b[..n]),
                BitVec::from_bools(&c[..n]),
            );
            prop_assert_eq!(x.hamming(&y), y.hamming(&x));
            prop_assert_eq!(x.hamming(&x), 0);
            prop_assert!(x.hamming(&z) <= x.hamming(&y) + y.hamming(&z));
        }

        #[test]
        fn prop_hamming_matches_naive(a in prop::collection::vec(any::<bool>(), 1..300),
                                      b in prop::collection::vec(any::<bool>(), 1..300)) {
            let n = a.len().min(b.len());
            let x = BitVec::from_bools(&a[..n]);
            let y = BitVec::from_bools(&b[..n]);
            let naive = a[..n].iter().zip(&b[..n]).filter(|(p, q)| p != q).count();
            prop_assert_eq!(x.hamming(&y), naive);
        }

        #[test]
        fn prop_roundtrip(bools in prop::collection::vec(any::<bool>(), 0..300)) {
            prop_assert_eq!(BitVec::from_bools(&bools).to_bools(), bools);
        }

        #[test]
        fn prop_flip_changes_distance_by_one(bools in prop::collection::vec(any::<bool>(), 1..200),
                                             idx in any::<prop::sample::Index>()) {
            let v = BitVec::from_bools(&bools);
            let i = idx.index(bools.len());
            let w = v.with_flipped(i);
            prop_assert_eq!(v.hamming(&w), 1);
        }
    }
}
