//! Metric-space vocabulary for the `explainable-knn` workspace.
//!
//! The paper (§2) fixes two *metric space families*:
//!
//! * the **continuous** case `(ℝ, D_p)` — real vectors compared with the
//!   ℓp norm for an integer `p > 0` ([`LpMetric`]); and
//! * the **discrete** case `({0,1}, D_H)` — boolean vectors compared with the
//!   Hamming distance ([`BitVec::hamming`]).
//!
//! This crate defines the points, labels, datasets (`S⁺`, `S⁻`) and the odd-`k`
//! parameter shared by the classifier, the explanation algorithms, the search
//! indexes and the benchmark workloads. It deliberately contains no algorithms.

#![warn(missing_docs)]

pub mod bitvec;
pub mod dataset;
pub mod label;
pub mod metric;
pub mod oddk;

pub use bitvec::BitVec;
pub use dataset::{BooleanDataset, ContinuousDataset};
pub use label::Label;
pub use metric::LpMetric;
pub use oddk::OddK;
