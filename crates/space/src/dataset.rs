//! Labeled datasets `(S⁺, S⁻)` in the continuous and discrete settings.

use crate::bitvec::BitVec;
use crate::label::Label;
use knn_num::Field;
use serde::{Deserialize, Serialize};

/// A labeled dataset of real vectors (the continuous setting).
///
/// Points are stored densely; `S⁺`/`S⁻` are recovered through the labels. The
/// paper allows `S⁺ ∩ S⁻ ≠ ∅` only implicitly (distinct points); duplicated
/// points are permitted here and behave like multiplicities.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ContinuousDataset<F> {
    dim: usize,
    points: Vec<Vec<F>>,
    labels: Vec<Label>,
}

impl<F: Field> ContinuousDataset<F> {
    /// An empty dataset of the given dimension.
    pub fn new(dim: usize) -> Self {
        ContinuousDataset { dim, points: Vec::new(), labels: Vec::new() }
    }

    /// Builds a dataset from explicit positive and negative example sets.
    pub fn from_sets(positives: Vec<Vec<F>>, negatives: Vec<Vec<F>>) -> Self {
        let dim = positives
            .first()
            .or(negatives.first())
            .map(|p| p.len())
            .expect("dataset needs at least one point");
        let mut ds = ContinuousDataset::new(dim);
        for p in positives {
            ds.push(p, Label::Positive);
        }
        for n in negatives {
            ds.push(n, Label::Negative);
        }
        ds
    }

    /// Appends a labeled point; panics on dimension mismatch.
    pub fn push(&mut self, point: Vec<F>, label: Label) {
        assert_eq!(point.len(), self.dim, "point dimension mismatch");
        self.points.push(point);
        self.labels.push(label);
    }

    /// Removes and returns the `i`-th labeled point; later points shift
    /// down, so the relative order of the survivors is preserved (the live
    /// dataset stays identical to a fresh parse of its serialized text —
    /// the mutation layers' oracle invariant). Panics when out of range.
    pub fn remove(&mut self, i: usize) -> (Vec<F>, Label) {
        (self.points.remove(i), self.labels.remove(i))
    }

    /// The feature dimension `n`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total number of points `|S⁺ ∪ S⁻|` (with multiplicity).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff the dataset has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `i`-th point.
    pub fn point(&self, i: usize) -> &[F] {
        &self.points[i]
    }

    /// The `i`-th label.
    pub fn label(&self, i: usize) -> Label {
        self.labels[i]
    }

    /// Iterator over `(point, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[F], Label)> + '_ {
        self.points.iter().map(|p| p.as_slice()).zip(self.labels.iter().copied())
    }

    /// Indices of points with the given label.
    pub fn indices_of(&self, label: Label) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.labels[i] == label).collect()
    }

    /// Points with the given label, cloned into a vector.
    pub fn points_of(&self, label: Label) -> Vec<Vec<F>> {
        self.iter().filter(|&(_, l)| l == label).map(|(p, _)| p.to_vec()).collect()
    }

    /// Number of points with the given label.
    pub fn count_of(&self, label: Label) -> usize {
        self.labels.iter().filter(|&&l| l == label).count()
    }

    /// Approximate heap footprint in bytes: dense coordinate storage plus
    /// per-point vector headers and the label array. Feeds the
    /// `knn_engine_bytes{component="dataset"}` gauge; an estimate, not an
    /// allocator-exact measurement.
    pub fn approx_bytes(&self) -> usize {
        let coords = self.points.len() * (self.dim * std::mem::size_of::<F>() + 24);
        coords + self.labels.len() * std::mem::size_of::<Label>()
    }

    /// Converts all coordinates to another field (e.g. `Rat → f64`).
    pub fn map_field<G: Field>(&self, f: impl Fn(&F) -> G) -> ContinuousDataset<G> {
        ContinuousDataset {
            dim: self.dim,
            points: self.points.iter().map(|p| p.iter().map(&f).collect()).collect(),
            labels: self.labels.clone(),
        }
    }
}

/// A labeled dataset of boolean vectors (the discrete setting).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BooleanDataset {
    dim: usize,
    points: Vec<BitVec>,
    labels: Vec<Label>,
}

impl BooleanDataset {
    /// An empty dataset of the given dimension.
    pub fn new(dim: usize) -> Self {
        BooleanDataset { dim, points: Vec::new(), labels: Vec::new() }
    }

    /// Builds a dataset from explicit positive and negative example sets.
    pub fn from_sets(positives: Vec<BitVec>, negatives: Vec<BitVec>) -> Self {
        let dim = positives
            .first()
            .or(negatives.first())
            .map(|p| p.len())
            .expect("dataset needs at least one point");
        let mut ds = BooleanDataset::new(dim);
        for p in positives {
            ds.push(p, Label::Positive);
        }
        for n in negatives {
            ds.push(n, Label::Negative);
        }
        ds
    }

    /// Appends a labeled point; panics on dimension mismatch.
    pub fn push(&mut self, point: BitVec, label: Label) {
        assert_eq!(point.len(), self.dim, "point dimension mismatch");
        self.points.push(point);
        self.labels.push(label);
    }

    /// Removes and returns the `i`-th labeled point; later points shift
    /// down (order of survivors preserved, mirroring
    /// [`ContinuousDataset::remove`]). Panics when out of range.
    pub fn remove(&mut self, i: usize) -> (BitVec, Label) {
        (self.points.remove(i), self.labels.remove(i))
    }

    /// The feature dimension `n`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff the dataset has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The `i`-th point.
    pub fn point(&self, i: usize) -> &BitVec {
        &self.points[i]
    }

    /// The `i`-th label.
    pub fn label(&self, i: usize) -> Label {
        self.labels[i]
    }

    /// Iterator over `(point, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&BitVec, Label)> + '_ {
        self.points.iter().zip(self.labels.iter().copied())
    }

    /// Indices of points with the given label.
    pub fn indices_of(&self, label: Label) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.labels[i] == label).collect()
    }

    /// Points with the given label, cloned.
    pub fn points_of(&self, label: Label) -> Vec<BitVec> {
        self.iter().filter(|&(_, l)| l == label).map(|(p, _)| p.clone()).collect()
    }

    /// Number of points with the given label.
    pub fn count_of(&self, label: Label) -> usize {
        self.labels.iter().filter(|&&l| l == label).count()
    }

    /// Approximate heap footprint in bytes (packed bit words plus labels);
    /// mirrors [`ContinuousDataset::approx_bytes`].
    pub fn approx_bytes(&self) -> usize {
        self.points.iter().map(|p| p.approx_bytes()).sum::<usize>()
            + self.labels.len() * std::mem::size_of::<Label>()
    }

    /// Views the dataset as a continuous one over a field (bits become 0/1),
    /// so the continuous algorithms can run on discrete data.
    pub fn to_continuous<F: Field>(&self) -> ContinuousDataset<F> {
        let mut ds = ContinuousDataset::new(self.dim);
        for (p, l) in self.iter() {
            ds.push(p.iter().map(|b| if b { F::one() } else { F::zero() }).collect(), l);
        }
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn continuous_accessors() {
        let ds = ContinuousDataset::from_sets(
            vec![vec![0.0, 1.0], vec![1.0, 1.0]],
            vec![vec![0.0, 0.0]],
        );
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.count_of(Label::Positive), 2);
        assert_eq!(ds.count_of(Label::Negative), 1);
        assert_eq!(ds.indices_of(Label::Negative), vec![2]);
        assert_eq!(ds.point(0), &[0.0, 1.0]);
        assert_eq!(ds.label(2), Label::Negative);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn continuous_dimension_checked() {
        let mut ds = ContinuousDataset::<f64>::new(2);
        ds.push(vec![1.0], Label::Positive);
    }

    #[test]
    fn boolean_accessors() {
        let ds = BooleanDataset::from_sets(
            vec![BitVec::from_bits(&[0, 1, 1])],
            vec![BitVec::from_bits(&[0, 0, 0]), BitVec::from_bits(&[1, 1, 1])],
        );
        assert_eq!(ds.dim(), 3);
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.points_of(Label::Negative).len(), 2);
    }

    #[test]
    fn boolean_to_continuous() {
        let ds = BooleanDataset::from_sets(
            vec![BitVec::from_bits(&[1, 0])],
            vec![BitVec::from_bits(&[0, 1])],
        );
        let c = ds.to_continuous::<f64>();
        assert_eq!(c.point(0), &[1.0, 0.0]);
        assert_eq!(c.point(1), &[0.0, 1.0]);
        assert_eq!(c.label(0), Label::Positive);
    }

    #[test]
    fn map_field_roundtrip() {
        use knn_num::Rat;
        let ds = ContinuousDataset::from_sets(vec![vec![0.5, -1.5]], vec![vec![2.0, 0.0]]);
        let exact = ds.map_field(|&v| Rat::from_f64(v));
        assert_eq!(exact.point(0)[0], Rat::frac(1, 2));
        assert_eq!(exact.point(1)[0], Rat::from_int(2i64));
    }
}
