//! Binary classification labels.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The two classes of the paper's binary setting: points of `S⁺` are
/// [`Label::Positive`], points of `S⁻` are [`Label::Negative`].
///
/// The classifier output `f(x̄) ∈ {0,1}` maps `1 ↦ Positive`, `0 ↦ Negative`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Label {
    /// Class 1.
    Positive,
    /// Class 0.
    Negative,
}

impl Label {
    /// The other class.
    pub fn flip(self) -> Label {
        match self {
            Label::Positive => Label::Negative,
            Label::Negative => Label::Positive,
        }
    }

    /// The paper's `{0,1}` encoding of the classifier output.
    pub fn as_bit(self) -> u8 {
        match self {
            Label::Positive => 1,
            Label::Negative => 0,
        }
    }

    /// Inverse of [`Label::as_bit`] (any nonzero value is positive).
    pub fn from_bit(bit: u8) -> Label {
        if bit != 0 {
            Label::Positive
        } else {
            Label::Negative
        }
    }

    /// True iff `self == Positive`.
    pub fn is_positive(self) -> bool {
        matches!(self, Label::Positive)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Positive => write!(f, "+"),
            Label::Negative => write!(f, "-"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_is_involution() {
        assert_eq!(Label::Positive.flip().flip(), Label::Positive);
        assert_eq!(Label::Negative.flip(), Label::Positive);
    }

    #[test]
    fn bit_roundtrip() {
        assert_eq!(Label::from_bit(Label::Positive.as_bit()), Label::Positive);
        assert_eq!(Label::from_bit(Label::Negative.as_bit()), Label::Negative);
        assert_eq!(Label::from_bit(7), Label::Positive);
    }

    #[test]
    fn display() {
        assert_eq!(Label::Positive.to_string(), "+");
        assert_eq!(Label::Negative.to_string(), "-");
    }
}
