//! The ℓp metrics of the continuous setting.
//!
//! All comparisons in the workspace are made on **p-th powers of distances**:
//! `‖x−y‖_p ≤ ‖x−z‖_p ⟺ Σ|xᵢ−yᵢ|^p ≤ Σ|xᵢ−zᵢ|^p`, which is rational-exact
//! whenever the coordinates are. No roots are ever taken on the exact path.

use knn_num::Field;
use serde::{Deserialize, Serialize};

/// The ℓp metric for a fixed integer `p ≥ 1` (the paper's `D_p`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LpMetric {
    p: u32,
}

impl LpMetric {
    /// ℓ1 (Manhattan) metric.
    pub const L1: LpMetric = LpMetric { p: 1 };
    /// ℓ2 (Euclidean) metric.
    pub const L2: LpMetric = LpMetric { p: 2 };

    /// Builds `ℓp`. Panics if `p == 0` (the paper requires integer `p > 0`).
    pub fn new(p: u32) -> Self {
        assert!(p >= 1, "ℓp metrics require p ≥ 1");
        LpMetric { p }
    }

    /// The exponent `p`.
    pub fn p(&self) -> u32 {
        self.p
    }

    /// `Σᵢ |aᵢ − bᵢ|^p` — the p-th power of the distance, exact over any field.
    pub fn dist_pow<F: Field>(&self, a: &[F], b: &[F]) -> F {
        assert_eq!(a.len(), b.len(), "ℓp distance of mismatched dimensions");
        let mut acc = F::zero();
        for (x, y) in a.iter().zip(b) {
            let d = (x.clone() - y.clone()).abs();
            acc = acc + pow_u32(d, self.p);
        }
        acc
    }

    /// The real distance as `f64` (for reporting / plotting only).
    pub fn dist_f64<F: Field>(&self, a: &[F], b: &[F]) -> f64 {
        self.dist_pow(a, b).to_f64().powf(1.0 / self.p as f64)
    }
}

fn pow_u32<F: Field>(base: F, mut e: u32) -> F {
    let mut acc = F::one();
    let mut b = base;
    while e > 0 {
        if e & 1 == 1 {
            acc = acc * b.clone();
        }
        b = b.clone() * b;
        e >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_num::Rat;
    use proptest::prelude::*;

    #[test]
    fn l1_and_l2_known_values() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(LpMetric::L1.dist_pow(&a, &b), 7.0);
        assert_eq!(LpMetric::L2.dist_pow(&a, &b), 25.0);
        assert!((LpMetric::L2.dist_f64(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn exact_rational_distances() {
        let a = [Rat::frac(1, 2), Rat::frac(1, 3)];
        let b = [Rat::frac(0, 1), Rat::frac(1, 1)];
        assert_eq!(LpMetric::L1.dist_pow(&a, &b), Rat::frac(7, 6));
        assert_eq!(LpMetric::L2.dist_pow(&a, &b), Rat::frac(25, 36));
    }

    #[test]
    fn higher_p() {
        let m = LpMetric::new(3);
        assert_eq!(m.p(), 3);
        let a = [Rat::from_int(0i64)];
        let b = [Rat::from_int(-2i64)];
        assert_eq!(m.dist_pow(&a, &b), Rat::from_int(8i64));
    }

    #[test]
    #[should_panic(expected = "p ≥ 1")]
    fn p_zero_rejected() {
        LpMetric::new(0);
    }

    proptest! {
        #[test]
        fn prop_dist_pow_symmetric(a in prop::collection::vec(-100i64..100, 1..8),
                                   b in prop::collection::vec(-100i64..100, 1..8),
                                   p in 1u32..4) {
            let n = a.len().min(b.len());
            let av: Vec<Rat> = a[..n].iter().map(|&v| Rat::from_int(v)).collect();
            let bv: Vec<Rat> = b[..n].iter().map(|&v| Rat::from_int(v)).collect();
            let m = LpMetric::new(p);
            prop_assert_eq!(m.dist_pow(&av, &bv), m.dist_pow(&bv, &av));
        }

        #[test]
        fn prop_identity_of_indiscernibles(a in prop::collection::vec(-100i64..100, 1..8),
                                           p in 1u32..4) {
            let av: Vec<Rat> = a.iter().map(|&v| Rat::from_int(v)).collect();
            prop_assert!(LpMetric::new(p).dist_pow(&av, &av).is_zero());
        }

        #[test]
        fn prop_l1_triangle_inequality(a in prop::collection::vec(-50i64..50, 3),
                                       b in prop::collection::vec(-50i64..50, 3),
                                       c in prop::collection::vec(-50i64..50, 3)) {
            let f = |v: &[i64]| -> Vec<Rat> { v.iter().map(|&x| Rat::from_int(x)).collect() };
            let (x, y, z) = (f(&a), f(&b), f(&c));
            let m = LpMetric::L1;
            // For p = 1 the p-th power *is* the distance, so the triangle
            // inequality holds on dist_pow directly.
            prop_assert!(m.dist_pow(&x, &z) <= m.dist_pow(&x, &y) + m.dist_pow(&y, &z));
        }
    }
}
