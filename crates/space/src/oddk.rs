//! The odd neighborhood-size parameter `k`.
//!
//! The paper restricts to odd `k` (footnote 1: even `k` makes the optimistic
//! tie-breaking degenerate). [`OddK`] enforces this at construction time and
//! exposes the majority/minority sizes `(k+1)/2` and `(k−1)/2` that appear
//! throughout Proposition 1 and the hardness constructions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An odd integer `k ≥ 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct OddK(u32);

impl OddK {
    /// `k = 1` (the most common case in practice; §9 experiments use it).
    pub const ONE: OddK = OddK(1);
    /// `k = 3`.
    pub const THREE: OddK = OddK(3);

    /// Builds an odd `k`. Returns `None` for even or zero values.
    pub fn new(k: u32) -> Option<OddK> {
        (k % 2 == 1).then_some(OddK(k))
    }

    /// Builds an odd `k`, panicking on invalid input.
    pub fn of(k: u32) -> OddK {
        OddK::new(k).unwrap_or_else(|| panic!("k must be odd and positive, got {k}"))
    }

    /// The value of `k`.
    pub fn get(self) -> u32 {
        self.0
    }

    /// `(k+1)/2`, the majority size in Proposition 1.
    pub fn majority(self) -> usize {
        self.0.div_ceil(2) as usize
    }

    /// `(k−1)/2`, the excluded-minority size in Proposition 1.
    pub fn minority(self) -> usize {
        ((self.0 - 1) / 2) as usize
    }
}

impl fmt::Display for OddK {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        assert_eq!(OddK::new(1), Some(OddK::ONE));
        assert_eq!(OddK::new(2), None);
        assert_eq!(OddK::new(0), None);
        assert_eq!(OddK::of(5).get(), 5);
    }

    #[test]
    fn majority_minority() {
        assert_eq!(OddK::ONE.majority(), 1);
        assert_eq!(OddK::ONE.minority(), 0);
        assert_eq!(OddK::THREE.majority(), 2);
        assert_eq!(OddK::THREE.minority(), 1);
        assert_eq!(OddK::of(7).majority(), 4);
        assert_eq!(OddK::of(7).minority(), 3);
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn of_rejects_even() {
        OddK::of(4);
    }
}
