//! Prometheus text exposition: rendering, a total parser, and the
//! bucket-wise merge the router uses.
//!
//! The format subset used here is one line per sample —
//! `name{label="value",...} number` (labels optional) — plus `# `-prefixed
//! comments. Because every histogram in the stack has the same 32 log2
//! buckets and always renders **all** of them (cumulative, with identical
//! `le` edges), merging expositions from several processes reduces to a
//! key-wise fold over series lines: sum everything, except series whose
//! metric name ends in `_max`, which take the max. That fold is exact —
//! the merged text equals what one process observing all the traffic
//! would have rendered.

use crate::{bucket_upper, HistogramSnapshot, BUCKETS};
use std::collections::BTreeMap;

/// Escapes a label value per the exposition format (`\` → `\\`, `"` →
/// `\"`, newline → `\n`).
pub fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders one series key: `name{a="x",b="y"}`, or bare `name` with no
/// labels.
pub fn series_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let inner = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect::<Vec<_>>()
        .join(",");
    format!("{name}{{{inner}}}")
}

/// Appends one sample line `key value` to `out`.
pub fn push_sample(out: &mut String, key: &str, value: u64) {
    out.push_str(key);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Renders a histogram snapshot as cumulative `_bucket` lines (always all
/// [`BUCKETS`] of them, so cross-process merges stay exact), plus `_sum`,
/// `_count`, and an exact `_max` gauge.
pub fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    snap: &HistogramSnapshot,
) {
    let mut cum = 0u64;
    for i in 0..BUCKETS {
        cum += snap.buckets[i];
        let le = if i == BUCKETS - 1 { "+Inf".to_string() } else { bucket_upper(i).to_string() };
        let mut with_le: Vec<(&str, &str)> = labels.to_vec();
        with_le.push(("le", &le));
        push_sample(out, &series_key(&format!("{name}_bucket"), &with_le), cum);
    }
    push_sample(out, &series_key(&format!("{name}_sum"), labels), snap.sum_us);
    push_sample(out, &series_key(&format!("{name}_count"), labels), snap.count);
    push_sample(out, &series_key(&format!("{name}_max"), labels), snap.max_us);
}

/// Checks that every non-blank line is a `# ` comment or a
/// `key value` sample with a finite numeric value and a plausible metric
/// name, **and** that every sample's family declared both a `# HELP` and a
/// `# TYPE` header before its first sample. The header rule is
/// declared-before, not contiguity: a family's samples may interleave with
/// another family's (the sorted merge output puts `f_max` between
/// `f_count` and `f_sum`), as long as each family's headers came first.
/// Returns the first offending line.
pub fn validate(text: &str) -> Result<(), String> {
    let mut helped: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    let mut typed: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("");
            if name.is_empty() {
                return Err(format!("HELP without a metric name: `{line}`"));
            }
            helped.insert(name);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut toks = rest.split(' ');
            let name = toks.next().unwrap_or("");
            let kind = toks.next().unwrap_or("");
            if name.is_empty()
                || !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped")
            {
                return Err(format!("bad TYPE header: `{line}`"));
            }
            typed.insert(name);
            continue;
        }
        if line.starts_with("# ") {
            continue;
        }
        let Some((key, value)) = line.rsplit_once(' ') else {
            return Err(format!("not `key value`: `{line}`"));
        };
        if value.parse::<f64>().map(|v| !v.is_finite()).unwrap_or(true) {
            return Err(format!("bad sample value: `{line}`"));
        }
        let name = key.split('{').next().unwrap_or("");
        if name.is_empty()
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.starts_with(|c: char| c.is_ascii_digit())
        {
            return Err(format!("bad metric name: `{line}`"));
        }
        if key.contains('{') && !key.ends_with('}') {
            return Err(format!("unterminated labels: `{line}`"));
        }
        let family = family_of(key);
        if !typed.contains(family) {
            return Err(format!("series without a preceding `# TYPE {family}`: `{line}`"));
        }
        if !helped.contains(family) {
            return Err(format!("series without a preceding `# HELP {family}`: `{line}`"));
        }
    }
    Ok(())
}

/// Parses an exposition into `series key → value`. Total: comments, blank
/// lines, and anything that fails to parse contribute nothing.
pub fn parse(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.rsplit_once(' ') else { continue };
        let Ok(v) = value.parse::<f64>() else { continue };
        if key.is_empty() || !v.is_finite() {
            continue;
        }
        out.insert(key.to_string(), v);
    }
    out
}

/// The metric name of a series key (the part before `{`, if any).
pub fn metric_name(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

/// The metric **family** a series key belongs to: the metric name with any
/// histogram sample suffix (`_bucket`, `_sum`, `_count`) stripped. The
/// exact-max companion series (`_max`) is deliberately *not* stripped — it
/// is exposed as its own gauge family, since Prometheus histograms have no
/// max sample and the merge rule differs (max, not sum).
pub fn family_of(key: &str) -> &str {
    let name = metric_name(key);
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stripped) = name.strip_suffix(suffix) {
            if !stripped.is_empty() {
                return stripped;
            }
        }
    }
    name
}

/// Appends the `# HELP` / `# TYPE` header pair for one metric family.
pub fn push_header(out: &mut String, family: &str, kind: &str, help: &str) {
    out.push_str("# HELP ");
    out.push_str(family);
    out.push(' ');
    out.push_str(help);
    out.push('\n');
    out.push_str("# TYPE ");
    out.push_str(family);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

/// Merges several expositions key-wise: series whose metric name ends in
/// `_max` take the max, everything else sums. Output is one sorted sample
/// line per key (whole numbers render without a decimal point), with each
/// family's `# HELP` / `# TYPE` headers — first-seen across the inputs —
/// emitted exactly once, immediately before the family's first sample.
/// Families whose inputs carried no headers stay headerless (the merge
/// never invents metadata).
pub fn merge(texts: &[String]) -> String {
    let mut acc: BTreeMap<String, f64> = BTreeMap::new();
    let mut help: BTreeMap<String, String> = BTreeMap::new();
    let mut kind: BTreeMap<String, String> = BTreeMap::new();
    for text in texts {
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                if let Some((name, h)) = rest.split_once(' ') {
                    help.entry(name.to_string()).or_insert_with(|| h.to_string());
                }
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                if let Some((name, k)) = rest.split_once(' ') {
                    kind.entry(name.to_string()).or_insert_with(|| k.to_string());
                }
            }
        }
        for (key, v) in parse(text) {
            acc.entry(key.clone())
                .and_modify(|cur| {
                    if metric_name(&key).ends_with("_max") {
                        *cur = cur.max(v);
                    } else {
                        *cur += v;
                    }
                })
                .or_insert(v);
        }
    }
    let mut out = String::new();
    let mut emitted: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for (key, v) in acc {
        let family = family_of(&key);
        if emitted.insert(family.to_string()) {
            if let (Some(h), Some(k)) = (help.get(family), kind.get(family)) {
                push_header(&mut out, family, k, h);
            }
        }
        out.push_str(&key);
        out.push(' ');
        if v.fract() == 0.0 && v.abs() < 9e15 {
            out.push_str(&format!("{}", v as i64));
        } else {
            out.push_str(&format!("{v}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn series_keys_escape_labels() {
        assert_eq!(series_key("m", &[]), "m");
        assert_eq!(series_key("m", &[("a", "x\"y\\z")]), "m{a=\"x\\\"y\\\\z\"}");
    }

    #[test]
    fn validate_accepts_rendered_and_rejects_garbage() {
        let h = Histogram::new();
        h.record(100);
        let mut out = String::new();
        push_header(&mut out, "m", "histogram", "A test histogram.");
        push_header(&mut out, "m_max", "gauge", "Its exact max.");
        render_histogram(&mut out, "m", &[("t", "x")], &h.snapshot());
        validate(&out).unwrap();
        assert!(validate("not an exposition line").is_err());
        assert!(validate("name notanumber").is_err());
        assert!(validate("1name 3").is_err());
        assert!(validate("m{a=\"b\" 3").is_err());
        assert!(validate("# TYPE m sideways\nm 3\n").is_err(), "unknown TYPE kind");
    }

    #[test]
    fn validate_requires_declared_before_headers() {
        // A bare sample with no headers is rejected...
        assert!(validate("m_total 3\n").is_err());
        // ...as is TYPE-only or HELP-only...
        assert!(validate("# TYPE m_total counter\nm_total 3\n").is_err());
        assert!(validate("# HELP m_total a counter\nm_total 3\n").is_err());
        // ...and headers after the sample are too late.
        assert!(
            validate("m_total 3\n# HELP m_total a\n# TYPE m_total counter\n").is_err(),
            "declared-before means before"
        );
        let ok = "# HELP m_total a counter\n# TYPE m_total counter\nm_total 3\n";
        validate(ok).unwrap();
        // Histogram sample suffixes resolve to the family's headers; the
        // `_max` companion needs its own gauge headers.
        let mut hist = String::new();
        push_header(&mut hist, "h", "histogram", "hist");
        hist.push_str("h_bucket{le=\"+Inf\"} 1\nh_sum 2\nh_count 1\nh_max 2\n");
        let err = validate(&hist).unwrap_err();
        assert!(err.contains("h_max"), "{err}");
        push_header(&mut hist, "h_max", "gauge", "max");
        // Headers appended after the samples do not rescue them.
        assert!(validate(&hist).is_err());
        let mut good = String::new();
        push_header(&mut good, "h", "histogram", "hist");
        push_header(&mut good, "h_max", "gauge", "max");
        good.push_str("h_bucket{le=\"+Inf\"} 1\nh_sum 2\nh_count 1\nh_max 2\n");
        validate(&good).unwrap();
    }

    #[test]
    fn merged_exposition_equals_bucketwise_sum_of_backends() {
        // Two "backends" record disjoint traffic; merging their rendered
        // expositions must equal the rendering of one histogram that saw
        // all of it — the router's aggregation invariant.
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for us in [3u64, 90, 1500] {
            a.record(us);
            all.record(us);
        }
        for us in [7u64, 7, 40_000] {
            b.record(us);
            all.record(us);
        }
        let render = |h: &Histogram| {
            let mut s = String::new();
            push_header(&mut s, "knn_request_duration_us", "histogram", "Request latency.");
            push_header(&mut s, "knn_request_duration_us_max", "gauge", "Max latency.");
            render_histogram(&mut s, "knn_request_duration_us", &[("tenant", "d")], &h.snapshot());
            s
        };
        let merged = merge(&[render(&a), render(&b)]);
        // `merge` normalizes to sorted order, so compare through `parse`.
        assert_eq!(parse(&merged), parse(&render(&all)));
        validate(&merged).unwrap();
        // Headers survive the merge exactly once, before the first sample.
        assert_eq!(merged.matches("# TYPE knn_request_duration_us histogram").count(), 1);
        assert_eq!(merged.matches("# HELP knn_request_duration_us ").count(), 1);
        assert_eq!(merged.matches("# TYPE knn_request_duration_us_max gauge").count(), 1);
        // And counters sum while _max takes the max; headerless inputs
        // merge to headerless output (the merge invents no metadata).
        let m = merge(&["c_total 2\nm_max 9\n".into(), "c_total 3\nm_max 4\n".into()]);
        assert_eq!(m, "c_total 5\nm_max 9\n");
    }

    #[test]
    fn merge_is_associative_and_commutative_over_inputs() {
        let mk = |vals: &[u64], extra: &str| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            let mut s = String::new();
            push_header(&mut s, "m", "histogram", "hist");
            push_header(&mut s, "m_max", "gauge", "max");
            render_histogram(&mut s, "m", &[("tenant", "d")], &h.snapshot());
            s.push_str(extra);
            s
        };
        let x = mk(&[5, 90], "# HELP c_total c\n# TYPE c_total counter\nc_total 2\n");
        let y =
            mk(&[7, 7, 40_000], "# HELP c_total other help\n# TYPE c_total counter\nc_total 5\n");
        let z = mk(&[1_000_000], "");
        // Commutative: any permutation parses identically.
        let base = parse(&merge(&[x.clone(), y.clone(), z.clone()]));
        for perm in [[&y, &x, &z], [&z, &y, &x], [&x, &z, &y]] {
            let m = merge(&[perm[0].clone(), perm[1].clone(), perm[2].clone()]);
            assert_eq!(parse(&m), base);
            validate(&m).unwrap();
        }
        // Associative: merge(merge(x, y), z) == merge(x, merge(y, z)).
        let left = merge(&[merge(&[x.clone(), y.clone()]), z.clone()]);
        let right = merge(&[x.clone(), merge(&[y.clone(), z.clone()])]);
        assert_eq!(parse(&left), parse(&right));
        assert_eq!(parse(&left), base);
    }

    #[test]
    fn parse_is_total() {
        let m = parse("# c\n\ngarbage\nx 1\ny{a=\"b\"} 2.5\nz inf\n");
        assert_eq!(m.len(), 2);
        assert_eq!(m["x"], 1.0);
        assert_eq!(m["y{a=\"b\"}"], 2.5);
    }
}
