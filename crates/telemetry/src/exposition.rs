//! Prometheus text exposition: rendering, a total parser, and the
//! bucket-wise merge the router uses.
//!
//! The format subset used here is one line per sample —
//! `name{label="value",...} number` (labels optional) — plus `# `-prefixed
//! comments. Because every histogram in the stack has the same 32 log2
//! buckets and always renders **all** of them (cumulative, with identical
//! `le` edges), merging expositions from several processes reduces to a
//! key-wise fold over series lines: sum everything, except series whose
//! metric name ends in `_max`, which take the max. That fold is exact —
//! the merged text equals what one process observing all the traffic
//! would have rendered.

use crate::{bucket_upper, HistogramSnapshot, BUCKETS};
use std::collections::BTreeMap;

/// Escapes a label value per the exposition format (`\` → `\\`, `"` →
/// `\"`, newline → `\n`).
pub fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders one series key: `name{a="x",b="y"}`, or bare `name` with no
/// labels.
pub fn series_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let inner = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect::<Vec<_>>()
        .join(",");
    format!("{name}{{{inner}}}")
}

/// Appends one sample line `key value` to `out`.
pub fn push_sample(out: &mut String, key: &str, value: u64) {
    out.push_str(key);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Renders a histogram snapshot as cumulative `_bucket` lines (always all
/// [`BUCKETS`] of them, so cross-process merges stay exact), plus `_sum`,
/// `_count`, and an exact `_max` gauge.
pub fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    snap: &HistogramSnapshot,
) {
    let mut cum = 0u64;
    for i in 0..BUCKETS {
        cum += snap.buckets[i];
        let le = if i == BUCKETS - 1 { "+Inf".to_string() } else { bucket_upper(i).to_string() };
        let mut with_le: Vec<(&str, &str)> = labels.to_vec();
        with_le.push(("le", &le));
        push_sample(out, &series_key(&format!("{name}_bucket"), &with_le), cum);
    }
    push_sample(out, &series_key(&format!("{name}_sum"), labels), snap.sum_us);
    push_sample(out, &series_key(&format!("{name}_count"), labels), snap.count);
    push_sample(out, &series_key(&format!("{name}_max"), labels), snap.max_us);
}

/// Checks that every non-blank line is a `# ` comment or a
/// `key value` sample with a finite numeric value and a plausible metric
/// name. Returns the first offending line.
pub fn validate(text: &str) -> Result<(), String> {
    for line in text.lines() {
        if line.is_empty() || line.starts_with("# ") {
            continue;
        }
        let Some((key, value)) = line.rsplit_once(' ') else {
            return Err(format!("not `key value`: `{line}`"));
        };
        if value.parse::<f64>().map(|v| !v.is_finite()).unwrap_or(true) {
            return Err(format!("bad sample value: `{line}`"));
        }
        let name = key.split('{').next().unwrap_or("");
        if name.is_empty()
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.starts_with(|c: char| c.is_ascii_digit())
        {
            return Err(format!("bad metric name: `{line}`"));
        }
        if key.contains('{') && !key.ends_with('}') {
            return Err(format!("unterminated labels: `{line}`"));
        }
    }
    Ok(())
}

/// Parses an exposition into `series key → value`. Total: comments, blank
/// lines, and anything that fails to parse contribute nothing.
pub fn parse(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.rsplit_once(' ') else { continue };
        let Ok(v) = value.parse::<f64>() else { continue };
        if key.is_empty() || !v.is_finite() {
            continue;
        }
        out.insert(key.to_string(), v);
    }
    out
}

/// The metric name of a series key (the part before `{`, if any).
pub fn metric_name(key: &str) -> &str {
    key.split('{').next().unwrap_or(key)
}

/// Merges several expositions key-wise: series whose metric name ends in
/// `_max` take the max, everything else sums. Output is one sorted sample
/// line per key (whole numbers render without a decimal point).
pub fn merge(texts: &[String]) -> String {
    let mut acc: BTreeMap<String, f64> = BTreeMap::new();
    for text in texts {
        for (key, v) in parse(text) {
            acc.entry(key.clone())
                .and_modify(|cur| {
                    if metric_name(&key).ends_with("_max") {
                        *cur = cur.max(v);
                    } else {
                        *cur += v;
                    }
                })
                .or_insert(v);
        }
    }
    let mut out = String::new();
    for (key, v) in acc {
        out.push_str(&key);
        out.push(' ');
        if v.fract() == 0.0 && v.abs() < 9e15 {
            out.push_str(&format!("{}", v as i64));
        } else {
            out.push_str(&format!("{v}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn series_keys_escape_labels() {
        assert_eq!(series_key("m", &[]), "m");
        assert_eq!(series_key("m", &[("a", "x\"y\\z")]), "m{a=\"x\\\"y\\\\z\"}");
    }

    #[test]
    fn validate_accepts_rendered_and_rejects_garbage() {
        let h = Histogram::new();
        h.record(100);
        let mut out = String::from("# TYPE m histogram\n");
        render_histogram(&mut out, "m", &[("t", "x")], &h.snapshot());
        validate(&out).unwrap();
        assert!(validate("not an exposition line").is_err());
        assert!(validate("name notanumber").is_err());
        assert!(validate("1name 3").is_err());
        assert!(validate("m{a=\"b\" 3").is_err());
    }

    #[test]
    fn merged_exposition_equals_bucketwise_sum_of_backends() {
        // Two "backends" record disjoint traffic; merging their rendered
        // expositions must equal the rendering of one histogram that saw
        // all of it — the router's aggregation invariant.
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for us in [3u64, 90, 1500] {
            a.record(us);
            all.record(us);
        }
        for us in [7u64, 7, 40_000] {
            b.record(us);
            all.record(us);
        }
        let render = |h: &Histogram| {
            let mut s = String::new();
            render_histogram(&mut s, "knn_request_duration_us", &[("tenant", "d")], &h.snapshot());
            s
        };
        let merged = merge(&[render(&a), render(&b)]);
        // `merge` normalizes to sorted order, so compare through `parse`.
        assert_eq!(parse(&merged), parse(&render(&all)));
        validate(&merged).unwrap();
        // And counters sum while _max takes the max.
        let m = merge(&["c_total 2\nm_max 9\n".into(), "c_total 3\nm_max 4\n".into()]);
        assert_eq!(m, "c_total 5\nm_max 9\n");
    }

    #[test]
    fn parse_is_total() {
        let m = parse("# c\n\ngarbage\nx 1\ny{a=\"b\"} 2.5\nz inf\n");
        assert_eq!(m.len(), 2);
        assert_eq!(m["x"], 1.0);
        assert_eq!(m["y{a=\"b\"}"], 2.5);
    }
}
