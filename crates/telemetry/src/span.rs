//! Structured span events: the flight recorder's unit of capture.
//!
//! A span is one timed step of one query (or one control-plane event):
//! admission wait, plan decision, artifact build, cache probe, solve,
//! router dispatch, failover, epoch apply. Spans form trees through
//! `(seq, parent)` links — `parent == 0` marks a root — and carry an
//! optional trace id so cross-process reconstruction can stitch a router's
//! dispatch span to the backend's query tree.
//!
//! Nothing here ever reaches response bytes: spans live in the
//! [`Recorder`](crate::recorder::Recorder) rings and leave the process only
//! through the out-of-band `trace` / `dump` verbs.

/// One recorded span event. Field conventions keep the hot path
/// allocation-light: `name` and `anomaly` are static strings, and the
/// empty string stands for "untraced" / "no anomaly".
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanEvent {
    /// Trace id this span belongs to (`""` = captured by sampling only).
    pub trace: String,
    /// Process-unique span sequence number (never 0).
    pub seq: u64,
    /// `seq` of the parent span; 0 for roots.
    pub parent: u64,
    /// Phase name: `query`, `admission`, `plan`, `artifact`, `cache`,
    /// `solve`, `dispatch`, `failover`, `apply`, ...
    pub name: &'static str,
    /// Free-form detail (route tag, cache outcome, `backend=N`, ...).
    pub detail: String,
    /// Tenant the span ran against (`""` for process-wide events).
    pub tenant: String,
    /// Dataset epoch observed, when meaningful.
    pub epoch: u64,
    /// Start, µs since the recorder's start instant.
    pub start_us: u64,
    /// Duration, µs (0 for instantaneous marker events).
    pub dur_us: u64,
    /// Why this span was force-captured (`""` = not an anomaly):
    /// `slow`, `error`, `demoted`, `guard_failed`, `failover`, ...
    pub anomaly: &'static str,
}

/// Capture context for one query, decided **before** execution: its
/// existence means "this query's phases are recorded". Created by the
/// serving layer (traced request, or the sampler fired) and threaded down
/// into the engine so phase spans parent correctly.
#[derive(Clone, Debug)]
pub struct SpanCtx {
    /// Trace id (`""` when the sampler, not a client, elected the query).
    pub trace: String,
    /// `seq` of the root span the phases hang under.
    pub parent: u64,
}
