//! Per-tenant latency SLOs: objectives, sliding windows of histogram
//! snapshots, and multi-window error-budget burn rates.
//!
//! An objective says "quantile `q` of end-to-end latency stays ≤
//! `threshold_us`, judged over the last `windows` observations". Each
//! [`SloRegistry::observe`] call takes the tenant's **cumulative** latency
//! snapshot, diffs it against the previous observation to get the newest
//! window, and appends it to a bounded deque — so the SLO engine never
//! needs the serving layer to reset histograms, and several scrapers can
//! read the same cumulative counters without coordinating.
//!
//! Burn rates use the standard error-budget formulation: the budget is
//! `1 − q`, and a window whose bad-observation fraction is `b` burns it at
//! rate `b / (1 − q)` — 1.0 means exactly on budget, above 1.0 means the
//! budget runs out early. The **short** burn (newest window) catches fast
//! regressions; the **long** burn (all retained windows merged) catches
//! slow leaks; the reported burn is the max of the two, per multi-window
//! burn-rate alerting practice. "Bad" counts every whole bucket whose
//! upper edge exceeds the threshold, so a bucket straddling the threshold
//! counts as bad — the estimate is conservative toward alerting.
//!
//! Everything here is out-of-band: observing never touches response
//! bytes, and a violation's only side effects are a counter bump and a
//! forced flight-recorder span (anomaly `slo_violation`).

use crate::{HistogramSnapshot, Recorder, SpanEvent};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

/// One tenant's latency objective.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloObjective {
    /// The judged quantile, in (0, 1) — e.g. 0.99 for p99.
    pub quantile: f64,
    /// The latency bound the quantile must stay under, µs.
    pub threshold_us: u64,
    /// How many observation windows the sliding long-burn view retains.
    pub windows: usize,
}

impl Default for SloObjective {
    fn default() -> SloObjective {
        SloObjective { quantile: 0.99, threshold_us: 100_000, windows: 6 }
    }
}

/// A point-in-time report for one tenant's objective.
#[derive(Clone, Debug)]
pub struct SloStatus {
    /// Tenant name.
    pub tenant: String,
    /// The objective being judged.
    pub objective: SloObjective,
    /// Windows currently retained (≤ `objective.windows`).
    pub windows_held: usize,
    /// Observations within the threshold across the retained windows.
    pub good: u64,
    /// All observations across the retained windows.
    pub total: u64,
    /// The attained objective quantile of the newest window, µs (0 when
    /// no window has been captured yet).
    pub quantile_us: u64,
    /// Burn rate of the newest window alone.
    pub short_burn: f64,
    /// Burn rate of all retained windows merged.
    pub long_burn: f64,
    /// `max(short_burn, long_burn)` — the headline number `top` ranks by.
    pub burn: f64,
    /// Observations (windows) whose attained quantile broke the threshold
    /// since the objective was set.
    pub violations: u64,
}

/// Per-tenant tracking state.
#[derive(Debug)]
struct TenantSlo {
    objective: SloObjective,
    /// The cumulative snapshot at the previous observation — the diff
    /// baseline for the next window.
    last_cum: HistogramSnapshot,
    /// The retained windows, oldest first.
    windows: VecDeque<HistogramSnapshot>,
    violations: u64,
}

/// The per-process SLO registry: tenant name → objective + window state.
///
/// Lock discipline: one mutex over the whole map, held only for O(windows)
/// work — `observe` runs on scrape/`top` paths, never per-query.
#[derive(Debug, Default)]
pub struct SloRegistry {
    inner: Mutex<BTreeMap<String, TenantSlo>>,
}

impl SloRegistry {
    /// Registers (or replaces) `tenant`'s objective, resetting its window
    /// history and violation count. The first window observed after `set`
    /// covers all of the tenant's traffic to date (the diff baseline
    /// starts empty).
    pub fn set(&self, tenant: &str, objective: SloObjective) -> Result<(), String> {
        if !(objective.quantile > 0.0 && objective.quantile < 1.0) {
            return Err(format!("slo quantile must be in (0, 1), got {}", objective.quantile));
        }
        if objective.windows == 0 {
            return Err("slo windows must be positive".into());
        }
        self.inner.lock().unwrap().insert(
            tenant.to_string(),
            TenantSlo {
                objective,
                last_cum: HistogramSnapshot::default(),
                windows: VecDeque::new(),
                violations: 0,
            },
        );
        Ok(())
    }

    /// The objective registered for `tenant`, if any.
    pub fn get(&self, tenant: &str) -> Option<SloObjective> {
        self.inner.lock().unwrap().get(tenant).map(|t| t.objective)
    }

    /// Drops `tenant`'s objective; returns whether one was registered.
    pub fn clear(&self, tenant: &str) -> bool {
        self.inner.lock().unwrap().remove(tenant).is_some()
    }

    /// Tenants with a registered objective, sorted.
    pub fn tenants(&self) -> Vec<String> {
        self.inner.lock().unwrap().keys().cloned().collect()
    }

    /// Feeds one cumulative latency snapshot for `tenant`. The diff
    /// against the previous observation becomes the newest window (empty
    /// diffs — no traffic since last time — are skipped, so idle scrapes
    /// do not dilute the sliding view). When the newest window's attained
    /// quantile breaks the threshold, the violation is counted and a
    /// forced anomaly span (`slo` / `slo_violation`) is pushed into the
    /// flight recorder. Returns the post-observation status, or `None`
    /// when the tenant has no objective.
    pub fn observe(
        &self,
        tenant: &str,
        cum: HistogramSnapshot,
        recorder: &Recorder,
    ) -> Option<SloStatus> {
        let mut inner = self.inner.lock().unwrap();
        let t = inner.get_mut(tenant)?;
        let window = cum.diff(&t.last_cum);
        if window.count > 0 {
            t.last_cum = cum;
            while t.windows.len() >= t.objective.windows.max(1) {
                t.windows.pop_front();
            }
            let attained = window.quantile_us(t.objective.quantile);
            t.windows.push_back(window);
            if attained > t.objective.threshold_us {
                t.violations += 1;
                recorder.push(
                    SpanEvent {
                        seq: recorder.next_seq(),
                        name: "slo",
                        detail: format!(
                            "p{:.0}={}us threshold={}us",
                            t.objective.quantile * 100.0,
                            attained,
                            t.objective.threshold_us
                        ),
                        tenant: tenant.to_string(),
                        start_us: recorder.now_us(),
                        anomaly: "slo_violation",
                        ..SpanEvent::default()
                    },
                    true,
                );
            }
        }
        Some(Self::status_of(tenant, t))
    }

    /// The status for `tenant` without observing a new window.
    pub fn status(&self, tenant: &str) -> Option<SloStatus> {
        self.inner.lock().unwrap().get(tenant).map(|t| Self::status_of(tenant, t))
    }

    /// Statuses for every tenant with an objective, sorted by tenant.
    pub fn all_status(&self) -> Vec<SloStatus> {
        self.inner.lock().unwrap().iter().map(|(n, t)| Self::status_of(n, t)).collect()
    }

    /// Error-budget burn rate of one window under `o` (0 when empty).
    fn burn(window: &HistogramSnapshot, o: &SloObjective) -> f64 {
        if window.count == 0 {
            return 0.0;
        }
        let bad = window.count_over(o.threshold_us) as f64;
        (bad / window.count as f64) / (1.0 - o.quantile).max(1e-9)
    }

    fn status_of(tenant: &str, t: &TenantSlo) -> SloStatus {
        let newest = t.windows.back().cloned().unwrap_or_default();
        let mut long = HistogramSnapshot::default();
        for w in &t.windows {
            long.merge(w);
        }
        let short_burn = Self::burn(&newest, &t.objective);
        let long_burn = Self::burn(&long, &t.objective);
        let bad = long.count_over(t.objective.threshold_us);
        SloStatus {
            tenant: tenant.to_string(),
            objective: t.objective,
            windows_held: t.windows.len(),
            good: long.count - bad,
            total: long.count,
            quantile_us: newest.quantile_us(t.objective.quantile),
            short_burn,
            long_burn,
            burn: short_burn.max(long_burn),
            violations: t.violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    #[test]
    fn objectives_are_validated_and_replaceable() {
        let r = SloRegistry::default();
        assert!(r.set("d", SloObjective { quantile: 0.0, ..Default::default() }).is_err());
        assert!(r.set("d", SloObjective { quantile: 1.0, ..Default::default() }).is_err());
        assert!(r.set("d", SloObjective { windows: 0, ..Default::default() }).is_err());
        assert!(r.get("d").is_none());
        r.set("d", SloObjective { quantile: 0.9, threshold_us: 50, windows: 3 }).unwrap();
        assert_eq!(r.get("d").unwrap().threshold_us, 50);
        assert_eq!(r.tenants(), vec!["d".to_string()]);
        // Replacing resets history.
        r.set("d", SloObjective::default()).unwrap();
        assert_eq!(r.status("d").unwrap().windows_held, 0);
        assert!(r.clear("d"));
        assert!(!r.clear("d"));
    }

    #[test]
    fn observe_windows_diff_and_burn() {
        let r = SloRegistry::default();
        let rec = Recorder::new();
        // p50 ≤ 100µs over 2 windows: easy to violate deliberately.
        r.set("d", SloObjective { quantile: 0.5, threshold_us: 100, windows: 2 }).unwrap();

        let h = Histogram::new();
        for us in [10u64, 20, 30, 40] {
            h.record(us);
        }
        let st = r.observe("d", h.snapshot(), &rec).unwrap();
        assert_eq!((st.windows_held, st.total, st.good), (1, 4, 4));
        assert_eq!(st.burn, 0.0);
        assert_eq!(st.violations, 0);

        // No new traffic → idle observation keeps the window count.
        let st = r.observe("d", h.snapshot(), &rec).unwrap();
        assert_eq!(st.windows_held, 1);

        // A window of all-slow traffic: bad_frac 1.0, budget 0.5 → burn 2.
        for us in [1000u64, 2000, 3000, 4000] {
            h.record(us);
        }
        let st = r.observe("d", h.snapshot(), &rec).unwrap();
        assert_eq!(st.windows_held, 2);
        assert_eq!((st.total, st.good), (8, 4));
        assert!((st.short_burn - 2.0).abs() < 1e-9, "short burn {}", st.short_burn);
        assert!((st.long_burn - 1.0).abs() < 1e-9, "long burn {}", st.long_burn);
        assert!((st.burn - 2.0).abs() < 1e-9);
        assert_eq!(st.violations, 1, "the slow window broke p50 ≤ 100µs");

        // A third window evicts the oldest (fast) one: long view = 2 slow-ish.
        for us in [500u64, 600] {
            h.record(us);
        }
        let st = r.observe("d", h.snapshot(), &rec).unwrap();
        assert_eq!(st.windows_held, 2);
        assert_eq!(st.total, 6, "oldest window evicted from the sliding view");
        assert_eq!(st.violations, 2);
    }

    #[test]
    fn violations_force_anomaly_spans() {
        let r = SloRegistry::default();
        let rec = Recorder::new();
        r.set("d", SloObjective { quantile: 0.5, threshold_us: 1, windows: 4 }).unwrap();
        let h = Histogram::new();
        h.record(10_000);
        r.observe("d", h.snapshot(), &rec).unwrap();
        let spans = rec.all();
        let slo: Vec<_> = spans.iter().filter(|s| s.name == "slo").collect();
        assert_eq!(slo.len(), 1);
        assert_eq!(slo[0].anomaly, "slo_violation");
        assert_eq!(slo[0].tenant, "d");
        assert!(slo[0].detail.contains("threshold=1us"), "{}", slo[0].detail);
    }

    #[test]
    fn observe_without_objective_is_none() {
        let r = SloRegistry::default();
        let rec = Recorder::new();
        assert!(r.observe("ghost", HistogramSnapshot::default(), &rec).is_none());
        assert!(r.status("ghost").is_none());
        assert!(r.all_status().is_empty());
    }
}
