//! Out-of-band observability for the explainable k-NN serving stack.
//!
//! The serving layers' load-bearing invariant — every response line is a
//! pure function of `(dataset at the query's epoch, config, request)` — is
//! exactly what makes telemetry safe to bolt on: nothing recorded here may
//! ever flow back into response bytes. This crate therefore holds only
//! **write-mostly, read-on-demand** state:
//!
//! * [`Histogram`] — a lock-free fixed-bucket log2 latency histogram
//!   (32 atomic u64 buckets over microseconds) that is cheap to record
//!   into, mergeable bucket-wise across processes, and good enough to
//!   derive p50/p90/p99/max from.
//! * [`Telemetry`] — the per-process registry: end-to-end latency per
//!   `(tenant, route)`, phase timings per `(tenant, phase)`, free-form
//!   named histograms and counters, and a bounded worst-N slow-query ring.
//!   Recording is gated on an [`enabled`](Telemetry::set_enabled) flag
//!   (default **off**) so library users — `xknn batch`, the benches'
//!   baseline arms — pay one relaxed atomic load and nothing else.
//! * [`exposition`] — Prometheus text rendering, a total parser, and the
//!   bucket-wise merge the cluster router uses to aggregate backend
//!   expositions into one scrape surface.
//! * [`recorder`] — the always-on flight recorder: a bounded ring of
//!   structured [`span`] events (reservoir-sampled traffic plus forced
//!   anomaly capture) that the `trace` / `dump` control verbs reconstruct
//!   into span trees and [`chrome`] trace-event dumps.
//! * [`capture`] — the always-on black-box ring of raw served
//!   request/response lines the `repro` verb turns into replayable
//!   bundles, and the shadow-audit sampler whose background auditor
//!   re-executes a 1-in-N sample of served queries.
//!
//! Everything is std-only and shared behind `Arc`s; the server and router
//! surface the state through `metrics` / `slow` / `trace` / `dump` /
//! `repro` control verbs, and benches snapshot it directly.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod capture;
pub mod chrome;
pub mod exposition;
pub mod recorder;
pub mod slo;
pub mod span;

pub use capture::{AuditJob, AuditSampler, CaptureEntry, CaptureRing};
pub use recorder::Recorder;
pub use slo::{SloObjective, SloRegistry, SloStatus};
pub use span::{SpanCtx, SpanEvent};

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Number of log2 buckets per histogram. Bucket `i` covers
/// `[2^i, 2^(i+1))` µs (bucket 0 also absorbs 0; the last bucket absorbs
/// everything ≥ 2^31 µs ≈ 36 minutes).
pub const BUCKETS: usize = 32;

/// How many entries the slow-query ring keeps (worst-N by wall time).
pub const SLOW_RING_CAP: usize = 32;

/// The bucket a microsecond value falls into (see [`BUCKETS`]).
#[inline]
pub fn bucket_index(us: u64) -> usize {
    (63 - (us | 1).leading_zeros() as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` in µs; `u64::MAX` for the last
/// bucket (rendered as `le="+Inf"`).
pub fn bucket_upper(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

/// Stripes per [`Histogram`]: each recording thread lands on one stripe, so
/// worker threads on different stripes never touch the same cache lines.
const STRIPES: usize = 8;

/// One stripe of histogram counters, cache-line aligned so that adjacent
/// stripes in the array never false-share.
#[derive(Debug)]
#[repr(align(128))]
struct Stripe {
    buckets: [AtomicU64; BUCKETS],
    sum_us: AtomicU64,
    count: AtomicU64,
    max_us: AtomicU64,
}

impl Stripe {
    fn new() -> Stripe {
        Stripe {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

/// The stripe this thread records into: assigned round-robin on first use,
/// then pinned for the thread's lifetime via a thread-local.
fn stripe_id() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    STRIPE.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            return v;
        }
        let v = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
        s.set(v);
        v
    })
}

/// A lock-free log2 latency histogram over microseconds.
///
/// All mutation is relaxed atomics, striped per recording thread so that
/// engine workers hammering the same phase histogram never contend on a
/// cache line — recording is a handful of uncontended `fetch_add`s. A
/// concurrent [`snapshot`](Histogram::snapshot) folds the stripes and sees
/// some valid interleaving (telemetry, not accounting). Every histogram
/// has the same 32 buckets, which is what makes the router's key-wise
/// sum-merge of rendered expositions exact.
#[derive(Debug)]
pub struct Histogram {
    stripes: [Stripe; STRIPES],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram { stripes: std::array::from_fn(|_| Stripe::new()) }
    }

    /// Records one observation of `us` microseconds.
    pub fn record(&self, us: u64) {
        let stripe = &self.stripes[stripe_id()];
        stripe.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        stripe.sum_us.fetch_add(us, Ordering::Relaxed);
        stripe.count.fetch_add(1, Ordering::Relaxed);
        stripe.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters, folded across stripes.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::default();
        for stripe in &self.stripes {
            for (b, s) in snap.buckets.iter_mut().zip(stripe.buckets.iter()) {
                *b += s.load(Ordering::Relaxed);
            }
            snap.sum_us += stripe.sum_us.load(Ordering::Relaxed);
            snap.count += stripe.count.load(Ordering::Relaxed);
            snap.max_us = snap.max_us.max(stripe.max_us.load(Ordering::Relaxed));
        }
        snap
    }
}

/// An owned copy of a [`Histogram`]'s counters: mergeable, and the place
/// quantiles are derived.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (non-cumulative).
    pub buckets: [u64; BUCKETS],
    /// Sum of all observed values, µs.
    pub sum_us: u64,
    /// Number of observations.
    pub count: u64,
    /// Largest observed value, µs (exact, via `fetch_max`).
    pub max_us: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot { buckets: [0; BUCKETS], sum_us: 0, count: 0, max_us: 0 }
    }
}

impl HistogramSnapshot {
    /// Bucket-wise accumulate `other` into `self` (sum counts, max the max).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.sum_us += other.sum_us;
        self.count += other.count;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// An upper bound on the `q`-quantile (0 < `q` ≤ 1) in µs: the upper
    /// edge of the first bucket whose cumulative count reaches
    /// `ceil(q · count)`, clamped to the exact max. 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                return bucket_upper(i).min(self.max_us);
            }
        }
        self.max_us
    }

    /// The window between an `earlier` cumulative snapshot and `self`:
    /// bucket-wise saturating difference of counts and sums. `max_us`
    /// carries `self`'s cumulative max — the per-window max is not
    /// tracked, so the cumulative value serves as its upper bound (which
    /// keeps [`HistogramSnapshot::quantile_us`] an upper bound too).
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for (o, (s, e)) in out.buckets.iter_mut().zip(self.buckets.iter().zip(&earlier.buckets)) {
            *o = s.saturating_sub(*e);
        }
        out.sum_us = self.sum_us.saturating_sub(earlier.sum_us);
        out.count = self.count.saturating_sub(earlier.count);
        out.max_us = self.max_us;
        out
    }

    /// Observations in buckets whose upper edge exceeds `threshold_us`. A
    /// bucket straddling the threshold counts entirely, so this is an
    /// over-count of threshold-breaking observations — the SLO engine's
    /// conservative-toward-alerting "bad" count.
    pub fn count_over(&self, threshold_us: u64) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(i, _)| bucket_upper(*i) > threshold_us)
            .map(|(_, b)| *b)
            .sum()
    }

    /// The median upper bound, µs.
    pub fn p50(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// The 90th-percentile upper bound, µs.
    pub fn p90(&self) -> u64 {
        self.quantile_us(0.90)
    }

    /// The 99th-percentile upper bound, µs.
    pub fn p99(&self) -> u64 {
        self.quantile_us(0.99)
    }
}

/// Per-query phase breakdown the engine fills while executing one request.
///
/// The engine returns this next to the response (never inside it); the
/// server layer adds admission wait and end-to-end wall time, then offers
/// the combined record to the slow-query ring. All zeros when telemetry is
/// disabled — the engine skips the clock reads entirely.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// Cache outcome: `hit`, `revalidated`, `miss`, `coalesced`, or
    /// `uncached` (cache capacity 0). Always filled, even when disabled.
    pub cache: &'static str,
    /// Dataset epoch the query answered at. Always filled.
    pub epoch: u64,
    /// Planner time, µs.
    pub plan_us: u64,
    /// Artifact build time this query paid (builder-side only), µs.
    pub artifact_us: u64,
    /// Cache lookup + guard revalidation time, µs (sampled: the engine
    /// times 1-in-N probes, so this is zero for most warm hits).
    pub cache_us: u64,
    /// Solver time, µs.
    pub solve_us: u64,
    /// Did the effort budget demote the plan to the greedy heuristic?
    /// Always filled (it is a plan property, not a timing).
    pub demoted: bool,
    /// Did a cache hit fail guard revalidation (forcing a recompute)?
    /// Always filled.
    pub guard_failed: bool,
}

/// One entry of the slow-query ring: where a slow query's time went.
///
/// Phases are the server's decomposition of the end-to-end wall time:
/// admission wait, plan selection, artifact builds this query paid for,
/// cache lookup + guard revalidation, and the solver itself.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SlowQuery {
    /// Tenant the query ran against.
    pub tenant: String,
    /// Request id (echoed wire id).
    pub id: String,
    /// The planner's route decision (the response's `route` member).
    pub route: String,
    /// Cache outcome: `hit`, `revalidated`, `miss`, or `coalesced`.
    pub cache: String,
    /// Dataset epoch the query answered at.
    pub epoch: u64,
    /// End-to-end wall time, µs.
    pub total_us: u64,
    /// Time queued for a global admission slot, µs.
    pub admission_us: u64,
    /// Planner time, µs.
    pub plan_us: u64,
    /// Artifact build time this query paid (builder-side only), µs.
    pub artifact_us: u64,
    /// Cache lookup + guard revalidation time, µs (sampled: the engine
    /// times 1-in-N probes, so this is zero for most warm hits).
    pub cache_us: u64,
    /// Solver time, µs.
    pub solve_us: u64,
    /// Flight-recorder trace id, if the query was traced or sampled —
    /// the `slow` → `trace <id>` drill-down link. `None` when the query
    /// went uncaptured.
    pub trace: Option<String>,
    /// Capture reference into the black-box ring ([`capture`]): the
    /// server connection the query arrived on. Together with `seq` this
    /// is the `slow` → `repro` drill-down link.
    pub conn: u64,
    /// The query's sequence number within its connection (see `conn`).
    pub seq: u64,
}

type LabeledHists = RwLock<BTreeMap<String, BTreeMap<String, Arc<Histogram>>>>;

/// The per-process telemetry registry. See the crate docs.
///
/// All recording methods early-return when the registry is disabled (the
/// default), so a `Telemetry` compiled in but idle costs one relaxed
/// atomic load per would-be record.
#[derive(Debug, Default)]
pub struct Telemetry {
    enabled: AtomicBool,
    /// End-to-end latency per tenant → route.
    routes: LabeledHists,
    /// Phase timings per tenant → phase.
    phases: LabeledHists,
    /// Free-form histograms keyed by full metric name (no labels), e.g.
    /// the router's probe-round latency.
    named: RwLock<BTreeMap<String, Arc<Histogram>>>,
    /// Monotonic counters keyed by full series name (labels, if any,
    /// already rendered into the key).
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    /// Worst-N queries by wall time.
    slow: Mutex<Vec<SlowQuery>>,
    /// Admission threshold of the ring: 0 while it has room, else the
    /// current minimum `total_us` — lets the hot path skip the lock (and
    /// the entry's string allocations) for queries that cannot get in.
    slow_floor: AtomicU64,
    /// The always-on flight recorder. Deliberately *not* gated on
    /// `enabled`: anomaly forensics must work on a default-configured
    /// process, and the recorder's unelected-path cost is one thread-local
    /// counter bump.
    recorder: Recorder,
    /// Per-tenant latency objectives and their burn-rate windows. Like the
    /// recorder, not gated on `enabled` — but with telemetry off the route
    /// histograms stay empty, so observations see no traffic.
    slo: SloRegistry,
    /// The always-on black-box capture ring (see [`capture`]). Not gated
    /// on `enabled` for the same reason as the recorder: `repro` must
    /// work on a default-configured process.
    capture: CaptureRing,
    /// Shadow-audit election + job hand-off (see [`capture`]).
    audit: AuditSampler,
}

fn labeled(map: &LabeledHists, a: &str, b: &str) -> Arc<Histogram> {
    if let Some(h) = map.read().unwrap().get(a).and_then(|m| m.get(b)) {
        return h.clone();
    }
    map.write().unwrap().entry(a.to_string()).or_default().entry(b.to_string()).or_default().clone()
}

impl Telemetry {
    /// A disabled registry behind an `Arc` (the only way it is ever held).
    pub fn new() -> Arc<Telemetry> {
        Arc::new(Telemetry::default())
    }

    /// Turns recording on or off. Off (the default) makes every record
    /// call a single relaxed load.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The process's flight recorder (always on; see [`Recorder`]).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The per-tenant SLO registry (see [`slo`]).
    pub fn slo(&self) -> &SloRegistry {
        &self.slo
    }

    /// The black-box capture ring (always on; see [`capture`]).
    pub fn capture(&self) -> &CaptureRing {
        &self.capture
    }

    /// The shadow-audit sampler (see [`capture`]).
    pub fn audit(&self) -> &AuditSampler {
        &self.audit
    }

    /// `tenant`'s cumulative end-to-end latency: all of its per-route
    /// histograms merged into one snapshot.
    pub fn tenant_cumulative(&self, tenant: &str) -> HistogramSnapshot {
        let mut cum = HistogramSnapshot::default();
        if let Some(m) = self.routes.read().unwrap().get(tenant) {
            for h in m.values() {
                cum.merge(&h.snapshot());
            }
        }
        cum
    }

    /// Feeds `tenant`'s current cumulative latency into its SLO tracker
    /// (violations force anomaly spans into the flight recorder). `None`
    /// when the tenant has no registered objective.
    pub fn observe_slo(&self, tenant: &str) -> Option<SloStatus> {
        let cum = self.tenant_cumulative(tenant);
        self.slo.observe(tenant, cum, &self.recorder)
    }

    /// Observes and reports every tenant with a registered objective —
    /// what the `top` and `slo` verbs call so burn rates are current at
    /// the moment of asking.
    pub fn observe_slo_all(&self) -> Vec<SloStatus> {
        self.slo.tenants().iter().filter_map(|t| self.observe_slo(t)).collect()
    }

    /// The end-to-end histogram for `(tenant, route)`, creating it if
    /// needed. Hot paths should cache the returned handle.
    pub fn route_histogram(&self, tenant: &str, route: &str) -> Arc<Histogram> {
        labeled(&self.routes, tenant, route)
    }

    /// The phase histogram for `(tenant, phase)`, creating it if needed.
    pub fn phase_histogram(&self, tenant: &str, phase: &str) -> Arc<Histogram> {
        labeled(&self.phases, tenant, phase)
    }

    /// The free-form histogram named `name`, creating it if needed.
    pub fn named_histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.named.read().unwrap().get(name) {
            return h.clone();
        }
        self.named.write().unwrap().entry(name.to_string()).or_default().clone()
    }

    /// The counter for the full series name `series`, creating it if
    /// needed.
    pub fn counter(&self, series: &str) -> Arc<AtomicU64> {
        if let Some(c) = self.counters.read().unwrap().get(series) {
            return c.clone();
        }
        self.counters.write().unwrap().entry(series.to_string()).or_default().clone()
    }

    /// Records one end-to-end observation (no-op when disabled).
    pub fn record_route(&self, tenant: &str, route: &str, us: u64) {
        if self.is_enabled() {
            self.route_histogram(tenant, route).record(us);
        }
    }

    /// Records one phase observation (no-op when disabled).
    pub fn record_phase(&self, tenant: &str, phase: &str, us: u64) {
        if self.is_enabled() {
            self.phase_histogram(tenant, phase).record(us);
        }
    }

    /// Records into a free-form named histogram (no-op when disabled).
    pub fn record_named(&self, name: &str, us: u64) {
        if self.is_enabled() {
            self.named_histogram(name).record(us);
        }
    }

    /// Bumps a counter by `n` (no-op when disabled).
    pub fn add(&self, series: &str, n: u64) {
        if self.is_enabled() {
            self.counter(series).fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Offers a query to the worst-N ring: admitted while the ring has
    /// room, else only if slower than the current fastest entry (which it
    /// replaces). No-op when disabled. Returns whether the entry was
    /// admitted (the server uses this as its slow-anomaly signal).
    pub fn record_slow(&self, q: SlowQuery) -> bool {
        let total_us = q.total_us;
        self.record_slow_with(total_us, || q)
    }

    /// [`record_slow`](Telemetry::record_slow), building the entry lazily:
    /// a query that cannot beat the ring's current floor costs one relaxed
    /// load — no lock, no string allocation. The serving hot path uses
    /// this form.
    pub fn record_slow_with(&self, total_us: u64, make: impl FnOnce() -> SlowQuery) -> bool {
        if !self.is_enabled() || total_us <= self.slow_floor.load(Ordering::Relaxed) {
            return false;
        }
        let mut ring = self.slow.lock().unwrap();
        if ring.len() < SLOW_RING_CAP {
            ring.push(make());
        } else {
            let Some((idx, min)) = ring
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.total_us)
                .map(|(i, e)| (i, e.total_us))
            else {
                return false;
            };
            if total_us <= min {
                return false;
            }
            ring[idx] = make();
        }
        let floor = if ring.len() < SLOW_RING_CAP {
            0
        } else {
            ring.iter().map(|e| e.total_us).min().unwrap_or(0)
        };
        self.slow_floor.store(floor, Ordering::Relaxed);
        true
    }

    /// Drains the slow-query ring, slowest first (ties broken by tenant
    /// then id so the output is deterministic for a fixed ring).
    pub fn drain_slow(&self) -> Vec<SlowQuery> {
        let mut v = {
            let mut ring = self.slow.lock().unwrap();
            self.slow_floor.store(0, Ordering::Relaxed);
            std::mem::take(&mut *ring)
        };
        v.sort_by(|a, b| {
            b.total_us
                .cmp(&a.total_us)
                .then_with(|| a.tenant.cmp(&b.tenant))
                .then_with(|| a.id.cmp(&b.id))
        });
        v
    }

    /// Renders everything recorded so far as Prometheus text exposition.
    ///
    /// Families in fixed order (request histograms, phase histograms,
    /// free-form histograms, counters/gauges, SLO status), series sorted
    /// within each — the output is deterministic for a fixed state. Every
    /// non-empty family gets its `# HELP` / `# TYPE` headers before its
    /// first sample (the `_max` companion of each histogram is its own
    /// gauge family); an empty registry still renders to the empty string.
    pub fn render(&self) -> String {
        let histogram_headers = |out: &mut String, name: &str, help: &str| {
            exposition::push_header(out, name, "histogram", help);
            exposition::push_header(
                out,
                &format!("{name}_max"),
                "gauge",
                "Exact maximum of the observations in the sibling histogram.",
            );
        };
        let mut out = String::new();
        {
            let routes = self.routes.read().unwrap();
            if routes.values().any(|m| !m.is_empty()) {
                histogram_headers(
                    &mut out,
                    "knn_request_duration_us",
                    "End-to-end request latency by tenant and route, microseconds.",
                );
                for (tenant, m) in routes.iter() {
                    for (route, h) in m.iter() {
                        exposition::render_histogram(
                            &mut out,
                            "knn_request_duration_us",
                            &[("tenant", tenant), ("route", route)],
                            &h.snapshot(),
                        );
                    }
                }
            }
        }
        {
            let phases = self.phases.read().unwrap();
            if phases.values().any(|m| !m.is_empty()) {
                histogram_headers(
                    &mut out,
                    "knn_phase_duration_us",
                    "Per-phase execution time by tenant, microseconds.",
                );
                for (tenant, m) in phases.iter() {
                    for (phase, h) in m.iter() {
                        exposition::render_histogram(
                            &mut out,
                            "knn_phase_duration_us",
                            &[("tenant", tenant), ("phase", phase)],
                            &h.snapshot(),
                        );
                    }
                }
            }
        }
        for (name, h) in self.named.read().unwrap().iter() {
            histogram_headers(&mut out, name, "Free-form latency histogram, microseconds.");
            exposition::render_histogram(&mut out, name, &[], &h.snapshot());
        }
        {
            // Counters/gauges grouped by family so each family's headers
            // go out once, before its first series. `_total` names are
            // monotonic counters per Prometheus convention; anything else
            // registered here is a point-in-time gauge.
            let counters = self.counters.read().unwrap();
            let mut families: BTreeMap<&str, Vec<(&String, u64)>> = BTreeMap::new();
            for (series, c) in counters.iter() {
                families
                    .entry(exposition::family_of(series))
                    .or_default()
                    .push((series, c.load(Ordering::Relaxed)));
            }
            for (family, series) in families {
                let (kind, help) = if family.ends_with("_total") {
                    ("counter", "Monotonic event counter.")
                } else {
                    ("gauge", "Point-in-time gauge.")
                };
                exposition::push_header(&mut out, family, kind, help);
                for (key, v) in series {
                    exposition::push_sample(&mut out, key, v);
                }
            }
        }
        {
            let statuses = self.slo.all_status();
            if !statuses.is_empty() {
                exposition::push_header(
                    &mut out,
                    "knn_slo_burn",
                    "gauge",
                    "Error-budget burn rate, max of short and long windows (1.0 = on budget).",
                );
                for st in &statuses {
                    out.push_str(&exposition::series_key(
                        "knn_slo_burn",
                        &[("tenant", &st.tenant)],
                    ));
                    out.push_str(&format!(" {:.4}\n", st.burn));
                }
                exposition::push_header(
                    &mut out,
                    "knn_slo_violations_total",
                    "counter",
                    "Observation windows whose attained quantile broke the objective.",
                );
                for st in &statuses {
                    exposition::push_sample(
                        &mut out,
                        &exposition::series_key(
                            "knn_slo_violations_total",
                            &[("tenant", &st.tenant)],
                        ),
                        st.violations,
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        for i in 0..BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_upper(i)), i, "upper bound lands in its bucket");
            assert_eq!(bucket_index(bucket_upper(i) + 1), i + 1);
        }
    }

    #[test]
    fn histogram_records_and_derives_quantiles() {
        let h = Histogram::new();
        for us in [1u64, 2, 3, 100, 1000, 50_000] {
            h.record(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum_us, 51_106);
        assert_eq!(s.max_us, 50_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 6);
        // p50 of 6 obs → 3rd: value 3 lives in bucket [2,3], upper 3.
        assert_eq!(s.p50(), 3);
        // p99 → 6th obs: max clamps the bucket upper bound to 50_000.
        assert_eq!(s.p99(), 50_000);
        assert_eq!(HistogramSnapshot::default().p50(), 0);
    }

    /// Percentile edge cases pinned: an empty histogram derives 0 for
    /// every quantile (not the first bucket's upper bound), a one-sample
    /// histogram derives that sample's clamped bound everywhere, and a
    /// histogram holding only the maximum representable value clamps to
    /// the exact recorded max rather than `+Inf`.
    #[test]
    fn quantiles_pin_empty_single_and_max_only_cases() {
        let empty = HistogramSnapshot::default();
        for q in [0.01, 0.50, 0.90, 0.99, 1.0] {
            assert_eq!(empty.quantile_us(q), 0, "empty histogram quantile {q}");
        }

        let one = Histogram::new();
        one.record(7);
        let s = one.snapshot();
        // 7 lives in bucket [4,7] (upper 7); max clamps to exactly 7.
        for q in [0.01, 0.50, 0.99] {
            assert_eq!(s.quantile_us(q), 7, "single-sample quantile {q}");
        }

        let max_only = Histogram::new();
        max_only.record(u64::MAX);
        let s = max_only.snapshot();
        assert_eq!(s.count, 1);
        // The last bucket's upper bound is u64::MAX; the exact-max clamp
        // keeps the quantile at the recorded value.
        assert_eq!(s.p50(), u64::MAX);
        assert_eq!(s.p99(), u64::MAX);
    }

    #[test]
    fn snapshot_merge_is_bucketwise_sum() {
        let a = Histogram::new();
        let b = Histogram::new();
        for us in [5u64, 70, 900] {
            a.record(us);
        }
        for us in [8u64, 8, 1_000_000] {
            b.record(us);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let all = Histogram::new();
        for us in [5u64, 70, 900, 8, 8, 1_000_000] {
            all.record(us);
        }
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let t = Telemetry::new();
        t.record_route("d", "classify", 10);
        t.record_phase("d", "solve", 10);
        t.add("c_total", 3);
        t.record_slow(SlowQuery { total_us: 99, ..SlowQuery::default() });
        assert_eq!(t.render(), "");
        assert!(t.drain_slow().is_empty());

        t.set_enabled(true);
        t.record_route("d", "classify", 10);
        assert_eq!(t.route_histogram("d", "classify").snapshot().count, 1);
    }

    #[test]
    fn slow_ring_keeps_worst_n() {
        let t = Telemetry::new();
        t.set_enabled(true);
        for us in 0..(SLOW_RING_CAP as u64 + 8) {
            t.record_slow(SlowQuery { id: format!("q{us}"), total_us: us, ..SlowQuery::default() });
        }
        let drained = t.drain_slow();
        assert_eq!(drained.len(), SLOW_RING_CAP);
        // The 8 fastest were evicted; the slowest survives and sorts first.
        assert_eq!(drained[0].total_us, SLOW_RING_CAP as u64 + 7);
        assert!(drained.iter().all(|q| q.total_us >= 8));
        assert!(drained.windows(2).all(|w| w[0].total_us >= w[1].total_us));
        // Drain empties the ring.
        assert!(t.drain_slow().is_empty());
    }

    #[test]
    fn render_is_deterministic_and_valid() {
        let t = Telemetry::new();
        t.set_enabled(true);
        t.record_route("demo", "classify_hamming", 42);
        t.record_phase("demo", "solve", 17);
        t.record_named("knn_router_probe_round_us", 5);
        t.add("knn_router_dispatches_total", 2);
        t.add("knn_server_admission_queue_depth", 3);
        t.slo().set("demo", SloObjective { quantile: 0.5, threshold_us: 1, windows: 2 }).unwrap();
        t.observe_slo("demo").unwrap();
        let text = t.render();
        assert_eq!(text, t.render());
        exposition::validate(&text).unwrap();
        assert!(text.contains(
            "knn_request_duration_us_count{tenant=\"demo\",route=\"classify_hamming\"} 1"
        ));
        assert!(text.contains("knn_router_dispatches_total 2"));
        // Every family carries its HELP/TYPE headers exactly once.
        for family in [
            "knn_request_duration_us",
            "knn_request_duration_us_max",
            "knn_phase_duration_us",
            "knn_router_probe_round_us",
            "knn_router_dispatches_total",
            "knn_server_admission_queue_depth",
            "knn_slo_burn",
            "knn_slo_violations_total",
        ] {
            assert_eq!(text.matches(&format!("# HELP {family} ")).count(), 1, "{family}");
            assert_eq!(text.matches(&format!("# TYPE {family} ")).count(), 1, "{family}");
        }
        assert!(text.contains("# TYPE knn_router_dispatches_total counter"));
        assert!(text.contains("# TYPE knn_server_admission_queue_depth gauge"));
        // The 42µs observation broke the 1µs p50 objective.
        assert!(text.contains("knn_slo_violations_total{tenant=\"demo\"} 1"));
        assert!(text.contains("knn_slo_burn{tenant=\"demo\"} 2.0000"));
    }

    #[test]
    fn snapshot_diff_is_the_window_between_observations() {
        let h = Histogram::new();
        for us in [10u64, 20, 3000] {
            h.record(us);
        }
        let first = h.snapshot();
        for us in [40u64, 500_000] {
            h.record(us);
        }
        let window = h.snapshot().diff(&first);
        assert_eq!(window.count, 2);
        assert_eq!(window.sum_us, 500_040);
        assert_eq!(window.buckets.iter().sum::<u64>(), 2);
        assert_eq!(window.max_us, 500_000, "cumulative max is the window's upper bound");
        assert_eq!(HistogramSnapshot::default().diff(&first).count, 0, "diff saturates");
        // count_over: buckets above the threshold, straddlers included.
        assert_eq!(first.count_over(4095), 0);
        assert_eq!(first.count_over(4000), 1, "3000's bucket [2048,4095] straddles 4000");
        assert_eq!(first.count_over(100), 1);
        assert_eq!(first.count_over(15), 2, "the [16,31] bucket straddling 15 counts as over");
        assert_eq!(first.count_over(0), 3);
    }
}
