//! Black-box capture and the shadow-audit sampler.
//!
//! The serving invariant — every response line is a pure function of
//! `(dataset at the query's epoch, config, request)` — means a raw request
//! line plus the epoch it ran at *is* a complete reproduction recipe. The
//! [`CaptureRing`] exploits that: an always-on bounded ring of the most
//! recent served `(request line, response line)` pairs, tagged with
//! `(tenant, epoch, conn, seq, trace)`. The `repro` verb turns ring
//! slices into self-contained bundles; `slow`/`trace` output carries
//! `(conn, seq)` references into it.
//!
//! Like the flight recorder, the ring is **not** gated on the registry's
//! `enabled` flag — forensics must work on a default-configured process.
//! Unlike the recorder it captures every query, so the per-query cost is
//! one mutex push of strings the server already materialized (the raw
//! input line and the response line it is about to write). The ring only
//! ever sits on the server's serving path, never on the engine's batch
//! path, so the `telemetry_overhead` bench budget is unaffected.
//!
//! The [`AuditSampler`] is the warm-path half of the continuous shadow
//! audit: a thread-local 1-in-N election (same discipline as
//! [`Recorder::sample`](crate::Recorder::sample)) plus a bounded
//! drop-on-full job queue. The expensive half — re-executing the query
//! against an engine snapshot and byte-diffing — runs on a background
//! auditor thread that drains this queue, so serving threads pay only the
//! election and, 1-in-N, a clone-and-enqueue.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// How many served queries the capture ring retains (FIFO eviction).
///
/// Sized like the recorder's forced ring: enough that the worst-32 slow
/// ring and any recent anomaly span still resolve to a live capture under
/// sustained traffic, small enough (~a few hundred KiB of typical request
/// lines) to leave on unconditionally.
pub const CAPTURE_CAP: usize = 1024;

/// Default shadow-audit election rate: one served query in this many is
/// re-executed. 0 disables the audit entirely.
pub const AUDIT_INTERVAL: u64 = 64;

/// Bound on queued-but-not-yet-audited jobs. The queue drops (and counts)
/// on overflow — the audit is a sampler, never backpressure.
pub const AUDIT_QUEUE_CAP: usize = 256;

/// One served query the ring retains: the raw request line exactly as it
/// arrived, the response line exactly as served, and where/when it ran.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CaptureEntry {
    /// Tenant the query ran against.
    pub tenant: String,
    /// Dataset epoch the query answered at — together with the tenant's
    /// seed + mutation ops this pins the exact dataset state.
    pub epoch: u64,
    /// Server connection number (process-unique, monotonically assigned).
    pub conn: u64,
    /// The query's sequence number within its connection (its line number,
    /// which is also the server's default request id).
    pub seq: u64,
    /// Flight-recorder trace id, if the query was traced.
    pub trace: Option<String>,
    /// The raw request line, byte-exact, without the trailing newline.
    pub request: String,
    /// The served response line, byte-exact, without the trailing newline.
    pub response: String,
}

/// Always-on bounded FIFO of the most recent [`CaptureEntry`]s.
#[derive(Debug)]
pub struct CaptureRing {
    cap: usize,
    ring: Mutex<VecDeque<CaptureEntry>>,
}

impl Default for CaptureRing {
    fn default() -> CaptureRing {
        CaptureRing::new()
    }
}

impl CaptureRing {
    /// An empty ring at the default [`CAPTURE_CAP`].
    pub fn new() -> CaptureRing {
        CaptureRing::with_capacity(CAPTURE_CAP)
    }

    /// An empty ring bounded at `cap` entries (tests size this down).
    pub fn with_capacity(cap: usize) -> CaptureRing {
        CaptureRing { cap: cap.max(1), ring: Mutex::new(VecDeque::new()) }
    }

    /// The ring's bound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Retained entry count (≤ [`capacity`](CaptureRing::capacity)).
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.ring.lock().unwrap().is_empty()
    }

    /// Records one served query, evicting the oldest entry at capacity.
    pub fn push(&self, entry: CaptureEntry) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() >= self.cap {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// Drops every entry for `tenant`. Called when a tenant is reloaded or
    /// unloaded: entries recorded against the old seed are no longer
    /// reproducible from the new one, so retaining them would let `repro`
    /// emit bundles that lie.
    pub fn purge_tenant(&self, tenant: &str) {
        self.ring.lock().unwrap().retain(|e| e.tenant != tenant);
    }

    /// Every retained entry with trace id `trace`, oldest first.
    pub fn by_trace(&self, trace: &str) -> Vec<CaptureEntry> {
        self.ring
            .lock()
            .unwrap()
            .iter()
            .filter(|e| e.trace.as_deref() == Some(trace))
            .cloned()
            .collect()
    }

    /// The entry captured as `(conn, seq)`, if still retained.
    pub fn by_ref(&self, conn: u64, seq: u64) -> Option<CaptureEntry> {
        self.ring.lock().unwrap().iter().find(|e| e.conn == conn && e.seq == seq).cloned()
    }

    /// Every retained entry for `tenant`, oldest first.
    pub fn for_tenant(&self, tenant: &str) -> Vec<CaptureEntry> {
        self.ring.lock().unwrap().iter().filter(|e| e.tenant == tenant).cloned().collect()
    }

    /// Every retained entry, oldest first.
    pub fn snapshot(&self) -> Vec<CaptureEntry> {
        self.ring.lock().unwrap().iter().cloned().collect()
    }
}

/// One query elected for shadow re-execution. Carries raw wire strings —
/// the auditor re-parses the request with `id` as the default id (the id
/// the server resolved at serving time), so the job is self-describing
/// across the queue boundary.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AuditJob {
    /// Tenant the query ran against.
    pub tenant: String,
    /// Dataset epoch the served answer was computed at.
    pub epoch: u64,
    /// The request id the server resolved (member id or line number).
    pub id: String,
    /// The raw request line, byte-exact.
    pub request: String,
    /// The served response line the re-execution must match, byte-exact.
    pub response: String,
    /// Capture reference for the divergence span / exported bundle.
    pub conn: u64,
    /// See `conn`.
    pub seq: u64,
    /// Flight-recorder trace id, if any.
    pub trace: Option<String>,
}

/// Election + bounded hand-off queue for the continuous shadow audit (see
/// module docs). Held inside [`Telemetry`](crate::Telemetry); the server
/// spawns the auditor thread that drains it.
#[derive(Debug)]
pub struct AuditSampler {
    /// 1-in-N election rate; 0 disables.
    rate: AtomicU64,
    queue: Mutex<VecDeque<AuditJob>>,
    wake: Condvar,
    closed: AtomicBool,
    /// Jobs dropped because the queue was full.
    dropped: AtomicU64,
}

impl Default for AuditSampler {
    fn default() -> AuditSampler {
        AuditSampler::new()
    }
}

impl AuditSampler {
    /// A sampler at the default [`AUDIT_INTERVAL`] with an empty queue.
    pub fn new() -> AuditSampler {
        AuditSampler {
            rate: AtomicU64::new(AUDIT_INTERVAL),
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            closed: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
        }
    }

    /// The current 1-in-N election rate (0 = audit off).
    pub fn rate(&self) -> u64 {
        self.rate.load(Ordering::Relaxed)
    }

    /// Sets the election rate; 0 turns the audit off.
    pub fn set_rate(&self, n: u64) {
        self.rate.store(n, Ordering::Relaxed);
    }

    /// Should this served query be shadow-audited? One relaxed load plus a
    /// thread-local counter bump — the entire per-query warm-path cost for
    /// the unelected majority. The first call on each thread fires (so
    /// short test runs audit something), then one in `rate`.
    pub fn elect(&self) -> bool {
        let rate = self.rate.load(Ordering::Relaxed);
        if rate == 0 {
            return false;
        }
        thread_local! {
            static TICK: Cell<u64> = const { Cell::new(0) };
        }
        TICK.with(|t| {
            let v = t.get();
            t.set(v.wrapping_add(1));
            v % rate == 0
        })
    }

    /// Enqueues an elected job. Returns `false` (and counts a drop) when
    /// the queue is at [`AUDIT_QUEUE_CAP`] — serving never blocks on the
    /// auditor. Deliberately does NOT wake a parked waiter: a futex wake
    /// is a syscall on the serving thread, and the audit is latency-
    /// insensitive — the auditor polls with a short timed wait and picks
    /// the job up within one interval. Only [`close`](AuditSampler::close)
    /// notifies.
    pub fn offer(&self, job: AuditJob) -> bool {
        let mut q = self.queue.lock().unwrap();
        if q.len() >= AUDIT_QUEUE_CAP {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        q.push_back(job);
        true
    }

    /// Blocks up to `timeout` for the next job. `None` on timeout or after
    /// [`close`](AuditSampler::close) — the auditor thread exits when it
    /// sees `None` and [`is_closed`](AuditSampler::is_closed). Callers poll
    /// with a short `timeout` ([`offer`](AuditSampler::offer) never wakes
    /// them); jobs wait at most one poll interval.
    pub fn next(&self, timeout: Duration) -> Option<AuditJob> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            if self.closed.load(Ordering::Relaxed) {
                return None;
            }
            let (guard, res) = self.wake.wait_timeout(q, timeout).unwrap();
            q = guard;
            if res.timed_out() {
                return q.pop_front();
            }
        }
    }

    /// Wakes and releases any blocked auditor; subsequent `next` calls
    /// drain the queue then return `None`.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Relaxed);
        self.wake.notify_all();
    }

    /// Has [`close`](AuditSampler::close) been called?
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Relaxed)
    }

    /// Jobs dropped on queue overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Queued-but-undrained job count.
    pub fn queued(&self) -> usize {
        self.queue.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn entry(tenant: &str, conn: u64, seq: u64) -> CaptureEntry {
        CaptureEntry {
            tenant: tenant.into(),
            epoch: seq,
            conn,
            seq,
            trace: seq.is_multiple_of(2).then(|| format!("t-{conn}-{seq}")),
            request: format!("{{\"point\":[{seq}]}}"),
            response: format!("{{\"id\":\"{seq}\",\"ok\":true}}"),
        }
    }

    #[test]
    fn ring_is_fifo_bounded() {
        let ring = CaptureRing::with_capacity(8);
        for seq in 0..20 {
            ring.push(entry("a", 1, seq));
        }
        assert_eq!(ring.len(), 8);
        let snap = ring.snapshot();
        assert_eq!(snap.first().unwrap().seq, 12, "oldest evicted");
        assert_eq!(snap.last().unwrap().seq, 19);
    }

    #[test]
    fn queries_filter_by_trace_ref_and_tenant() {
        let ring = CaptureRing::new();
        ring.push(entry("a", 1, 1));
        ring.push(entry("b", 1, 2));
        ring.push(entry("a", 2, 2));
        assert_eq!(ring.by_trace("t-1-2").len(), 1);
        assert_eq!(ring.by_trace("t-1-2")[0].tenant, "b");
        assert!(ring.by_trace("missing").is_empty());
        assert_eq!(ring.by_ref(2, 2).unwrap().tenant, "a");
        assert!(ring.by_ref(9, 9).is_none());
        assert_eq!(ring.for_tenant("a").len(), 2);
        ring.purge_tenant("a");
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.snapshot()[0].tenant, "b");
    }

    #[test]
    fn ring_stays_bounded_under_concurrent_pushes() {
        let ring = Arc::new(CaptureRing::with_capacity(16));
        let handles: Vec<_> = (0..4)
            .map(|conn| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for seq in 0..200 {
                        ring.push(entry("t", conn, seq));
                        assert!(ring.len() <= 16);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ring.len(), 16);
    }

    #[test]
    fn sampler_elects_first_then_one_in_n() {
        let s = AuditSampler::new();
        let s = Arc::new(s);
        let sc = s.clone();
        let fired: Vec<bool> =
            std::thread::spawn(move || (0..(AUDIT_INTERVAL * 2 + 1)).map(|_| sc.elect()).collect())
                .join()
                .unwrap();
        assert!(fired[0], "first call fires");
        assert_eq!(fired.iter().filter(|&&f| f).count(), 3);
        s.set_rate(0);
        assert!(!s.elect(), "rate 0 disables");
    }

    #[test]
    fn queue_bounds_drops_and_closes() {
        let s = AuditSampler::new();
        for i in 0..(AUDIT_QUEUE_CAP + 5) {
            s.offer(AuditJob { seq: i as u64, ..AuditJob::default() });
        }
        assert_eq!(s.queued(), AUDIT_QUEUE_CAP);
        assert_eq!(s.dropped(), 5);
        assert_eq!(s.next(Duration::from_millis(1)).unwrap().seq, 0, "FIFO");
        s.close();
        // Close drains the queue first, then yields None without blocking.
        let mut drained = 1;
        while s.next(Duration::from_millis(1)).is_some() {
            drained += 1;
        }
        assert_eq!(drained, AUDIT_QUEUE_CAP);
        assert!(s.is_closed());
    }

    #[test]
    fn close_wakes_a_blocked_waiter() {
        let s = Arc::new(AuditSampler::new());
        let sc = s.clone();
        let h = std::thread::spawn(move || sc.next(Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        s.close();
        assert!(h.join().unwrap().is_none());
    }
}
