//! Chrome trace-event export: render the flight recorder's contents as a
//! JSON array loadable by `chrome://tracing` / Perfetto.
//!
//! Each span becomes one complete event (`"ph":"X"`): `ts`/`dur` in µs on
//! the recorder's timebase, `pid` the caller's process tag (the router
//! rewrites it per backend when merging a cluster dump), and `tid` a
//! synthetic lane — the root span's seq — so every query's phases share
//! one row in the viewer instead of interleaving.

use crate::span::SpanEvent;

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders span events as a Chrome trace-event JSON array. Deterministic
/// for a fixed event slice; `pid` tags every event (one process per dump —
/// the router's merge rewrites it to the backend id).
pub fn chrome_trace_json(events: &[SpanEvent], pid: u64) -> String {
    let mut out = String::from("[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let tid = if ev.parent == 0 { ev.seq } else { ev.parent };
        out.push_str(&format!(
            r#"{{"name":"{}","cat":"knn","ph":"X","ts":{},"dur":{},"pid":{},"tid":{},"args":{{"trace":"{}","detail":"{}","tenant":"{}","epoch":{},"anomaly":"{}"}}}}"#,
            escape_json(ev.name),
            ev.start_us,
            ev.dur_us,
            pid,
            tid,
            escape_json(&ev.trace),
            escape_json(&ev.detail),
            escape_json(&ev.tenant),
            ev.epoch,
            escape_json(ev.anomaly),
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_a_parseable_array_with_lanes_and_escapes() {
        let root = SpanEvent {
            trace: "t\"1".into(),
            seq: 7,
            parent: 0,
            name: "query",
            detail: "hamming-index".into(),
            tenant: "demo".into(),
            epoch: 3,
            start_us: 100,
            dur_us: 40,
            anomaly: "",
        };
        let child = SpanEvent {
            parent: 7,
            seq: 8,
            name: "solve",
            start_us: 110,
            dur_us: 20,
            ..root.clone()
        };
        let json = chrome_trace_json(&[root, child], 5);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains(r#""pid":5"#));
        // Both events share the root's lane.
        assert_eq!(json.matches(r#""tid":7"#).count(), 2);
        assert!(json.contains(r#"t\"1"#), "quote in trace id escaped: {json}");
        let parsed = knn_engine_json_smoke(&json);
        assert!(parsed, "chrome dump must be a valid JSON array");
        assert_eq!(chrome_trace_json(&[], 0), "[]");
    }

    /// A local structural check (brace/bracket/quote balance) — the full
    /// parse-validation lives in the server tests, which have a JSON
    /// parser in scope.
    fn knn_engine_json_smoke(s: &str) -> bool {
        let mut depth = 0i64;
        let mut in_str = false;
        let mut esc = false;
        for c in s.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '[' | '{' => depth += 1,
                ']' | '}' => depth -= 1,
                _ => {}
            }
            if depth < 0 {
                return false;
            }
        }
        depth == 0 && !in_str
    }
}
