//! The flight recorder: an always-on, bounded, lock-cheap ring of
//! [`SpanEvent`]s per process.
//!
//! Two rings, two retention policies:
//!
//! * **forced** — anomalies (slow-floor breach, error responses, budget
//!   demotions, guard-revalidation failures, failovers) and explicitly
//!   traced queries. FIFO-evicted at a fixed cap: the most recent ~2k
//!   forensic events are always retrievable by `trace <id>` / `dump`.
//! * **sampled** — a uniform reservoir (Algorithm R) over the 1-in-N
//!   queries the sampler elects, so the dump shows *representative*
//!   traffic next to the anomalies, not just whatever happened last.
//!
//! Cost discipline: the recorder is **always on** (no enable flag), so the
//! unsampled hot path must pay almost nothing — one thread-local counter
//! bump per query ([`Recorder::sample`]), no clock read, no lock. Only
//! elected queries read the clock (once, at completion) and take a mutex
//! to push; at 1-in-[`SAMPLE_INTERVAL`] the amortized cost sits far inside
//! the telemetry budget the `telemetry_overhead` bench enforces.

use crate::span::SpanEvent;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Capacity of the forced (anomaly + traced) ring; FIFO eviction.
pub const FORCED_CAP: usize = 2048;

/// Capacity of the sampled reservoir.
pub const RESERVOIR_CAP: usize = 4096;

/// The sampler elects one query in this many per thread (the first always
/// fires, so short-lived test and bench runs still capture).
pub const SAMPLE_INTERVAL: u32 = 64;

/// Uniform reservoir over sampled span events (Vitter's Algorithm R).
/// Randomness is a private xorshift — recorder contents are out-of-band
/// diagnostics, never response bytes, so being pseudo-random (and seeded
/// const, hence deterministic per process) is a feature.
#[derive(Debug)]
struct Reservoir {
    events: Vec<SpanEvent>,
    seen: u64,
    rng: u64,
}

impl Reservoir {
    fn offer(&mut self, ev: SpanEvent) {
        self.seen += 1;
        if self.events.len() < RESERVOIR_CAP {
            self.events.push(ev);
            return;
        }
        // xorshift64: fine for reservoir slot choice, never user-visible.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let slot = self.rng % self.seen;
        if (slot as usize) < RESERVOIR_CAP {
            self.events[slot as usize] = ev;
        }
    }
}

/// The per-process flight recorder (see module docs). Held inside
/// [`Telemetry`](crate::Telemetry), one per process.
#[derive(Debug)]
pub struct Recorder {
    t0: Instant,
    seq: AtomicU64,
    forced: Mutex<VecDeque<SpanEvent>>,
    sampled: Mutex<Reservoir>,
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new()
    }
}

impl Recorder {
    /// An empty recorder; its clock starts now.
    pub fn new() -> Recorder {
        Recorder {
            t0: Instant::now(),
            seq: AtomicU64::new(1),
            forced: Mutex::new(VecDeque::new()),
            sampled: Mutex::new(Reservoir {
                events: Vec::new(),
                seen: 0,
                rng: 0x9E37_79B9_7F4A_7C15,
            }),
        }
    }

    /// Microseconds since the recorder started (the span timebase).
    pub fn now_us(&self) -> u64 {
        self.t0.elapsed().as_micros() as u64
    }

    /// The next process-unique span sequence number (never 0).
    pub fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Should this (untraced, unremarkable) query be captured? One
    /// thread-local counter bump — the entire per-query cost of the
    /// recorder on the unelected hot path. The first call on each thread
    /// fires, so short runs capture something.
    pub fn sample(&self) -> bool {
        thread_local! {
            static TICK: Cell<u32> = const { Cell::new(0) };
        }
        TICK.with(|t| {
            let v = t.get();
            t.set(v.wrapping_add(1));
            v % SAMPLE_INTERVAL == 0
        })
    }

    /// Records one span event. `forced` routes it to the FIFO anomaly ring
    /// (traced queries and anomalies — must survive until an operator asks),
    /// otherwise to the sampled reservoir.
    pub fn push(&self, ev: SpanEvent, forced: bool) {
        if forced {
            let mut ring = self.forced.lock().unwrap();
            if ring.len() >= FORCED_CAP {
                ring.pop_front();
            }
            ring.push_back(ev);
        } else {
            self.sampled.lock().unwrap().offer(ev);
        }
    }

    /// Every retained span of one trace, over both rings, ordered by
    /// `(start_us, seq)` so parents precede their children.
    pub fn spans_for(&self, trace: &str) -> Vec<SpanEvent> {
        let mut out: Vec<SpanEvent> = Vec::new();
        out.extend(self.forced.lock().unwrap().iter().filter(|e| e.trace == trace).cloned());
        out.extend(
            self.sampled.lock().unwrap().events.iter().filter(|e| e.trace == trace).cloned(),
        );
        out.sort_by_key(|e| (e.start_us, e.seq));
        out
    }

    /// Every retained span (forced first is *not* guaranteed — ordered by
    /// `(start_us, seq)` like [`spans_for`](Recorder::spans_for)).
    pub fn all(&self) -> Vec<SpanEvent> {
        let mut out: Vec<SpanEvent> = self.forced.lock().unwrap().iter().cloned().collect();
        out.extend(self.sampled.lock().unwrap().events.iter().cloned());
        out.sort_by_key(|e| (e.start_us, e.seq));
        out
    }

    /// Retained event count across both rings.
    pub fn len(&self) -> usize {
        self.forced.lock().unwrap().len() + self.sampled.lock().unwrap().events.len()
    }

    /// Is the recorder empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace: &str, seq: u64, start_us: u64) -> SpanEvent {
        SpanEvent { trace: trace.into(), seq, start_us, name: "query", ..SpanEvent::default() }
    }

    #[test]
    fn forced_ring_is_fifo_bounded() {
        let r = Recorder::new();
        for i in 0..(FORCED_CAP as u64 + 10) {
            r.push(ev("t", i + 1, i), true);
        }
        assert_eq!(r.len(), FORCED_CAP);
        let spans = r.spans_for("t");
        // The 10 oldest were evicted.
        assert_eq!(spans.first().unwrap().seq, 11);
        assert_eq!(spans.last().unwrap().seq, FORCED_CAP as u64 + 10);
    }

    #[test]
    fn reservoir_is_bounded_and_keeps_a_sample() {
        let r = Recorder::new();
        for i in 0..(RESERVOIR_CAP as u64 * 3) {
            r.push(ev("", i + 1, i), false);
        }
        assert_eq!(r.len(), RESERVOIR_CAP);
        assert!(!r.all().is_empty());
    }

    #[test]
    fn spans_for_filters_and_orders() {
        let r = Recorder::new();
        r.push(ev("b", 3, 50), true);
        r.push(ev("a", 1, 10), true);
        r.push(ev("a", 2, 5), false);
        let spans = r.spans_for("a");
        assert_eq!(spans.len(), 2);
        assert_eq!((spans[0].seq, spans[1].seq), (2, 1), "ordered by start_us");
        assert!(r.spans_for("missing").is_empty());
    }

    #[test]
    fn sampler_fires_first_then_one_in_n() {
        let r = Recorder::new();
        // Run on a fresh thread so this test owns the thread-local tick.
        let fired: Vec<bool> = std::thread::spawn(move || {
            (0..(SAMPLE_INTERVAL * 2 + 1)).map(|_| r.sample()).collect()
        })
        .join()
        .unwrap();
        assert!(fired[0], "first call fires");
        assert_eq!(fired.iter().filter(|&&f| f).count(), 3);
        assert!(fired[SAMPLE_INTERVAL as usize]);
    }

    #[test]
    fn seq_is_unique_and_nonzero() {
        let r = Recorder::new();
        let a = r.next_seq();
        let b = r.next_seq();
        assert!(a != 0 && b != 0 && a != b);
    }
}
