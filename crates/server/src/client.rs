//! A small blocking client for the server's JSON-lines protocol — the
//! library behind `xknn client`, the integration tests, and the
//! `server_throughput` bench.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One TCP connection speaking the [`crate::proto`] protocol.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Client::from_stream(stream)
    }

    /// Wraps an already-connected stream.
    fn from_stream(stream: TcpStream) -> std::io::Result<Client> {
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { reader, writer: stream })
    }

    /// [`connect_stream_retry`], wrapped as a [`Client`].
    pub fn connect_retry<A: ToSocketAddrs>(
        addr: A,
        attempts: u32,
        backoff: std::time::Duration,
    ) -> std::io::Result<Client> {
        Client::from_stream(connect_stream_retry(addr, attempts, backoff)?)
    }

    /// Sends one request line (the newline is added here).
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Receives one response line; `None` when the server closed the
    /// connection.
    pub fn recv(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(Some(line))
    }

    /// One request, one response.
    pub fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        self.send(line)?;
        self.recv()?.ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "server closed the connection")
        })
    }

    /// Pipelines a whole JSON-lines stream: all requests are written from a
    /// background thread while responses stream back, so large batches cannot
    /// deadlock on full TCP buffers. Returns one response per non-blank
    /// request line, in request order.
    pub fn run_stream(&mut self, input: &str) -> std::io::Result<Vec<String>> {
        // ASCII trim to mirror the server's blank-line rule exactly: a line
        // of Unicode-only whitespace (NBSP, vertical tab) *does* get a
        // response, and miscounting it would desynchronize the stream.
        let expected = input.lines().filter(|l| !l.as_bytes().trim_ascii().is_empty()).count();
        let mut writer = self.writer.try_clone()?;
        let payload = normalized(input);
        let send = std::thread::spawn(move || writer.write_all(payload.as_bytes()));
        let mut out = Vec::with_capacity(expected);
        while out.len() < expected {
            match self.recv()? {
                Some(line) => out.push(line),
                None => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        format!("server closed after {} of {expected} responses", out.len()),
                    ))
                }
            }
        }
        send.join()
            .map_err(|_| std::io::Error::other("send thread panicked"))?
            .map_err(|e| std::io::Error::other(format!("send failed: {e}")))?;
        Ok(out)
    }
}

/// Dials with bounded retry and exponential backoff: up to `attempts`
/// tries, sleeping `backoff` (doubling, capped at 500 ms) between them,
/// `TCP_NODELAY` set on success. Closes the race where a freshly spawned
/// server has announced its address but the listener loses to the client in
/// the scheduler — the window `xknn client` and every cluster-router dial
/// (control and data channels both) would otherwise hit on backend start.
pub fn connect_stream_retry<A: ToSocketAddrs>(
    addr: A,
    attempts: u32,
    mut backoff: std::time::Duration,
) -> std::io::Result<TcpStream> {
    let mut last = None;
    for attempt in 0..attempts.max(1) {
        match TcpStream::connect(&addr) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
        if attempt + 1 < attempts.max(1) {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(std::time::Duration::from_millis(500));
        }
    }
    Err(last.unwrap_or_else(|| std::io::Error::other("no connection attempts made")))
}

/// `input` with every line newline-terminated (so a missing trailing newline
/// cannot leave the last request sitting unread in the server's buffer).
fn normalized(input: &str) -> String {
    let mut s = String::with_capacity(input.len() + 1);
    for line in input.lines() {
        s.push_str(line);
        s.push('\n');
    }
    s
}
