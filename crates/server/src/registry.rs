//! The dataset registry: named tenants, each owning one
//! [`ExplanationEngine`] behind an `Arc`.
//!
//! Tenants are created by the `load` verb (from a file path on the server or
//! inline text), dropped by `unload`, and enumerated by `list`. A query names
//! its tenant; the engine — and with it the explanation LRU, the single-flight
//! table, and the lazily-built artifacts — is shared by every connection
//! querying that tenant, so one client's cold queries warm the cache for all.
//! Unloading only drops the registry's reference: queries already holding the
//! `Arc` finish against the old engine.

use crate::admission::Admission;
use knn_engine::{textfmt, EngineConfig, ExplanationEngine, Request, Response};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One named dataset and its engine, plus the per-tenant queue counters the
/// `stats` verb reports.
pub struct Tenant {
    /// Registry name.
    pub name: String,
    /// The shared engine (lazily builds its artifacts on first use).
    pub engine: Arc<ExplanationEngine>,
    /// Queries completed against this tenant.
    requests: AtomicU64,
    /// Completed queries whose response was an error.
    errors: AtomicU64,
    /// Queries currently waiting in the admission queue.
    queued: AtomicU64,
    /// Queries currently executing.
    active: AtomicU64,
}

/// A point-in-time snapshot of one tenant's counters.
#[derive(Clone, Debug)]
pub struct TenantStats {
    /// Registry name.
    pub name: String,
    /// Dataset size.
    pub points: usize,
    /// Dataset dimension.
    pub dim: usize,
    /// Queries completed.
    pub requests: u64,
    /// Error responses among them.
    pub errors: u64,
    /// Currently waiting for admission.
    pub queued: u64,
    /// Currently executing.
    pub active: u64,
    /// The engine's cache / single-flight counters.
    pub engine: knn_engine::EngineStats,
}

impl Tenant {
    /// Runs one request: waits for a global admission slot (FIFO), executes,
    /// and maintains the tenant's queue counters. The response bytes are
    /// independent of admission order per the engine's determinism contract.
    pub fn run(&self, admission: &Admission, req: &Request) -> Response {
        self.queued.fetch_add(1, Ordering::Relaxed);
        let slot = admission.acquire();
        self.queued.fetch_sub(1, Ordering::Relaxed);
        self.active.fetch_add(1, Ordering::Relaxed);
        let resp = self.engine.run(req);
        self.active.fetch_sub(1, Ordering::Relaxed);
        drop(slot);
        self.requests.fetch_add(1, Ordering::Relaxed);
        if resp.result.is_err() {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        resp
    }

    /// This tenant's counters.
    pub fn stats(&self) -> TenantStats {
        TenantStats {
            name: self.name.clone(),
            points: self.engine.data().continuous.len(),
            dim: self.engine.data().continuous.dim(),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            engine: self.engine.stats(),
        }
    }
}

/// The name → tenant map. `BTreeMap` so every listing is sorted — response
/// bytes must not depend on hash order.
pub struct Registry {
    engine_config: EngineConfig,
    tenants: Mutex<BTreeMap<String, Arc<Tenant>>>,
}

impl Registry {
    /// An empty registry; every loaded tenant gets an engine with
    /// `engine_config`.
    pub fn new(engine_config: EngineConfig) -> Registry {
        Registry { engine_config, tenants: Mutex::new(BTreeMap::new()) }
    }

    /// Parses `text` (the `+/-`-labeled format of [`textfmt`]) and registers
    /// it under `name`. Refuses to clobber an existing tenant — `unload`
    /// first.
    pub fn load(&self, name: &str, text: &str) -> Result<Arc<Tenant>, String> {
        if name.is_empty() {
            return Err("dataset name must not be empty".into());
        }
        let data = textfmt::parse_dataset(text)?;
        let mut tenants = self.tenants.lock().unwrap();
        if tenants.contains_key(name) {
            return Err(format!("dataset `{name}` is already loaded (unload it first)"));
        }
        let tenant = Arc::new(Tenant {
            name: name.to_string(),
            engine: Arc::new(ExplanationEngine::new(data, self.engine_config.clone())),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            active: AtomicU64::new(0),
        });
        tenants.insert(name.to_string(), tenant.clone());
        Ok(tenant)
    }

    /// Drops the tenant named `name`. In-flight queries holding its `Arc`
    /// complete against the old engine.
    pub fn unload(&self, name: &str) -> Result<(), String> {
        match self.tenants.lock().unwrap().remove(name) {
            Some(_) => Ok(()),
            None => Err(format!("no dataset named `{name}`")),
        }
    }

    /// The tenant named `name`, if loaded.
    pub fn get(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants.lock().unwrap().get(name).cloned()
    }

    /// All tenants, sorted by name.
    pub fn list(&self) -> Vec<Arc<Tenant>> {
        self.tenants.lock().unwrap().values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOOL: &str = "+ 1 1 1\n+ 1 1 0\n- 0 0 0\n- 0 0 1\n";

    #[test]
    fn load_query_unload_lifecycle() {
        let r = Registry::new(EngineConfig::default());
        let t = r.load("toy", BOOL).unwrap();
        assert_eq!(t.stats().points, 4);
        let clobber = r.load("toy", BOOL).map(|_| ()).unwrap_err();
        assert!(clobber.contains("already loaded"), "{clobber}");
        assert_eq!(r.list().len(), 1);

        let adm = Admission::new(2);
        let req = Request::from_json_line(
            r#"{"cmd":"classify","metric":"hamming","point":[1,1,1]}"#,
            "0",
        )
        .unwrap();
        let resp = r.get("toy").unwrap().run(&adm, &req);
        assert!(resp.result.is_ok());
        let s = r.get("toy").unwrap().stats();
        assert_eq!((s.requests, s.errors, s.queued, s.active), (1, 0, 0, 0));

        r.unload("toy").unwrap();
        assert!(r.get("toy").is_none());
        assert!(r.unload("toy").is_err());
    }

    #[test]
    fn bad_text_is_rejected() {
        let r = Registry::new(EngineConfig::default());
        assert!(r.load("x", "not a dataset").is_err());
        assert!(r.load("", BOOL).is_err());
    }
}
