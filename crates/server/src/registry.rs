//! The dataset registry: named tenants, each owning one
//! [`ExplanationEngine`] behind an `Arc`.
//!
//! Tenants are created by the `load` verb (from a file path on the server or
//! inline text), dropped by `unload`, and enumerated by `list`. A query names
//! its tenant; the engine — and with it the explanation LRU, the single-flight
//! table, and the lazily-built artifacts — is shared by every connection
//! querying that tenant, so one client's cold queries warm the cache for all.
//!
//! Loading an already-loaded name **atomically replaces** the tenant: the
//! replacement (a new engine at version 0, fresh caches and counters) is
//! fully built before the registry pointer swings, so every query observes
//! either the complete old tenant or the complete new one — never a partial
//! state. Unloading (and replacing) only drops the registry's reference:
//! queries already holding the `Arc` finish against the old engine.
//!
//! Mutations (`insert` / `remove` verbs) go through the tenant's shared
//! engine ([`ExplanationEngine::apply`]) and are visible to every
//! connection at once; `load` with a `replay` log applies the mutations
//! *before* the swap, so a replica restored by the cluster reconciler is
//! never observable at an intermediate version.

use crate::admission::Admission;
use knn_engine::{textfmt, EngineConfig, ExplanationEngine, Mutation, Request, Response};
use knn_telemetry::{SlowQuery, SpanCtx, SpanEvent, Telemetry};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One named dataset and its engine, plus the per-tenant queue counters the
/// `stats` verb reports.
pub struct Tenant {
    /// Registry name.
    pub name: String,
    /// The shared engine (lazily builds its artifacts on first use).
    pub engine: Arc<ExplanationEngine>,
    /// Queries completed against this tenant.
    requests: AtomicU64,
    /// Completed queries whose response was an error.
    errors: AtomicU64,
    /// Queries currently waiting in the admission queue.
    queued: AtomicU64,
    /// Queries currently executing.
    active: AtomicU64,
}

/// A point-in-time snapshot of one tenant's counters.
#[derive(Clone, Debug)]
pub struct TenantStats {
    /// Registry name.
    pub name: String,
    /// Dataset size.
    pub points: usize,
    /// Positive points.
    pub points_pos: usize,
    /// Negative points.
    pub points_neg: usize,
    /// Dataset dimension.
    pub dim: usize,
    /// Queries completed.
    pub requests: u64,
    /// Error responses among them.
    pub errors: u64,
    /// Currently waiting for admission.
    pub queued: u64,
    /// Currently executing.
    pub active: u64,
    /// The engine's cache / single-flight counters.
    pub engine: knn_engine::EngineStats,
    /// The engine's per-route work counters (sorted by route).
    pub work: Vec<knn_engine::RouteWorkSnapshot>,
}

impl Tenant {
    /// Runs one request: waits for a global admission slot (FIFO), executes,
    /// and maintains the tenant's queue counters. The response bytes are
    /// independent of admission order per the engine's determinism contract.
    ///
    /// When the process telemetry is enabled, the end-to-end wall time goes
    /// into the per-(tenant, route) latency histogram, the admission wait
    /// into the phase histograms, and the combined trace is offered to the
    /// slow-query ring — all out-of-band, never touching response bytes.
    ///
    /// `trace_id` is the client's `"trace"` member (or the router's minted
    /// id): when present, the query is **captured** into the flight
    /// recorder's forced ring under that id — root `query` span, its
    /// `admission` child, and the engine's phase children. Untraced queries
    /// are still captured 1-in-N by the recorder's sampler, and anomalies
    /// (errors, slow-floor breaches, demotions, guard failures) force the
    /// capture into the anomaly ring. All of it stays out-of-band: the
    /// response bytes never depend on `trace_id` or the recorder.
    pub fn run(&self, admission: &Admission, req: &Request, trace_id: Option<&str>) -> Response {
        let telemetry = self.engine.telemetry().clone();
        let recorder = telemetry.recorder();
        let traced = trace_id.is_some();
        let capture = traced || recorder.sample();
        let enabled = telemetry.is_enabled();
        let started = (enabled || capture).then(Instant::now);
        self.queued.fetch_add(1, Ordering::Relaxed);
        let slot = admission.acquire();
        self.queued.fetch_sub(1, Ordering::Relaxed);
        let admission_us = started.map(|t0| t0.elapsed().as_micros() as u64);
        self.active.fetch_add(1, Ordering::Relaxed);
        let ctx = capture.then(|| SpanCtx {
            trace: trace_id.unwrap_or("").to_string(),
            parent: recorder.next_seq(),
        });
        let (resp, qt) = self.engine.run_traced(req, ctx.as_ref());
        self.active.fetch_sub(1, Ordering::Relaxed);
        drop(slot);
        self.requests.fetch_add(1, Ordering::Relaxed);
        let err = resp.result.is_err();
        if err {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let (Some(t0), Some(admission_us)) = (started, admission_us) else { return resp };
        let total_us = t0.elapsed().as_micros() as u64;
        let mut slow = false;
        if enabled {
            telemetry.record_phase(&self.name, "admission", admission_us);
            telemetry.record_route(&self.name, &resp.route, total_us);
            slow = telemetry.record_slow_with(total_us, || SlowQuery {
                tenant: self.name.clone(),
                id: resp.id.clone(),
                route: resp.route.clone(),
                cache: qt.cache.to_string(),
                epoch: qt.epoch,
                total_us,
                admission_us,
                plan_us: qt.plan_us,
                artifact_us: qt.artifact_us,
                cache_us: qt.cache_us,
                solve_us: qt.solve_us,
                trace: trace_id.map(str::to_string),
            });
        }
        if let Some(ctx) = ctx {
            let end_us = recorder.now_us();
            let anomaly = if err {
                "error"
            } else if slow {
                "slow"
            } else if qt.guard_failed {
                "guard_failed"
            } else if qt.demoted {
                "demoted"
            } else {
                ""
            };
            let forced = traced || !anomaly.is_empty();
            let start_us = end_us.saturating_sub(total_us);
            let base = SpanEvent {
                trace: ctx.trace.clone(),
                tenant: self.name.clone(),
                epoch: qt.epoch,
                ..SpanEvent::default()
            };
            recorder.push(
                SpanEvent {
                    seq: recorder.next_seq(),
                    parent: ctx.parent,
                    name: "admission",
                    start_us,
                    dur_us: admission_us,
                    ..base.clone()
                },
                forced,
            );
            recorder.push(
                SpanEvent {
                    seq: ctx.parent,
                    parent: 0,
                    name: "query",
                    detail: format!("route={}", resp.route),
                    start_us,
                    dur_us: total_us,
                    anomaly,
                    ..base
                },
                forced,
            );
        }
        resp
    }

    /// This tenant's counters.
    pub fn stats(&self) -> TenantStats {
        let data = self.engine.data();
        TenantStats {
            name: self.name.clone(),
            points: data.continuous.len(),
            points_pos: data.continuous.count_of(knn_space::Label::Positive),
            points_neg: data.continuous.count_of(knn_space::Label::Negative),
            dim: data.continuous.dim(),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            engine: self.engine.stats(),
            work: self.engine.work_stats(),
        }
    }
}

/// The name → tenant map. `BTreeMap` so every listing is sorted — response
/// bytes must not depend on hash order.
pub struct Registry {
    engine_config: EngineConfig,
    telemetry: Arc<Telemetry>,
    tenants: Mutex<BTreeMap<String, Arc<Tenant>>>,
}

impl Registry {
    /// An empty registry; every loaded tenant gets an engine with
    /// `engine_config`. Telemetry stays disabled (the server constructor
    /// uses [`Registry::with_telemetry`] instead).
    pub fn new(engine_config: EngineConfig) -> Registry {
        Registry::with_telemetry(engine_config, Telemetry::new())
    }

    /// [`Registry::new`] with a shared telemetry registry: every tenant's
    /// engine records its phase timings there under its registry name.
    pub fn with_telemetry(engine_config: EngineConfig, telemetry: Arc<Telemetry>) -> Registry {
        Registry { engine_config, telemetry, tenants: Mutex::new(BTreeMap::new()) }
    }

    /// The telemetry registry shared by every tenant engine.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Parses `text` (the `+/-`-labeled format of [`textfmt`]) and registers
    /// it under `name`, atomically **replacing** any tenant already loaded
    /// under that name (new engine at version 0, fresh caches/counters).
    pub fn load(&self, name: &str, text: &str) -> Result<Arc<Tenant>, String> {
        self.load_with_replay(name, text, &[])
    }

    /// [`Registry::load`], then re-applies `replay` (a mutation log) to the
    /// new engine **before** it is registered: the tenant is never
    /// observable at an intermediate version. A replay failure fails the
    /// whole load — the registry keeps whatever was there before.
    pub fn load_with_replay(
        &self,
        name: &str,
        text: &str,
        replay: &[Mutation],
    ) -> Result<Arc<Tenant>, String> {
        if name.is_empty() {
            return Err("dataset name must not be empty".into());
        }
        let data = textfmt::parse_dataset(text)?;
        let engine = ExplanationEngine::with_telemetry(
            data,
            self.engine_config.clone(),
            self.telemetry.clone(),
            name,
        );
        for (i, m) in replay.iter().enumerate() {
            engine.apply(m.clone()).map_err(|e| format!("replay entry {i}: {e}"))?;
        }
        let tenant = Arc::new(Tenant {
            name: name.to_string(),
            engine: Arc::new(engine),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            active: AtomicU64::new(0),
        });
        self.tenants.lock().unwrap().insert(name.to_string(), tenant.clone());
        Ok(tenant)
    }

    /// Drops the tenant named `name`. In-flight queries holding its `Arc`
    /// complete against the old engine.
    pub fn unload(&self, name: &str) -> Result<(), String> {
        match self.tenants.lock().unwrap().remove(name) {
            Some(_) => Ok(()),
            None => Err(format!("no dataset named `{name}`")),
        }
    }

    /// The tenant named `name`, if loaded.
    pub fn get(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants.lock().unwrap().get(name).cloned()
    }

    /// All tenants, sorted by name.
    pub fn list(&self) -> Vec<Arc<Tenant>> {
        self.tenants.lock().unwrap().values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOOL: &str = "+ 1 1 1\n+ 1 1 0\n- 0 0 0\n- 0 0 1\n";

    #[test]
    fn load_query_unload_lifecycle() {
        let r = Registry::new(EngineConfig::default());
        let t = r.load("toy", BOOL).unwrap();
        assert_eq!(t.stats().points, 4);
        assert_eq!((t.stats().points_pos, t.stats().points_neg), (2, 2));
        assert_eq!(r.list().len(), 1);

        let adm = Admission::new(2);
        let req = Request::from_json_line(
            r#"{"cmd":"classify","metric":"hamming","point":[1,1,1]}"#,
            "0",
        )
        .unwrap();
        let resp = r.get("toy").unwrap().run(&adm, &req, None);
        assert!(resp.result.is_ok());
        let s = r.get("toy").unwrap().stats();
        assert_eq!((s.requests, s.errors, s.queued, s.active), (1, 0, 0, 0));

        r.unload("toy").unwrap();
        assert!(r.get("toy").is_none());
        assert!(r.unload("toy").is_err());
    }

    #[test]
    fn bad_text_is_rejected() {
        let r = Registry::new(EngineConfig::default());
        assert!(r.load("x", "not a dataset").is_err());
        assert!(r.load("", BOOL).is_err());
    }

    #[test]
    fn reload_atomically_replaces_the_tenant() {
        let r = Registry::new(EngineConfig::default());
        let old = r.load("toy", BOOL).unwrap();
        old.engine
            .apply(Mutation::Insert {
                point: vec![1.0, 0.0, 0.0],
                label: knn_space::Label::Positive,
            })
            .unwrap();
        assert_eq!(old.engine.epoch(), 1);

        let new = r.load("toy", "+ 1 1\n- 0 0\n").unwrap();
        assert_eq!(r.list().len(), 1, "replacement, not a second tenant");
        assert_eq!(new.stats().points, 2);
        assert_eq!(new.engine.epoch(), 0, "fresh epoch after reload");
        // The old engine is unchanged for whoever still holds it.
        assert_eq!(old.stats().points, 5);
    }

    #[test]
    fn load_with_replay_arrives_at_the_final_version_atomically() {
        let r = Registry::new(EngineConfig::default());
        let replay = [
            Mutation::Insert { point: vec![1.0, 0.0, 1.0], label: knn_space::Label::Positive },
            Mutation::Remove { id: 0 },
        ];
        let t = r.load_with_replay("toy", BOOL, &replay).unwrap();
        assert_eq!(t.engine.epoch(), 2);
        assert_eq!(t.stats().points, 4);

        // A failing replay keeps the previous tenant intact.
        let bad = [Mutation::Remove { id: 77 }];
        let err = r.load_with_replay("toy", BOOL, &bad).map(|_| ()).unwrap_err();
        assert!(err.contains("replay entry 0"), "{err}");
        assert_eq!(r.get("toy").unwrap().engine.epoch(), 2, "previous tenant survives");
    }
}
