//! The dataset registry: named tenants, each owning one
//! [`ExplanationEngine`] behind an `Arc`.
//!
//! Tenants are created by the `load` verb (from a file path on the server or
//! inline text), dropped by `unload`, and enumerated by `list`. A query names
//! its tenant; the engine — and with it the explanation LRU, the single-flight
//! table, and the lazily-built artifacts — is shared by every connection
//! querying that tenant, so one client's cold queries warm the cache for all.
//!
//! Loading an already-loaded name **atomically replaces** the tenant: the
//! replacement (a new engine at version 0, fresh caches and counters) is
//! fully built before the registry pointer swings, so every query observes
//! either the complete old tenant or the complete new one — never a partial
//! state. Unloading (and replacing) only drops the registry's reference:
//! queries already holding the `Arc` finish against the old engine.
//!
//! Mutations (`insert` / `remove` verbs) go through the tenant's shared
//! engine ([`ExplanationEngine::apply`]) and are visible to every
//! connection at once; `load` with a `replay` log applies the mutations
//! *before* the swap, so a replica restored by the cluster reconciler is
//! never observable at an intermediate version.

use crate::admission::Admission;
use knn_engine::bundle::{BundleEntry, ReproBundle};
use knn_engine::{
    textfmt, EngineConfig, ExplanationEngine, Mutation, MutationReceipt, Request, Response,
};
use knn_telemetry::{AuditJob, CaptureEntry, SlowQuery, SpanCtx, SpanEvent, Telemetry};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One named dataset and its engine, plus the per-tenant queue counters the
/// `stats` verb reports.
pub struct Tenant {
    /// Registry name.
    pub name: String,
    /// The shared engine (lazily builds its artifacts on first use).
    pub engine: Arc<ExplanationEngine>,
    /// The dataset text this tenant was loaded from — the repro bundle's
    /// seed. The engine compacts its own mutation log to the revalidation
    /// window and keeps no seed, so bundle assembly needs this tenant-level
    /// retention.
    seed: String,
    /// Every mutation applied since the seed, oldest first (`load`-replay
    /// entries included): op `i` is the epoch `i → i+1` transition, so
    /// `ops.len()` always equals the engine's epoch and any captured epoch
    /// is reconstructible. Grows one op per mutation — mutations are
    /// control-verb-rare next to queries, and the points they carry are
    /// exactly what the engine's own dataset holds.
    ops: Mutex<Vec<Mutation>>,
    /// Queries completed against this tenant.
    requests: AtomicU64,
    /// Completed queries whose response was an error.
    errors: AtomicU64,
    /// Queries currently waiting in the admission queue.
    queued: AtomicU64,
    /// Queries currently executing.
    active: AtomicU64,
}

/// A point-in-time snapshot of one tenant's counters.
#[derive(Clone, Debug)]
pub struct TenantStats {
    /// Registry name.
    pub name: String,
    /// Dataset size.
    pub points: usize,
    /// Positive points.
    pub points_pos: usize,
    /// Negative points.
    pub points_neg: usize,
    /// Dataset dimension.
    pub dim: usize,
    /// Queries completed.
    pub requests: u64,
    /// Error responses among them.
    pub errors: u64,
    /// Currently waiting for admission.
    pub queued: u64,
    /// Currently executing.
    pub active: u64,
    /// The engine's cache / single-flight counters.
    pub engine: knn_engine::EngineStats,
    /// The engine's per-route work counters (sorted by route).
    pub work: Vec<knn_engine::RouteWorkSnapshot>,
}

impl Tenant {
    /// Runs one request: waits for a global admission slot (FIFO), executes,
    /// and maintains the tenant's queue counters. The response bytes are
    /// independent of admission order per the engine's determinism contract.
    ///
    /// When the process telemetry is enabled, the end-to-end wall time goes
    /// into the per-(tenant, route) latency histogram, the admission wait
    /// into the phase histograms, and the combined trace is offered to the
    /// slow-query ring — all out-of-band, never touching response bytes.
    ///
    /// `trace_id` is the client's `"trace"` member (or the router's minted
    /// id): when present, the query is **captured** into the flight
    /// recorder's forced ring under that id — root `query` span, its
    /// `admission` child, and the engine's phase children. Untraced queries
    /// are still captured 1-in-N by the recorder's sampler, and anomalies
    /// (errors, slow-floor breaches, demotions, guard failures) force the
    /// capture into the anomaly ring. All of it stays out-of-band: the
    /// response bytes never depend on `trace_id` or the recorder.
    pub fn run(&self, admission: &Admission, req: &Request, trace_id: Option<&str>) -> Response {
        self.run_impl(admission, req, trace_id, None).0
    }

    /// The serving path's entry: [`Tenant::run`] plus black-box capture and
    /// shadow-audit election. `(conn, seq)` is the query's capture
    /// reference (connection number, line number) and `raw` the request
    /// line exactly as it arrived. Returns the response line to write —
    /// serialized once, shared by the wire, the capture ring, and any
    /// audit job. Capture is always on (like the flight recorder); the
    /// audit enqueue happens 1-in-N and never blocks.
    pub fn serve(
        &self,
        admission: &Admission,
        req: &Request,
        trace_id: Option<&str>,
        conn: u64,
        seq: u64,
        raw: &str,
    ) -> String {
        let (resp, epoch) = self.run_impl(admission, req, trace_id, Some((conn, seq)));
        let line = resp.to_json_line();
        let telemetry = self.engine.telemetry();
        telemetry.capture().push(CaptureEntry {
            tenant: self.name.clone(),
            epoch,
            conn,
            seq,
            trace: trace_id.map(str::to_string),
            request: raw.to_string(),
            response: line.clone(),
        });
        let audit = telemetry.audit();
        if audit.elect() {
            audit.offer(AuditJob {
                tenant: self.name.clone(),
                epoch,
                id: resp.id.clone(),
                request: raw.to_string(),
                response: line.clone(),
                conn,
                seq,
                trace: trace_id.map(str::to_string),
            });
        }
        line
    }

    /// The body shared by [`Tenant::run`] and [`Tenant::serve`]; returns
    /// the response and the epoch it answered at. `capture_ref` is the
    /// `(conn, seq)` reference serving attaches — it flows into slow-ring
    /// entries and forced span details so `slow`/`trace` output links to a
    /// replayable capture.
    fn run_impl(
        &self,
        admission: &Admission,
        req: &Request,
        trace_id: Option<&str>,
        capture_ref: Option<(u64, u64)>,
    ) -> (Response, u64) {
        let telemetry = self.engine.telemetry().clone();
        let recorder = telemetry.recorder();
        let traced = trace_id.is_some();
        let capture = traced || recorder.sample();
        let enabled = telemetry.is_enabled();
        let started = (enabled || capture).then(Instant::now);
        self.queued.fetch_add(1, Ordering::Relaxed);
        let slot = admission.acquire();
        self.queued.fetch_sub(1, Ordering::Relaxed);
        let admission_us = started.map(|t0| t0.elapsed().as_micros() as u64);
        self.active.fetch_add(1, Ordering::Relaxed);
        let ctx = capture.then(|| SpanCtx {
            trace: trace_id.unwrap_or("").to_string(),
            parent: recorder.next_seq(),
        });
        let (resp, qt) = self.engine.run_traced(req, ctx.as_ref());
        self.active.fetch_sub(1, Ordering::Relaxed);
        drop(slot);
        self.requests.fetch_add(1, Ordering::Relaxed);
        let err = resp.result.is_err();
        if err {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let (Some(t0), Some(admission_us)) = (started, admission_us) else {
            return (resp, qt.epoch);
        };
        let total_us = t0.elapsed().as_micros() as u64;
        let (conn, seq) = capture_ref.unwrap_or((0, 0));
        let mut slow = false;
        if enabled {
            telemetry.record_phase(&self.name, "admission", admission_us);
            telemetry.record_route(&self.name, &resp.route, total_us);
            slow = telemetry.record_slow_with(total_us, || SlowQuery {
                tenant: self.name.clone(),
                id: resp.id.clone(),
                route: resp.route.clone(),
                cache: qt.cache.to_string(),
                epoch: qt.epoch,
                total_us,
                admission_us,
                plan_us: qt.plan_us,
                artifact_us: qt.artifact_us,
                cache_us: qt.cache_us,
                solve_us: qt.solve_us,
                trace: trace_id.map(str::to_string),
                conn,
                seq,
            });
        }
        if let Some(ctx) = ctx {
            let end_us = recorder.now_us();
            let anomaly = if err {
                "error"
            } else if slow {
                "slow"
            } else if qt.guard_failed {
                "guard_failed"
            } else if qt.demoted {
                "demoted"
            } else {
                ""
            };
            let forced = traced || !anomaly.is_empty();
            let start_us = end_us.saturating_sub(total_us);
            let base = SpanEvent {
                trace: ctx.trace.clone(),
                tenant: self.name.clone(),
                epoch: qt.epoch,
                ..SpanEvent::default()
            };
            recorder.push(
                SpanEvent {
                    seq: recorder.next_seq(),
                    parent: ctx.parent,
                    name: "admission",
                    start_us,
                    dur_us: admission_us,
                    ..base.clone()
                },
                forced,
            );
            // The capture reference makes the span (and through `trace`
            // output, the operator) one `repro` call away from a
            // replayable request line.
            let detail = match capture_ref {
                Some((conn, seq)) => format!("route={} conn={conn} seq={seq}", resp.route),
                None => format!("route={}", resp.route),
            };
            recorder.push(
                SpanEvent {
                    seq: ctx.parent,
                    parent: 0,
                    name: "query",
                    detail,
                    start_us,
                    dur_us: total_us,
                    anomaly,
                    ..base
                },
                forced,
            );
        }
        (resp, qt.epoch)
    }

    /// Applies one mutation through the engine and records it in the
    /// tenant's op log on success. The op-log lock is held across the
    /// engine apply so concurrent mutations append in epoch order —
    /// `ops[i]` is always the epoch `i → i+1` transition.
    pub fn apply_logged(&self, m: Mutation) -> Result<MutationReceipt, String> {
        let mut ops = self.ops.lock().unwrap();
        let receipt = self.engine.apply(m.clone())?;
        ops.push(m);
        debug_assert_eq!(receipt.epoch, ops.len() as u64);
        Ok(receipt)
    }

    /// A repro bundle of this tenant's seed, full op log, and `entries`.
    /// Self-contained: replaying it in a fresh process re-derives every
    /// entry's served bytes (or proves a divergence).
    pub fn bundle_with(&self, entries: Vec<BundleEntry>) -> ReproBundle {
        ReproBundle {
            tenant: self.name.clone(),
            config: self.engine.config().clone(),
            seed: self.seed.clone(),
            replay: self.ops.lock().unwrap().clone(),
            entries,
        }
    }

    /// This tenant's counters.
    pub fn stats(&self) -> TenantStats {
        let data = self.engine.data();
        TenantStats {
            name: self.name.clone(),
            points: data.continuous.len(),
            points_pos: data.continuous.count_of(knn_space::Label::Positive),
            points_neg: data.continuous.count_of(knn_space::Label::Negative),
            dim: data.continuous.dim(),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            engine: self.engine.stats(),
            work: self.engine.work_stats(),
        }
    }
}

/// The name → tenant map. `BTreeMap` so every listing is sorted — response
/// bytes must not depend on hash order.
pub struct Registry {
    engine_config: EngineConfig,
    telemetry: Arc<Telemetry>,
    tenants: Mutex<BTreeMap<String, Arc<Tenant>>>,
}

impl Registry {
    /// An empty registry; every loaded tenant gets an engine with
    /// `engine_config`. Telemetry stays disabled (the server constructor
    /// uses [`Registry::with_telemetry`] instead).
    pub fn new(engine_config: EngineConfig) -> Registry {
        Registry::with_telemetry(engine_config, Telemetry::new())
    }

    /// [`Registry::new`] with a shared telemetry registry: every tenant's
    /// engine records its phase timings there under its registry name.
    pub fn with_telemetry(engine_config: EngineConfig, telemetry: Arc<Telemetry>) -> Registry {
        Registry { engine_config, telemetry, tenants: Mutex::new(BTreeMap::new()) }
    }

    /// The telemetry registry shared by every tenant engine.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Parses `text` (the `+/-`-labeled format of [`textfmt`]) and registers
    /// it under `name`, atomically **replacing** any tenant already loaded
    /// under that name (new engine at version 0, fresh caches/counters).
    pub fn load(&self, name: &str, text: &str) -> Result<Arc<Tenant>, String> {
        self.load_with_replay(name, text, &[])
    }

    /// [`Registry::load`], then re-applies `replay` (a mutation log) to the
    /// new engine **before** it is registered: the tenant is never
    /// observable at an intermediate version. A replay failure fails the
    /// whole load — the registry keeps whatever was there before.
    pub fn load_with_replay(
        &self,
        name: &str,
        text: &str,
        replay: &[Mutation],
    ) -> Result<Arc<Tenant>, String> {
        if name.is_empty() {
            return Err("dataset name must not be empty".into());
        }
        let data = textfmt::parse_dataset(text)?;
        let engine = ExplanationEngine::with_telemetry(
            data,
            self.engine_config.clone(),
            self.telemetry.clone(),
            name,
        );
        for (i, m) in replay.iter().enumerate() {
            engine.apply(m.clone()).map_err(|e| format!("replay entry {i}: {e}"))?;
        }
        let tenant = Arc::new(Tenant {
            name: name.to_string(),
            engine: Arc::new(engine),
            seed: text.to_string(),
            ops: Mutex::new(replay.to_vec()),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            active: AtomicU64::new(0),
        });
        self.tenants.lock().unwrap().insert(name.to_string(), tenant.clone());
        // Captures recorded against a replaced tenant's old seed are no
        // longer reproducible — drop them so `repro` never lies.
        self.telemetry.capture().purge_tenant(name);
        Ok(tenant)
    }

    /// Drops the tenant named `name`. In-flight queries holding its `Arc`
    /// complete against the old engine. Its black-box captures go with it
    /// (no seed to replay them against anymore).
    pub fn unload(&self, name: &str) -> Result<(), String> {
        match self.tenants.lock().unwrap().remove(name) {
            Some(_) => {
                self.telemetry.capture().purge_tenant(name);
                Ok(())
            }
            None => Err(format!("no dataset named `{name}`")),
        }
    }

    /// The tenant named `name`, if loaded.
    pub fn get(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants.lock().unwrap().get(name).cloned()
    }

    /// All tenants, sorted by name.
    pub fn list(&self) -> Vec<Arc<Tenant>> {
        self.tenants.lock().unwrap().values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOOL: &str = "+ 1 1 1\n+ 1 1 0\n- 0 0 0\n- 0 0 1\n";

    #[test]
    fn load_query_unload_lifecycle() {
        let r = Registry::new(EngineConfig::default());
        let t = r.load("toy", BOOL).unwrap();
        assert_eq!(t.stats().points, 4);
        assert_eq!((t.stats().points_pos, t.stats().points_neg), (2, 2));
        assert_eq!(r.list().len(), 1);

        let adm = Admission::new(2);
        let req = Request::from_json_line(
            r#"{"cmd":"classify","metric":"hamming","point":[1,1,1]}"#,
            "0",
        )
        .unwrap();
        let resp = r.get("toy").unwrap().run(&adm, &req, None);
        assert!(resp.result.is_ok());
        let s = r.get("toy").unwrap().stats();
        assert_eq!((s.requests, s.errors, s.queued, s.active), (1, 0, 0, 0));

        r.unload("toy").unwrap();
        assert!(r.get("toy").is_none());
        assert!(r.unload("toy").is_err());
    }

    #[test]
    fn bad_text_is_rejected() {
        let r = Registry::new(EngineConfig::default());
        assert!(r.load("x", "not a dataset").is_err());
        assert!(r.load("", BOOL).is_err());
    }

    #[test]
    fn reload_atomically_replaces_the_tenant() {
        let r = Registry::new(EngineConfig::default());
        let old = r.load("toy", BOOL).unwrap();
        old.engine
            .apply(Mutation::Insert {
                point: vec![1.0, 0.0, 0.0],
                label: knn_space::Label::Positive,
            })
            .unwrap();
        assert_eq!(old.engine.epoch(), 1);

        let new = r.load("toy", "+ 1 1\n- 0 0\n").unwrap();
        assert_eq!(r.list().len(), 1, "replacement, not a second tenant");
        assert_eq!(new.stats().points, 2);
        assert_eq!(new.engine.epoch(), 0, "fresh epoch after reload");
        // The old engine is unchanged for whoever still holds it.
        assert_eq!(old.stats().points, 5);
    }

    #[test]
    fn load_with_replay_arrives_at_the_final_version_atomically() {
        let r = Registry::new(EngineConfig::default());
        let replay = [
            Mutation::Insert { point: vec![1.0, 0.0, 1.0], label: knn_space::Label::Positive },
            Mutation::Remove { id: 0 },
        ];
        let t = r.load_with_replay("toy", BOOL, &replay).unwrap();
        assert_eq!(t.engine.epoch(), 2);
        assert_eq!(t.stats().points, 4);

        // A failing replay keeps the previous tenant intact.
        let bad = [Mutation::Remove { id: 77 }];
        let err = r.load_with_replay("toy", BOOL, &bad).map(|_| ()).unwrap_err();
        assert!(err.contains("replay entry 0"), "{err}");
        assert_eq!(r.get("toy").unwrap().engine.epoch(), 2, "previous tenant survives");
    }

    /// `serve` is `run` plus the black-box: the response lands in the
    /// capture ring tagged with its `(conn, seq)` reference, and
    /// `apply_logged` keeps the tenant's replay ops aligned with the
    /// engine epoch, so `bundle_with` exports a bundle whose offline
    /// replay reproduces the served bytes exactly.
    #[test]
    fn serve_captures_and_bundles_replay_byte_identically() {
        let r = Registry::new(EngineConfig::default());
        let t = r.load("toy", BOOL).unwrap();
        let adm = Admission::new(2);
        let raw =
            r#"{"dataset":"toy","id":"q1","cmd":"classify","metric":"hamming","point":[1,1,1]}"#;
        let req = Request::from_json_line(raw, "q1").unwrap();
        let line = t.serve(&adm, &req, Some("t-1"), 7, 3, raw);

        let entry = r.telemetry().capture().by_ref(7, 3).expect("served response captured");
        assert_eq!((entry.tenant.as_str(), entry.epoch), ("toy", 0));
        assert_eq!((entry.request.as_str(), entry.response.as_str()), (raw, line.as_str()));
        assert_eq!(entry.trace.as_deref(), Some("t-1"));

        t.apply_logged(Mutation::Insert {
            point: vec![0.0, 1.0, 1.0],
            label: knn_space::Label::Positive,
        })
        .unwrap();
        let raw2 =
            r#"{"dataset":"toy","id":"q2","cmd":"classify","metric":"hamming","point":[0,1,1]}"#;
        let req2 = Request::from_json_line(raw2, "q2").unwrap();
        let line2 = t.serve(&adm, &req2, None, 7, 4, raw2);

        let entries = r
            .telemetry()
            .capture()
            .for_tenant("toy")
            .into_iter()
            .map(|e| knn_engine::bundle::BundleEntry {
                conn: e.conn,
                seq: e.seq,
                backend: None,
                epoch: e.epoch,
                trace: e.trace,
                request: e.request,
                response: e.response,
            })
            .collect();
        let bundle = t.bundle_with(entries);
        assert_eq!(bundle.replay.len(), 1, "apply_logged retained the op");
        let report = bundle.replay().unwrap();
        assert_eq!((report.checked, report.final_epoch), (2, 1));
        assert!(report.divergences.is_empty(), "served bytes replay clean: {report:?}");
        drop((line, line2));
    }

    /// Reload and unload purge the tenant's captures: a bundle must never
    /// pair old-generation responses with a new-generation seed.
    #[test]
    fn reload_and_unload_purge_stale_captures() {
        let r = Registry::new(EngineConfig::default());
        let t = r.load("toy", BOOL).unwrap();
        let adm = Admission::new(2);
        let raw =
            r#"{"dataset":"toy","id":"q","cmd":"classify","metric":"hamming","point":[1,1,1]}"#;
        let req = Request::from_json_line(raw, "q").unwrap();
        t.serve(&adm, &req, None, 1, 0, raw);
        assert_eq!(r.telemetry().capture().for_tenant("toy").len(), 1);

        r.load("toy", "+ 1 1\n- 0 0\n").unwrap();
        assert!(r.telemetry().capture().for_tenant("toy").is_empty(), "reload purges");

        let raw2 = r#"{"dataset":"toy","id":"q","cmd":"classify","point":[1,1]}"#;
        let req2 = Request::from_json_line(raw2, "q").unwrap();
        r.get("toy").unwrap().serve(&adm, &req2, None, 1, 1, raw2);
        assert_eq!(r.telemetry().capture().for_tenant("toy").len(), 1);
        r.unload("toy").unwrap();
        assert!(r.telemetry().capture().for_tenant("toy").is_empty(), "unload purges");
    }
}
