//! The server's wire protocol: newline-delimited JSON over TCP.
//!
//! Every request line is one JSON object. Explanation queries are the
//! engine's wire format plus a `dataset` member naming the tenant; control
//! verbs manage the registry and observe the server:
//!
//! ```text
//! {"verb":"load","name":"demo","path":"data/demo_boolean.txt"}
//! {"verb":"load","name":"inline","text":"+ 1 1\n- 0 0"}
//! {"verb":"list"}
//! {"dataset":"demo","id":"q1","cmd":"classify","metric":"hamming","point":[1,0,1]}
//! {"verb":"query","dataset":"demo","cmd":"counterfactual","point":[1,0,1]}
//! {"verb":"insert","name":"demo","label":"+","point":[1,1,0]}
//! {"verb":"remove","name":"demo","index":3}
//! {"verb":"stats"}
//! {"verb":"metrics"}
//! {"verb":"top"}
//! {"verb":"slo","name":"demo","quantile":0.99,"threshold_us":5000,"windows":6}
//! {"verb":"slo","name":"demo"}
//! {"verb":"slow"}
//! {"verb":"trace","trace":"t-42"}
//! {"verb":"dump"}
//! {"verb":"fill","name":"demo","epoch":0,"req":"{\"cmd\":...}","resp":"{\"id\":...}"}
//! {"verb":"repro","trace":"t-42"}
//! {"verb":"repro","conn":3,"seq":17}
//! {"verb":"repro","name":"demo"}
//! {"verb":"audit"}
//! {"verb":"audit","sample":32}
//! {"verb":"unload","name":"demo"}
//! {"verb":"ping"}
//! {"verb":"quit"}
//! ```
//!
//! A line with a `cmd` member and no `verb` is a query (the common case). The
//! server answers every non-blank request line with exactly one JSON response
//! line, in request order per connection; malformed lines — bad JSON, invalid
//! UTF-8, unknown verbs — get an `{"ok":false,...}` response on the same
//! connection, never a disconnect. `id` is echoed when present and defaults
//! to the 1-based line number, exactly like `xknn batch`.
//!
//! Control verbs are a **connection-level barrier**: one executes only after
//! every earlier query on the same connection has completed, so a pipelined
//! `stats` reports counters that include those queries, and `unload` / `quit`
//! take effect at a well-defined point in the stream.
//!
//! ## Mutation and reload semantics
//!
//! * `insert` appends one labeled point to a loaded tenant; `remove` drops
//!   the point at a 0-based index (later points shift down). Both bump the
//!   tenant's **version** (epoch) by one and answer with the new version
//!   and point count. As control verbs they run at the connection barrier:
//!   queries pipelined before a mutation answer against the old version,
//!   queries after it against the new one — and after any mutation
//!   sequence, every response is byte-identical to a server freshly loaded
//!   with the final dataset.
//! * `load` of an already-loaded name **atomically replaces** the tenant: a
//!   new engine at version 0, fresh caches and counters. Queries in flight
//!   against the old engine finish against it; queries parsed after the
//!   barrier see the replacement.
//! * `load` may carry `"replay":[{"op":"insert","label":"+","point":[...]},
//!   {"op":"remove","index":0},...]` — the mutation log to re-apply on top
//!   of the loaded text *before* the tenant becomes visible. The cluster
//!   router's reconciler uses this to bring an amnesiac-restarted replica
//!   back to the exact version (and bytes) of its peers in one atomic step.

use knn_engine::json::{parse_bytes, Value};
use knn_engine::{Mutation, Request, Response};
use knn_space::Label;
use knn_telemetry::SloObjective;

/// One parsed request line: the resolved response id plus the command.
#[derive(Clone, Debug, PartialEq)]
pub struct Parsed {
    /// `id` member if present, else the caller's default (the line number).
    pub id: String,
    /// What to do.
    pub command: Command,
}

/// The verbs of the protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// An explanation query against the named tenant.
    Query {
        /// Tenant name.
        dataset: String,
        /// The engine request.
        request: Request,
    },
    /// Register a dataset from a server-side file or inline text, atomically
    /// replacing any tenant already under that name.
    Load {
        /// Tenant name to register.
        name: String,
        /// Server-side file path (mutually exclusive with `text`).
        path: Option<String>,
        /// Inline dataset text (mutually exclusive with `path`).
        text: Option<String>,
        /// Mutations to re-apply on top of the loaded text before the
        /// tenant becomes visible (the cluster reconciler's log replay).
        replay: Vec<Mutation>,
    },
    /// Drop a tenant.
    Unload {
        /// Tenant name to drop.
        name: String,
    },
    /// Append one labeled point to a tenant (bumps its version).
    Insert {
        /// Tenant name.
        name: String,
        /// The new point's label.
        label: Label,
        /// The new point.
        point: Vec<f64>,
    },
    /// Remove the point at a 0-based index from a tenant (bumps its
    /// version; later points shift down).
    Remove {
        /// Tenant name.
        name: String,
        /// The index to remove.
        index: usize,
    },
    /// Enumerate tenants.
    List,
    /// Cache / admission / per-tenant counters.
    Stats,
    /// Prometheus text exposition of the process's latency histograms and
    /// engine counters (out-of-band; empty until telemetry is enabled).
    Metrics,
    /// One JSON line ranking tenants by estimated resident bytes, with
    /// their request rate and SLO burn — the cluster router sums/merges
    /// this across backends.
    Top,
    /// Set (when `objective` is present) or read a tenant's latency
    /// objective and burn-rate status.
    Slo {
        /// Tenant name.
        name: String,
        /// `Some` sets/replaces the objective; `None` reads the status.
        objective: Option<SloObjective>,
    },
    /// Drain the slow-query ring: the worst-N queries by wall time since
    /// the last drain, with per-phase breakdowns.
    Slow,
    /// Reconstruct the span tree of one traced query from the flight
    /// recorder (the router fans this out and stitches backend trees under
    /// its own dispatch spans).
    Trace {
        /// The trace id the query carried.
        trace: String,
    },
    /// Export the flight recorder's retained spans as Chrome trace-event
    /// JSON (`chrome://tracing` / Perfetto).
    Dump,
    /// Install an explanation computed by a peer replica into a tenant's
    /// cache (the cluster router's cross-replica cache fill). Best-effort:
    /// an epoch mismatch or an already-present entry answers `ok` with
    /// `"filled":false` rather than an error — stale fills racing
    /// mutations are expected, not exceptional.
    Fill {
        /// Tenant name.
        name: String,
        /// The epoch the entry was computed at; the engine drops the fill
        /// unless it is still exactly the current epoch.
        epoch: u64,
        /// The originating query (shipped as its request line; the cache
        /// key is recomputed from it on the receiving side).
        request: Request,
        /// The computed answer (shipped as its response line).
        response: Response,
    },
    /// Export a self-contained repro bundle (seed text + replay ops +
    /// captured request/response lines) from the black-box capture ring.
    /// Exactly one selector: a trace id, a `(conn, seq)` capture reference
    /// (the `slow` verb's drill-down link), or a tenant name (every
    /// retained capture for that tenant).
    Repro {
        /// Select every capture carrying this trace id.
        trace: Option<String>,
        /// With `seq`: select one capture by its `(conn, seq)` reference.
        conn: Option<u64>,
        /// See `conn`.
        seq: Option<u64>,
        /// Select every retained capture for this tenant.
        name: Option<String>,
    },
    /// Read the shadow audit's counters, or set its sampling rate when
    /// `sample` is present (1-in-N; 0 turns the audit off).
    Audit {
        /// `Some` sets the election rate; `None` reads the status.
        sample: Option<u64>,
    },
    /// Liveness probe.
    Ping,
    /// Close this connection (after the response).
    Quit,
    /// Stop the whole server (after the response).
    Shutdown,
}

fn member_str(v: &Value, key: &str, what: &str) -> Result<String, String> {
    match v.get(key) {
        Some(Value::String(s)) => Ok(s.clone()),
        Some(_) => Err(format!("`{key}` must be a string ({what})")),
        None => Err(format!("missing `{key}` ({what})")),
    }
}

/// Parses a `"label"` member: `"+"` / `"-"`.
fn member_label(v: &Value) -> Result<Label, String> {
    match member_str(v, "label", "the point's class")?.as_str() {
        "+" => Ok(Label::Positive),
        "-" => Ok(Label::Negative),
        other => Err(format!("`label` must be \"+\" or \"-\", got `{other}`")),
    }
}

/// Parses a `"point"` member: a non-empty array of finite numbers. (The
/// engine re-validates dimension and finiteness; this keeps wire errors
/// early and uniform.)
fn member_point(v: &Value) -> Result<Vec<f64>, String> {
    let arr = match v.get("point") {
        Some(Value::Array(a)) => a,
        Some(_) => return Err("`point` must be an array".into()),
        None => return Err("missing `point` array".into()),
    };
    if arr.is_empty() {
        return Err("`point` must not be empty".into());
    }
    arr.iter()
        .map(|x| x.as_f64().ok_or_else(|| "`point` must contain numbers".to_string()))
        .collect()
}

/// Parses a non-negative integer member as `usize`.
fn member_index(v: &Value, key: &str) -> Result<usize, String> {
    match v.get(key) {
        Some(x) => x
            .as_u64()
            .map(|u| u as usize)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
        None => Err(format!("missing `{key}`")),
    }
}

/// Parses the optional `"replay"` member of `load`: the mutation log to
/// re-apply on top of the loaded text. The item format is the canonical
/// repro-bundle op shape, so the parsing is shared with
/// [`knn_engine::bundle`].
fn member_replay(v: &Value) -> Result<Vec<Mutation>, String> {
    let items = match v.get("replay") {
        None => return Ok(Vec::new()),
        Some(Value::Array(items)) => items,
        Some(_) => return Err("`replay` must be an array".into()),
    };
    items.iter().map(knn_engine::bundle::mutation_from_op).collect()
}

/// Parses one request line. Total over arbitrary bytes: any input yields
/// `Ok` or `Err`, never a panic (the engine's JSON parser is byte-total).
pub fn parse_line(line: &[u8], default_id: &str) -> Result<Parsed, String> {
    parse_line_value(line, default_id).map(|(parsed, _)| parsed)
}

/// [`parse_line`], also handing back the parsed [`Value`] so callers that
/// need envelope members the protocol doesn't model (the cluster router's
/// `"replicas"` hint, its has-`id` check) don't parse the line twice.
pub fn parse_line_value(line: &[u8], default_id: &str) -> Result<(Parsed, Value), String> {
    let v = parse_bytes(line)?;
    if !matches!(v, Value::Object(_)) {
        return Err("request must be a JSON object".into());
    }
    let id = match v.get("id") {
        None => default_id.to_string(),
        Some(Value::String(s)) => s.clone(),
        Some(Value::Number(n)) => Value::Number(*n).to_json(),
        Some(_) => return Err("`id` must be a string or number".into()),
    };
    let verb = match v.get("verb") {
        None if v.get("cmd").is_some() => "query".to_string(),
        None => return Err("missing `verb` (or `cmd` + `dataset` for a query)".into()),
        Some(Value::String(s)) => s.clone(),
        Some(_) => return Err("`verb` must be a string".into()),
    };
    let command = match verb.as_str() {
        "query" => {
            let dataset = member_str(&v, "dataset", "the tenant to query")?;
            let request = Request::from_value(&v, default_id)?;
            Command::Query { dataset, request }
        }
        "load" => {
            let name = member_str(&v, "name", "the tenant name to register")?;
            let path = match v.get("path") {
                None => None,
                Some(Value::String(s)) => Some(s.clone()),
                Some(_) => return Err("`path` must be a string".into()),
            };
            let text = match v.get("text") {
                None => None,
                Some(Value::String(s)) => Some(s.clone()),
                Some(_) => return Err("`text` must be a string".into()),
            };
            if path.is_some() == text.is_some() {
                return Err("load needs exactly one of `path` or `text`".into());
            }
            Command::Load { name, path, text, replay: member_replay(&v)? }
        }
        "unload" => Command::Unload { name: member_str(&v, "name", "the tenant to drop")? },
        "insert" => Command::Insert {
            name: member_str(&v, "name", "the tenant to mutate")?,
            label: member_label(&v)?,
            point: member_point(&v)?,
        },
        "remove" => Command::Remove {
            name: member_str(&v, "name", "the tenant to mutate")?,
            index: member_index(&v, "index")?,
        },
        "list" => Command::List,
        "stats" => Command::Stats,
        "metrics" => Command::Metrics,
        "top" => Command::Top,
        "slo" => {
            let name = member_str(&v, "name", "the tenant whose objective to set or read")?;
            let objective = match v.get("threshold_us") {
                None => None,
                Some(x) => {
                    let threshold_us = x
                        .as_u64()
                        .ok_or_else(|| "`threshold_us` must be a non-negative integer".to_string())?;
                    let quantile = match v.get("quantile") {
                        None => SloObjective::default().quantile,
                        Some(q) => {
                            q.as_f64().ok_or_else(|| "`quantile` must be a number".to_string())?
                        }
                    };
                    let windows = match v.get("windows") {
                        None => SloObjective::default().windows,
                        Some(w) => w
                            .as_u64()
                            .ok_or_else(|| "`windows` must be a positive integer".to_string())?
                            as usize,
                    };
                    Some(SloObjective { quantile, threshold_us, windows })
                }
            };
            Command::Slo { name, objective }
        }
        "slow" => Command::Slow,
        "trace" => Command::Trace { trace: member_str(&v, "trace", "the trace id to look up")? },
        "dump" => Command::Dump,
        "fill" => {
            let name = member_str(&v, "name", "the tenant to fill")?;
            let epoch = match v.get("epoch") {
                Some(x) => {
                    x.as_u64().ok_or_else(|| "`epoch` must be a non-negative integer".to_string())?
                }
                None => return Err("missing `epoch`".into()),
            };
            let req_line = member_str(&v, "req", "the originating request line")?;
            let request = Request::from_json_line(&req_line, "fill")
                .map_err(|e| format!("bad `req`: {e}"))?;
            let resp_line = member_str(&v, "resp", "the computed response line")?;
            let response = Response::from_json_line(&resp_line)
                .map_err(|e| format!("bad `resp`: {e}"))?;
            Command::Fill { name, epoch, request, response }
        }
        "repro" => {
            let trace = match v.get("trace") {
                None => None,
                Some(Value::String(s)) => Some(s.clone()),
                Some(_) => return Err("`trace` must be a string".into()),
            };
            let name = match v.get("name") {
                None => None,
                Some(Value::String(s)) => Some(s.clone()),
                Some(_) => return Err("`name` must be a string".into()),
            };
            let conn = match v.get("conn") {
                None => None,
                Some(x) => Some(
                    x.as_u64().ok_or_else(|| "`conn` must be a non-negative integer".to_string())?,
                ),
            };
            let seq = match v.get("seq") {
                None => None,
                Some(x) => Some(
                    x.as_u64().ok_or_else(|| "`seq` must be a non-negative integer".to_string())?,
                ),
            };
            if conn.is_some() != seq.is_some() {
                return Err("`conn` and `seq` select a capture together".into());
            }
            if trace.is_none() && conn.is_none() && name.is_none() {
                return Err(
                    "repro needs a selector: `trace`, `conn`+`seq`, or a tenant `name`".into()
                );
            }
            Command::Repro { trace, conn, seq, name }
        }
        "audit" => Command::Audit {
            sample: match v.get("sample") {
                None => None,
                Some(x) => Some(
                    x.as_u64()
                        .ok_or_else(|| "`sample` must be a non-negative integer".to_string())?,
                ),
            },
        },
        "ping" => Command::Ping,
        "quit" => Command::Quit,
        "shutdown" => Command::Shutdown,
        other => {
            return Err(format!(
            "unknown verb `{other}` (try query, load, unload, insert, remove, list, stats, metrics, top, slo, slow, trace, dump, fill, repro, audit, ping, quit, shutdown)"
        ))
        }
    };
    Ok((Parsed { id, command }, v))
}

/// An `{"id":...,"ok":false,"error":...}` line, byte-compatible with the
/// engine's error responses.
pub fn error_line(id: &str, msg: &str) -> String {
    Response { id: id.to_string(), route: "error".to_string(), result: Err(msg.to_string()) }
        .to_json_line()
}

/// An `{"id":...,"ok":true,...}` control response with `extra` members in
/// the given (deterministic) order.
pub fn ok_line(id: &str, extra: Vec<(String, Value)>) -> String {
    let mut members = vec![
        ("id".to_string(), Value::String(id.to_string())),
        ("ok".to_string(), Value::Bool(true)),
    ];
    members.extend(extra);
    Value::Object(members).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_with_and_without_verb() {
        let a = parse_line(br#"{"dataset":"d","cmd":"classify","point":[1]}"#, "7").unwrap();
        let b = parse_line(br#"{"verb":"query","dataset":"d","cmd":"classify","point":[1]}"#, "7")
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.id, "7");
        let Command::Query { dataset, request } = a.command else { panic!() };
        assert_eq!(dataset, "d");
        assert_eq!(request.id, "7");
    }

    #[test]
    fn control_verbs_parse() {
        let p =
            parse_line(br#"{"id":"x","verb":"load","name":"d","text":"+ 1\n- 0"}"#, "1").unwrap();
        assert_eq!(p.id, "x");
        assert!(matches!(p.command, Command::Load { .. }));
        for (line, want) in [
            (&br#"{"verb":"list"}"#[..], Command::List),
            (br#"{"verb":"stats"}"#, Command::Stats),
            (br#"{"verb":"metrics"}"#, Command::Metrics),
            (br#"{"verb":"top"}"#, Command::Top),
            (br#"{"verb":"slo","name":"n"}"#, Command::Slo { name: "n".into(), objective: None }),
            (
                br#"{"verb":"slo","name":"n","threshold_us":5000}"#,
                Command::Slo {
                    name: "n".into(),
                    objective: Some(SloObjective { threshold_us: 5000, ..SloObjective::default() }),
                },
            ),
            (
                br#"{"verb":"slo","name":"n","quantile":0.5,"threshold_us":100,"windows":3}"#,
                Command::Slo {
                    name: "n".into(),
                    objective: Some(SloObjective { quantile: 0.5, threshold_us: 100, windows: 3 }),
                },
            ),
            (br#"{"verb":"slow"}"#, Command::Slow),
            (br#"{"verb":"trace","trace":"t-1"}"#, Command::Trace { trace: "t-1".into() }),
            (br#"{"verb":"dump"}"#, Command::Dump),
            (
                br#"{"verb":"repro","trace":"t-1"}"#,
                Command::Repro { trace: Some("t-1".into()), conn: None, seq: None, name: None },
            ),
            (
                br#"{"verb":"repro","conn":3,"seq":17}"#,
                Command::Repro { trace: None, conn: Some(3), seq: Some(17), name: None },
            ),
            (
                br#"{"verb":"repro","name":"d"}"#,
                Command::Repro { trace: None, conn: None, seq: None, name: Some("d".into()) },
            ),
            (br#"{"verb":"audit"}"#, Command::Audit { sample: None }),
            (br#"{"verb":"audit","sample":32}"#, Command::Audit { sample: Some(32) }),
            (br#"{"verb":"audit","sample":0}"#, Command::Audit { sample: Some(0) }),
            (br#"{"verb":"ping"}"#, Command::Ping),
            (br#"{"verb":"quit"}"#, Command::Quit),
            (br#"{"verb":"shutdown"}"#, Command::Shutdown),
            (br#"{"verb":"unload","name":"n"}"#, Command::Unload { name: "n".into() }),
            (
                br#"{"verb":"insert","name":"n","label":"+","point":[1,0.5]}"#,
                Command::Insert { name: "n".into(), label: Label::Positive, point: vec![1.0, 0.5] },
            ),
            (
                br#"{"verb":"remove","name":"n","index":3}"#,
                Command::Remove { name: "n".into(), index: 3 },
            ),
        ] {
            assert_eq!(parse_line(line, "1").unwrap().command, want);
        }
    }

    #[test]
    fn fill_verb_parses_embedded_lines() {
        let line = br#"{"id":"f","verb":"fill","name":"hot","epoch":3,"req":"{\"id\":\"q\",\"cmd\":\"classify\",\"point\":[1,0]}","resp":"{\"id\":\"q\",\"ok\":true,\"route\":\"kdtree\",\"label\":\"+\"}"}"#;
        let p = parse_line(line, "1").unwrap();
        assert_eq!(p.id, "f");
        let Command::Fill { name, epoch, request, response } = p.command else {
            panic!("not a fill")
        };
        assert_eq!((name.as_str(), epoch), ("hot", 3));
        assert_eq!(request.point, vec![1.0, 0.0]);
        assert_eq!(response.to_json_line(), r#"{"id":"q","ok":true,"route":"kdtree","label":"+"}"#);
    }

    #[test]
    fn load_replay_parses() {
        let p = parse_line(
            br#"{"verb":"load","name":"d","text":"+ 1\n- 0","replay":[{"op":"insert","label":"-","point":[0.25]},{"op":"remove","index":0}]}"#,
            "1",
        )
        .unwrap();
        let Command::Load { replay, .. } = p.command else { panic!() };
        assert_eq!(
            replay,
            vec![
                Mutation::Insert { point: vec![0.25], label: Label::Negative },
                Mutation::Remove { id: 0 },
            ]
        );
        let empty = parse_line(br#"{"verb":"load","name":"d","text":"+ 1"}"#, "1").unwrap();
        let Command::Load { replay, .. } = empty.command else { panic!() };
        assert!(replay.is_empty());
    }

    #[test]
    fn malformed_lines_rejected_not_panicking() {
        for bad in [
            &b"not json"[..],
            b"[1,2]",
            b"{\"verb\":\"fly\"}",
            b"{\"verb\":\"load\",\"name\":\"d\"}",
            b"{\"verb\":\"load\",\"name\":\"d\",\"path\":\"p\",\"text\":\"t\"}",
            b"{\"cmd\":\"classify\",\"point\":[1]}", // query without dataset
            b"{\"verb\":\"query\",\"dataset\":\"d\"}", // query without cmd
            b"\xff\xfe{\"verb\":\"ping\"}",          // invalid UTF-8
            b"{\"verb\":42}",
            b"{\"verb\":\"insert\",\"name\":\"d\",\"point\":[1]}", // no label
            b"{\"verb\":\"insert\",\"name\":\"d\",\"label\":\"x\",\"point\":[1]}",
            b"{\"verb\":\"insert\",\"name\":\"d\",\"label\":\"+\",\"point\":[]}",
            b"{\"verb\":\"remove\",\"name\":\"d\"}", // no index
            b"{\"verb\":\"remove\",\"name\":\"d\",\"index\":-1}",
            b"{\"verb\":\"trace\"}", // no trace id
            b"{\"verb\":\"trace\",\"trace\":7}",
            b"{\"verb\":\"slo\"}", // no tenant name
            b"{\"verb\":\"slo\",\"name\":\"d\",\"threshold_us\":\"fast\"}",
            b"{\"verb\":\"slo\",\"name\":\"d\",\"threshold_us\":1,\"quantile\":\"p99\"}",
            b"{\"verb\":\"slo\",\"name\":\"d\",\"threshold_us\":1,\"windows\":-2}",
            b"{\"verb\":\"load\",\"name\":\"d\",\"text\":\"+ 1\",\"replay\":[{\"op\":\"fly\"}]}",
            b"{\"verb\":\"repro\"}", // no selector
            b"{\"verb\":\"repro\",\"conn\":1}", // conn without seq
            b"{\"verb\":\"repro\",\"seq\":1}", // seq without conn
            b"{\"verb\":\"repro\",\"trace\":7}",
            b"{\"verb\":\"repro\",\"conn\":-1,\"seq\":0}",
            b"{\"verb\":\"audit\",\"sample\":\"fast\"}",
            b"{\"verb\":\"audit\",\"sample\":-4}",
            b"{\"verb\":\"fill\",\"name\":\"d\"}", // no epoch/req/resp
            b"{\"verb\":\"fill\",\"name\":\"d\",\"epoch\":0,\"req\":\"not json\",\"resp\":\"{}\"}",
            b"{\"verb\":\"fill\",\"name\":\"d\",\"epoch\":0,\"req\":\"{\\\"cmd\\\":\\\"classify\\\",\\\"point\\\":[1]}\",\"resp\":\"nope\"}",
        ] {
            assert!(parse_line(bad, "1").is_err());
        }
    }

    #[test]
    fn response_builders_are_deterministic() {
        assert_eq!(error_line("3", "boom"), r#"{"id":"3","ok":false,"error":"boom"}"#);
        assert_eq!(
            ok_line("x", vec![("pong".into(), Value::Bool(true))]),
            r#"{"id":"x","ok":true,"pong":true}"#
        );
    }
}
