//! The server's wire protocol: newline-delimited JSON over TCP.
//!
//! Every request line is one JSON object. Explanation queries are the
//! engine's wire format plus a `dataset` member naming the tenant; control
//! verbs manage the registry and observe the server:
//!
//! ```text
//! {"verb":"load","name":"demo","path":"data/demo_boolean.txt"}
//! {"verb":"load","name":"inline","text":"+ 1 1\n- 0 0"}
//! {"verb":"list"}
//! {"dataset":"demo","id":"q1","cmd":"classify","metric":"hamming","point":[1,0,1]}
//! {"verb":"query","dataset":"demo","cmd":"counterfactual","point":[1,0,1]}
//! {"verb":"stats"}
//! {"verb":"unload","name":"demo"}
//! {"verb":"ping"}
//! {"verb":"quit"}
//! ```
//!
//! A line with a `cmd` member and no `verb` is a query (the common case). The
//! server answers every non-blank request line with exactly one JSON response
//! line, in request order per connection; malformed lines — bad JSON, invalid
//! UTF-8, unknown verbs — get an `{"ok":false,...}` response on the same
//! connection, never a disconnect. `id` is echoed when present and defaults
//! to the 1-based line number, exactly like `xknn batch`.
//!
//! Control verbs are a **connection-level barrier**: one executes only after
//! every earlier query on the same connection has completed, so a pipelined
//! `stats` reports counters that include those queries, and `unload` / `quit`
//! take effect at a well-defined point in the stream.

use knn_engine::json::{parse_bytes, Value};
use knn_engine::{Request, Response};

/// One parsed request line: the resolved response id plus the command.
#[derive(Clone, Debug, PartialEq)]
pub struct Parsed {
    /// `id` member if present, else the caller's default (the line number).
    pub id: String,
    /// What to do.
    pub command: Command,
}

/// The verbs of the protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// An explanation query against the named tenant.
    Query {
        /// Tenant name.
        dataset: String,
        /// The engine request.
        request: Request,
    },
    /// Register a dataset from a server-side file or inline text.
    Load {
        /// Tenant name to register.
        name: String,
        /// Server-side file path (mutually exclusive with `text`).
        path: Option<String>,
        /// Inline dataset text (mutually exclusive with `path`).
        text: Option<String>,
    },
    /// Drop a tenant.
    Unload {
        /// Tenant name to drop.
        name: String,
    },
    /// Enumerate tenants.
    List,
    /// Cache / admission / per-tenant counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// Close this connection (after the response).
    Quit,
    /// Stop the whole server (after the response).
    Shutdown,
}

fn member_str(v: &Value, key: &str, what: &str) -> Result<String, String> {
    match v.get(key) {
        Some(Value::String(s)) => Ok(s.clone()),
        Some(_) => Err(format!("`{key}` must be a string ({what})")),
        None => Err(format!("missing `{key}` ({what})")),
    }
}

/// Parses one request line. Total over arbitrary bytes: any input yields
/// `Ok` or `Err`, never a panic (the engine's JSON parser is byte-total).
pub fn parse_line(line: &[u8], default_id: &str) -> Result<Parsed, String> {
    parse_line_value(line, default_id).map(|(parsed, _)| parsed)
}

/// [`parse_line`], also handing back the parsed [`Value`] so callers that
/// need envelope members the protocol doesn't model (the cluster router's
/// `"replicas"` hint, its has-`id` check) don't parse the line twice.
pub fn parse_line_value(line: &[u8], default_id: &str) -> Result<(Parsed, Value), String> {
    let v = parse_bytes(line)?;
    if !matches!(v, Value::Object(_)) {
        return Err("request must be a JSON object".into());
    }
    let id = match v.get("id") {
        None => default_id.to_string(),
        Some(Value::String(s)) => s.clone(),
        Some(Value::Number(n)) => Value::Number(*n).to_json(),
        Some(_) => return Err("`id` must be a string or number".into()),
    };
    let verb = match v.get("verb") {
        None if v.get("cmd").is_some() => "query".to_string(),
        None => return Err("missing `verb` (or `cmd` + `dataset` for a query)".into()),
        Some(Value::String(s)) => s.clone(),
        Some(_) => return Err("`verb` must be a string".into()),
    };
    let command = match verb.as_str() {
        "query" => {
            let dataset = member_str(&v, "dataset", "the tenant to query")?;
            let request = Request::from_value(&v, default_id)?;
            Command::Query { dataset, request }
        }
        "load" => {
            let name = member_str(&v, "name", "the tenant name to register")?;
            let path = match v.get("path") {
                None => None,
                Some(Value::String(s)) => Some(s.clone()),
                Some(_) => return Err("`path` must be a string".into()),
            };
            let text = match v.get("text") {
                None => None,
                Some(Value::String(s)) => Some(s.clone()),
                Some(_) => return Err("`text` must be a string".into()),
            };
            if path.is_some() == text.is_some() {
                return Err("load needs exactly one of `path` or `text`".into());
            }
            Command::Load { name, path, text }
        }
        "unload" => Command::Unload { name: member_str(&v, "name", "the tenant to drop")? },
        "list" => Command::List,
        "stats" => Command::Stats,
        "ping" => Command::Ping,
        "quit" => Command::Quit,
        "shutdown" => Command::Shutdown,
        other => {
            return Err(format!(
            "unknown verb `{other}` (try query, load, unload, list, stats, ping, quit, shutdown)"
        ))
        }
    };
    Ok((Parsed { id, command }, v))
}

/// An `{"id":...,"ok":false,"error":...}` line, byte-compatible with the
/// engine's error responses.
pub fn error_line(id: &str, msg: &str) -> String {
    Response { id: id.to_string(), route: "error".to_string(), result: Err(msg.to_string()) }
        .to_json_line()
}

/// An `{"id":...,"ok":true,...}` control response with `extra` members in
/// the given (deterministic) order.
pub fn ok_line(id: &str, extra: Vec<(String, Value)>) -> String {
    let mut members = vec![
        ("id".to_string(), Value::String(id.to_string())),
        ("ok".to_string(), Value::Bool(true)),
    ];
    members.extend(extra);
    Value::Object(members).to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_with_and_without_verb() {
        let a = parse_line(br#"{"dataset":"d","cmd":"classify","point":[1]}"#, "7").unwrap();
        let b = parse_line(br#"{"verb":"query","dataset":"d","cmd":"classify","point":[1]}"#, "7")
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.id, "7");
        let Command::Query { dataset, request } = a.command else { panic!() };
        assert_eq!(dataset, "d");
        assert_eq!(request.id, "7");
    }

    #[test]
    fn control_verbs_parse() {
        let p =
            parse_line(br#"{"id":"x","verb":"load","name":"d","text":"+ 1\n- 0"}"#, "1").unwrap();
        assert_eq!(p.id, "x");
        assert!(matches!(p.command, Command::Load { .. }));
        for (line, want) in [
            (&br#"{"verb":"list"}"#[..], Command::List),
            (br#"{"verb":"stats"}"#, Command::Stats),
            (br#"{"verb":"ping"}"#, Command::Ping),
            (br#"{"verb":"quit"}"#, Command::Quit),
            (br#"{"verb":"shutdown"}"#, Command::Shutdown),
            (br#"{"verb":"unload","name":"n"}"#, Command::Unload { name: "n".into() }),
        ] {
            assert_eq!(parse_line(line, "1").unwrap().command, want);
        }
    }

    #[test]
    fn malformed_lines_rejected_not_panicking() {
        for bad in [
            &b"not json"[..],
            b"[1,2]",
            b"{\"verb\":\"fly\"}",
            b"{\"verb\":\"load\",\"name\":\"d\"}",
            b"{\"verb\":\"load\",\"name\":\"d\",\"path\":\"p\",\"text\":\"t\"}",
            b"{\"cmd\":\"classify\",\"point\":[1]}", // query without dataset
            b"{\"verb\":\"query\",\"dataset\":\"d\"}", // query without cmd
            b"\xff\xfe{\"verb\":\"ping\"}",          // invalid UTF-8
            b"{\"verb\":42}",
        ] {
            assert!(parse_line(bad, "1").is_err());
        }
    }

    #[test]
    fn response_builders_are_deterministic() {
        assert_eq!(error_line("3", "boom"), r#"{"id":"3","ok":false,"error":"boom"}"#);
        assert_eq!(
            ok_line("x", vec![("pong".into(), Value::Bool(true))]),
            r#"{"id":"x","ok":true,"pong":true}"#
        );
    }
}
