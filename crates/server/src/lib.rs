//! # knn-server — multi-tenant network serving over the explanation engine
//!
//! `knn-engine` serves in-process batches over one dataset; this crate turns
//! it into a network service multiplexing **many datasets and many
//! concurrent clients** onto shared engines — std-only TCP, no new
//! dependencies, speaking the newline-delimited JSON protocol of [`proto`]
//! (which reuses `knn_engine::json` end to end):
//!
//! ```text
//!  client ──TCP──► connection thread ──► registry (name → Arc<engine>)
//!                    │ reader: parse line, resolve tenant      [`registry`]
//!                    │ workers (≤ in-flight cap): ──► admission queue
//!                    │     tenant.run(req)            (global FIFO budget)
//!                    ▼                                        [`admission`]
//!                  writer: reorder by seq, stream responses in order
//! ```
//!
//! * **Dataset registry** — the `load` / `unload` / `list` verbs manage named
//!   tenants at runtime; each owns one lazily-built
//!   [`ExplanationEngine`](knn_engine::ExplanationEngine) behind an `Arc`,
//!   so every connection querying a tenant shares its
//!   explanation cache, single-flight table, and artifacts. Reloading a
//!   name atomically replaces the tenant.
//! * **Live mutation** — the `insert` / `remove` verbs mutate a tenant's
//!   dataset in place, bumping its version (epoch). Invalidation is
//!   selective (the engine carries the untouched class's indexes across
//!   the epoch and revalidates guarded cache entries), and the control
//!   barrier below makes mutations deterministic points in each
//!   connection's stream: after any mutation sequence, responses are
//!   byte-identical to a server freshly loaded with the final dataset.
//! * **Fair admission** — one global worker budget for the whole process. A
//!   query must win an admission slot (strict FIFO) before it executes, and a
//!   connection can hold at most `conn_inflight` slots, so one tenant's
//!   exponential-tail queries cannot starve the others. Budgets are logical
//!   and scheduling-only: *when* a query runs can change, its bytes cannot.
//! * **Streamed, order-preserving responses** — responses go out as soon as
//!   they are ready, but always in request order per connection. For a fixed
//!   registry, the response stream for a request stream is byte-identical to
//!   the sequential in-process engine — the property the integration tests
//!   pin across 16 concurrent clients.
//! * **Observability** — the `stats` verb reports `health`/`uptime_ms`
//!   (the cluster router's liveness probe; it never waits on the admission
//!   queue), the admission queue, and per-tenant counters (requests,
//!   errors, queued, active, cache hit/miss/eviction/coalescing,
//!   artifacts built) without touching response bytes.
//!
//! The `xknn serve` / `xknn client` subcommands wire this to the shell; the
//! `server_throughput` bench records cold/warm throughput at 1/4/16 clients
//! in `BENCH_server.json`.

#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod proto;
pub mod registry;

pub use admission::{Admission, AdmissionStats};
pub use client::Client;
pub use registry::{Registry, Tenant, TenantStats};

use knn_engine::bundle::BundleEntry;
use knn_engine::json::Value;
use knn_engine::{AuditOutcome, EngineConfig, Request};
use knn_telemetry::exposition::{push_header, push_sample, series_key};
use knn_telemetry::{AuditJob, SpanEvent, Telemetry};
use proto::Command;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Global worker budget: queries executing at once across all
    /// connections and tenants (`0` = all available cores).
    pub worker_budget: usize,
    /// Per-connection in-flight cap: one connection can occupy at most this
    /// many budget slots, so a single greedy client cannot drain the queue.
    pub conn_inflight: usize,
    /// Engine configuration applied to every loaded tenant. (`workers` is
    /// ignored here — the server schedules queries itself.)
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig { worker_budget: 0, conn_inflight: 4, engine: EngineConfig::default() }
    }
}

struct Shared {
    registry: Registry,
    admission: Admission,
    /// Process-wide latency histograms, counters and the slow-query ring
    /// (enabled at bind; shared with every tenant engine).
    telemetry: Arc<Telemetry>,
    conn_inflight: usize,
    shutdown: AtomicBool,
    addr: SocketAddr,
    /// Monotone connection ids. `(conn, seq)` is the capture reference: it
    /// names one served response in the black-box ring, the slow ring, and
    /// forced spans, and is the selector `repro` drills down on.
    conn_counter: AtomicU64,
    /// Bind time, for the `uptime_ms` field of `stats` — the cluster
    /// router's health probe wants a cheap liveness answer that never waits
    /// on the admission queue (and `stats` never does: it only snapshots
    /// counters).
    started: Instant,
    /// Per-tenant `(last scrape, request count at that scrape)` — the rate
    /// baseline for the `top` verb's QPS column. First scrape of a tenant
    /// rates over the whole uptime.
    top_baseline: Mutex<BTreeMap<String, (Instant, u64)>>,
}

/// The TCP server. Bind, optionally preload datasets through
/// [`Server::registry`], then [`Server::serve`] (blocking) or
/// [`Server::spawn`] (background thread).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    /// The shadow auditor (see [`auditor_loop`]): joined when the accept
    /// loop ends, after closing its queue.
    auditor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds to `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let budget = if config.worker_budget == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            config.worker_budget
        };
        let telemetry = Telemetry::new();
        telemetry.set_enabled(true);
        let shared = Arc::new(Shared {
            registry: Registry::with_telemetry(config.engine, telemetry.clone()),
            admission: Admission::new(budget),
            telemetry,
            conn_inflight: config.conn_inflight.max(1),
            shutdown: AtomicBool::new(false),
            addr,
            conn_counter: AtomicU64::new(0),
            started: Instant::now(),
            top_baseline: Mutex::new(BTreeMap::new()),
        });
        let auditor = {
            let shared = shared.clone();
            std::thread::spawn(move || auditor_loop(&shared))
        };
        Ok(Server { listener, shared, auditor: Some(auditor) })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The dataset registry (for preloading before serving).
    pub fn registry(&self) -> &Registry {
        &self.shared.registry
    }

    /// Accepts connections until a client sends `shutdown`. Each connection
    /// gets its own reader/worker/writer threads.
    pub fn serve(mut self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shared = self.shared.clone();
            std::thread::spawn(move || {
                // Connection I/O errors (client gone mid-write) just drop the
                // connection; they must never take the server down.
                let _ = serve_connection(stream, &shared);
            });
        }
        // Wake the auditor out of its queue wait and let it drain.
        self.shared.telemetry.audit().close();
        if let Some(auditor) = self.auditor.take() {
            let _ = auditor.join();
        }
        Ok(())
    }

    /// Runs [`Server::serve`] on a background thread, returning a handle that
    /// can stop it.
    pub fn spawn(self) -> ServerHandle {
        let shared = self.shared.clone();
        let join = std::thread::spawn(move || {
            let _ = self.serve();
        });
        ServerHandle { shared, join }
    }
}

/// Handle to a server running in the background (see [`Server::spawn`]).
pub struct ServerHandle {
    shared: Arc<Shared>,
    join: JoinHandle<()>,
}

impl ServerHandle {
    /// The server's address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Stops the accept loop and joins it. Connections already open finish
    /// their in-flight work on their own threads.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Poke the blocking accept so the loop observes the flag.
        let _ = TcpStream::connect(self.shared.addr);
        let _ = self.join.join();
    }
}

/// One in-flight query job: output slot, tenant, request, trace id (the
/// client's `"trace"` member — out-of-band, never echoed in the response),
/// connection id, and the raw request line (kept for the capture ring, so
/// a repro bundle replays exactly the bytes the client sent).
type Job = (u64, Arc<Tenant>, Request, Option<String>, u64, String);

/// The `"trace"` member of a request line, if it is a string. Any other
/// shape is ignored — the member is an out-of-band diagnostic hint, so it
/// must never turn a valid query into an error.
fn trace_member(v: &Value) -> Option<String> {
    match v.get("trace") {
        Some(Value::String(s)) if !s.is_empty() => Some(s.clone()),
        _ => None,
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    // Connection ids start at 1: `(conn:0, seq:0)` stays an impossible
    // capture reference (what in-process callers without a connection get).
    let conn = shared.conn_counter.fetch_add(1, Ordering::Relaxed) + 1;

    // Writer thread: receives (seq, line) in completion order, emits in
    // request order, flushing each line as soon as its turn comes (streamed).
    let (out_tx, out_rx) = mpsc::channel::<(u64, String)>();
    let writer = std::thread::spawn(move || writer_loop(stream, out_rx));

    // Worker pool: the per-connection in-flight cap. Workers pull jobs in
    // request order and each acquires a global admission slot per query.
    // `completed` counts finished queries so control verbs can act as a
    // connection-level barrier (see below).
    let (job_tx, job_rx) = mpsc::channel::<Job>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    let completed = Arc::new((Mutex::new(0u64), Condvar::new()));
    let workers: Vec<JoinHandle<()>> = (0..shared.conn_inflight)
        .map(|_| {
            let job_rx = job_rx.clone();
            let out_tx = out_tx.clone();
            let shared = shared.clone();
            let completed = completed.clone();
            std::thread::spawn(move || loop {
                let job = job_rx.lock().unwrap().recv();
                let Ok((seq, tenant, request, trace, conn, raw)) = job else { break };
                let line =
                    tenant.serve(&shared.admission, &request, trace.as_deref(), conn, seq, &raw);
                // A failed send just means the writer died with the client;
                // keep draining jobs anyway — the barrier below counts every
                // dispatched query, so a worker that stopped early would
                // strand the reader in `cv.wait` forever (thread + fd leak
                // per abandoned connection).
                let _ = out_tx.send((seq, line));
                let (count, cv) = &*completed;
                *count.lock().unwrap() += 1;
                cv.notify_all();
            })
        })
        .collect();

    let mut seq = 0u64;
    let mut lineno = 0u64;
    let mut dispatched = 0u64;
    let mut buf = Vec::new();
    let mut quit = false;
    let mut shutdown_after_flush = false;
    while !quit {
        buf.clear();
        if reader.read_until(b'\n', &mut buf)? == 0 {
            break; // client closed its half
        }
        lineno += 1;
        let line = buf.trim_ascii();
        if line.is_empty() {
            continue; // blank lines get no response, like `xknn batch`
        }
        let default_id = lineno.to_string();
        match proto::parse_line_value(line, &default_id) {
            Err(e) => {
                let msg = format!("line {lineno}: {e}");
                let _ = out_tx.send((seq, proto::error_line(&default_id, &msg)));
            }
            Ok((parsed, value)) => match parsed.command {
                Command::Query { dataset, request } => match shared.registry.get(&dataset) {
                    Some(tenant) => {
                        let raw = String::from_utf8_lossy(line).into_owned();
                        let _ =
                            job_tx.send((seq, tenant, request, trace_member(&value), conn, raw));
                        dispatched += 1;
                    }
                    None => {
                        let msg = format!("no dataset named `{dataset}` (try the load verb)");
                        let _ = out_tx.send((seq, proto::error_line(&request.id, &msg)));
                    }
                },
                command => {
                    // Barrier: a control verb runs only after every earlier
                    // query on this connection has finished, so pipelined
                    // `stats` counters, `unload` and `quit` are deterministic
                    // with respect to the requests before them.
                    let (count, cv) = &*completed;
                    let mut done = count.lock().unwrap();
                    while *done < dispatched {
                        done = cv.wait(done).unwrap();
                    }
                    drop(done);
                    // Shutdown closes this connection now but stops the
                    // accept loop only after the response below is flushed
                    // (see the end of this function) — otherwise the process
                    // could exit before the requester hears back.
                    if matches!(command, Command::Shutdown) {
                        shutdown_after_flush = true;
                    }
                    let (line, close) = run_control(shared, &parsed.id, command);
                    let _ = out_tx.send((seq, line));
                    quit = close;
                }
            },
        }
        seq += 1;
    }

    // Stop reading; let queued queries finish, then flush the writer.
    drop(job_tx);
    for w in workers {
        let _ = w.join();
    }
    drop(out_tx);
    let _ = writer.join();
    if shutdown_after_flush {
        shared.shutdown.store(true, Ordering::SeqCst);
        // Poke the blocking accept so the loop observes the flag.
        let _ = TcpStream::connect(shared.addr);
    }
    Ok(())
}

/// The continuous shadow audit: drains the sampler's queue and re-executes
/// each elected query against the live engine, comparing response bytes.
/// A re-execution is only sound at the epoch the original answered at, so
/// jobs whose tenant has moved on (or been reloaded) are dropped as stale —
/// the audit is opportunistic coverage, not a completeness proof. On
/// divergence the auditor force-records an `audit` span (anomaly
/// `diverged`, so `dump`/`trace` surface it) and auto-exports a repro
/// bundle for the offline `xknn replay` debugger.
fn auditor_loop(shared: &Arc<Shared>) {
    let audit = shared.telemetry.audit();
    loop {
        let Some(job) = audit.next(Duration::from_millis(50)) else {
            if audit.is_closed() {
                return;
            }
            continue;
        };
        let Some(tenant) = shared.registry.get(&job.tenant) else { continue };
        let Ok(req) = Request::from_json_bytes(job.request.as_bytes(), &job.id) else { continue };
        match tenant.engine.audit_replay(&req, job.epoch, &job.response) {
            AuditOutcome::Match | AuditOutcome::Stale => {}
            AuditOutcome::Diverged { got } => report_divergence(shared, &tenant, &job, &got),
        }
    }
}

/// A shadow-audit divergence is the one condition this whole plane exists
/// to catch: same request, same epoch, different bytes. Record it loudly
/// (forced anomaly span) and durably (auto-exported bundle under the OS
/// temp dir, path on stderr) — the serving path itself is never touched.
fn report_divergence(shared: &Arc<Shared>, tenant: &Tenant, job: &AuditJob, got: &str) {
    let recorder = shared.telemetry.recorder();
    recorder.push(
        SpanEvent {
            trace: job.trace.clone().unwrap_or_default(),
            seq: recorder.next_seq(),
            parent: 0,
            name: "audit",
            detail: format!(
                "conn={} seq={} got {} bytes, served {}",
                job.conn,
                job.seq,
                got.len(),
                job.response.len()
            ),
            tenant: job.tenant.clone(),
            epoch: job.epoch,
            start_us: recorder.now_us(),
            dur_us: 0,
            anomaly: "diverged",
        },
        true,
    );
    let bundle = tenant.bundle_with(vec![BundleEntry {
        conn: job.conn,
        seq: job.seq,
        backend: None,
        epoch: job.epoch,
        trace: job.trace.clone(),
        request: job.request.clone(),
        response: job.response.clone(),
    }]);
    let path = std::env::temp_dir()
        .join(format!("xknn-audit-{}-{}-{}.json", job.tenant, job.conn, job.seq));
    match std::fs::write(&path, bundle.to_json() + "\n") {
        Ok(()) => eprintln!(
            "xknn shadow audit: divergence on tenant `{}` (conn={} seq={}); repro bundle at {}",
            job.tenant,
            job.conn,
            job.seq,
            path.display()
        ),
        Err(e) => eprintln!(
            "xknn shadow audit: divergence on tenant `{}` (conn={} seq={}); bundle export failed: {e}",
            job.tenant, job.conn, job.seq
        ),
    }
}

fn writer_loop(stream: TcpStream, rx: Receiver<(u64, String)>) {
    let mut out = BufWriter::new(stream);
    let mut next = 0u64;
    let mut pending: BTreeMap<u64, String> = BTreeMap::new();
    for (seq, line) in rx {
        pending.insert(seq, line);
        while let Some(line) = pending.remove(&next) {
            let io = out
                .write_all(line.as_bytes())
                .and_then(|()| out.write_all(b"\n"))
                .and_then(|()| out.flush());
            if io.is_err() {
                return; // client gone; drop the rest
            }
            next += 1;
        }
    }
}

/// Applies one mutation to a tenant's shared engine and formats the
/// response: `{"ok":true,"<verbed>":name,"version":...,"points":...}`.
/// Runs at the connection's control barrier, so pipelined queries before
/// the mutation answer at the old version and queries after it at the new.
fn run_mutation(
    shared: &Arc<Shared>,
    id: &str,
    name: &str,
    mutation: knn_engine::Mutation,
    verbed: &str,
) -> (String, bool) {
    let Some(tenant) = shared.registry.get(name) else {
        let msg = format!("no dataset named `{name}` (try the load verb)");
        return (proto::error_line(id, &msg), false);
    };
    match tenant.apply_logged(mutation) {
        Err(e) => (proto::error_line(id, &e), false),
        Ok(receipt) => {
            let line = proto::ok_line(
                id,
                vec![
                    (verbed.to_string(), Value::String(name.to_string())),
                    ("version".into(), Value::Number(receipt.epoch as f64)),
                    ("points".into(), Value::Number(receipt.points as f64)),
                ],
            );
            (line, false)
        }
    }
}

/// Renders the per-tenant engine counters (region enumeration, cache
/// events, artifact economy, mutations, memory gauges, work accounting,
/// admission) as Prometheus text series, appended after the telemetry
/// registry's histograms by the `metrics` verb. Every family carries its
/// `# HELP` / `# TYPE` headers (the exposition validator rejects headerless
/// series). Counter values are engine-lifetime; families are emitted in a
/// fixed order and tenants sorted by name, so the exposition is
/// deterministic for a given counter state.
fn engine_series(shared: &Arc<Shared>) -> String {
    let stats: Vec<TenantStats> = shared.registry.list().iter().map(|t| t.stats()).collect();
    let mut out = String::new();

    push_header(&mut out, "knn_engine_epoch", "gauge", "Current dataset version per tenant.");
    for s in &stats {
        push_sample(
            &mut out,
            &series_key("knn_engine_epoch", &[("tenant", &s.name)]),
            s.engine.epoch,
        );
    }
    push_header(
        &mut out,
        "knn_engine_region_yields_total",
        "counter",
        "Region polyhedra yielded by the lazy enumerator.",
    );
    for s in &stats {
        push_sample(
            &mut out,
            &series_key("knn_engine_region_yields_total", &[("tenant", &s.name)]),
            s.engine.regions.yields,
        );
    }
    push_header(
        &mut out,
        "knn_engine_region_pruned_total",
        "counter",
        "Candidate regions pruned, by rule.",
    );
    for s in &stats {
        for (rule, n) in [
            ("empty", s.engine.regions.pruned_empty),
            ("dominated", s.engine.regions.pruned_dominated),
            ("memo", s.engine.regions.memo_pruned),
        ] {
            push_sample(
                &mut out,
                &series_key(
                    "knn_engine_region_pruned_total",
                    &[("tenant", &s.name), ("rule", rule)],
                ),
                n,
            );
        }
    }
    push_header(
        &mut out,
        "knn_engine_cache_events_total",
        "counter",
        "Explanation-cache events, by kind.",
    );
    for s in &stats {
        for (event, n) in [
            ("hit", s.engine.cache.hits),
            ("miss", s.engine.cache.misses),
            ("coalesced", s.engine.coalesced),
            ("revalidated", s.engine.revalidated),
            ("revalidation_failed", s.engine.revalidation_failed),
            ("eviction", s.engine.cache.evictions),
        ] {
            push_sample(
                &mut out,
                &series_key(
                    "knn_engine_cache_events_total",
                    &[("tenant", &s.name), ("event", event)],
                ),
                n,
            );
        }
    }
    // Fill installs are deliberately NOT an event kind above: a filled entry
    // is not a hit (the replica never saw the query) and not a miss (nothing
    // was computed), so folding it into the hit/miss family would corrupt
    // hit-rate math once cross-replica fill propagates entries.
    push_header(
        &mut out,
        "knn_engine_cache_fill_total",
        "counter",
        "Cache entries installed by cross-replica fill pushes.",
    );
    for s in &stats {
        push_sample(
            &mut out,
            &series_key("knn_engine_cache_fill_total", &[("tenant", &s.name)]),
            s.engine.filled,
        );
    }
    push_header(
        &mut out,
        "knn_engine_artifact_cells_total",
        "counter",
        "Artifact cells built fresh vs carried across epochs.",
    );
    for s in &stats {
        for (kind, n) in
            [("built", s.engine.artifacts_built_total), ("carried", s.engine.artifacts_carried)]
        {
            push_sample(
                &mut out,
                &series_key(
                    "knn_engine_artifact_cells_total",
                    &[("tenant", &s.name), ("kind", kind)],
                ),
                n,
            );
        }
    }
    push_header(
        &mut out,
        "knn_engine_artifact_build_us_total",
        "counter",
        "Cumulative artifact build time, microseconds.",
    );
    for s in &stats {
        push_sample(
            &mut out,
            &series_key("knn_engine_artifact_build_us_total", &[("tenant", &s.name)]),
            s.engine.artifact_build_us,
        );
    }
    push_header(&mut out, "knn_engine_mutations_total", "counter", "Applied mutations, by op.");
    for s in &stats {
        for (op, n) in [("insert", s.engine.inserts), ("remove", s.engine.removes)] {
            push_sample(
                &mut out,
                &series_key("knn_engine_mutations_total", &[("tenant", &s.name), ("op", op)]),
                n,
            );
        }
    }
    push_header(
        &mut out,
        "knn_engine_bytes",
        "gauge",
        "Estimated resident bytes per tenant, by component.",
    );
    for s in &stats {
        let r = &s.engine.resources;
        for (component, n) in [
            ("dataset", r.dataset_bytes),
            ("mutation_log", r.log_bytes),
            ("artifacts", r.artifact_bytes),
            ("region_memo", r.memo_bytes),
            ("cache", r.cache_bytes),
        ] {
            push_sample(
                &mut out,
                &series_key("knn_engine_bytes", &[("tenant", &s.name), ("component", component)]),
                n,
            );
        }
    }
    push_header(
        &mut out,
        "knn_engine_mutation_log_entries",
        "gauge",
        "Mutations retained in the compacted revalidation log.",
    );
    for s in &stats {
        push_sample(
            &mut out,
            &series_key("knn_engine_mutation_log_entries", &[("tenant", &s.name)]),
            s.engine.resources.log_len,
        );
    }
    push_header(
        &mut out,
        "knn_engine_region_memo_entries",
        "gauge",
        "Region-memo occupancy (see knn_engine_region_memo_capacity).",
    );
    for s in &stats {
        push_sample(
            &mut out,
            &series_key("knn_engine_region_memo_entries", &[("tenant", &s.name)]),
            s.engine.resources.memo_len,
        );
    }
    push_header(
        &mut out,
        "knn_engine_region_memo_capacity",
        "gauge",
        "Region-memo capacity bound.",
    );
    for s in &stats {
        push_sample(
            &mut out,
            &series_key("knn_engine_region_memo_capacity", &[("tenant", &s.name)]),
            s.engine.resources.memo_cap,
        );
    }
    push_header(
        &mut out,
        "knn_engine_work_total",
        "counter",
        "Solver-layer work per tenant and route, by kind.",
    );
    for s in &stats {
        for w in &s.work {
            for (kind, n) in [
                ("compute", w.computes),
                ("lp_solve", w.lp_solves),
                ("qp_solve", w.qp_solves),
                ("kd_visit", w.kd_visits),
                ("region_yield", w.region_yields),
            ] {
                push_sample(
                    &mut out,
                    &series_key(
                        "knn_engine_work_total",
                        &[("tenant", &s.name), ("route", &w.route), ("kind", kind)],
                    ),
                    n,
                );
            }
        }
    }
    push_header(
        &mut out,
        "knn_engine_solve_us_total",
        "counter",
        "Cumulative solve CPU time per tenant and route, microseconds.",
    );
    for s in &stats {
        for w in &s.work {
            push_sample(
                &mut out,
                &series_key(
                    "knn_engine_solve_us_total",
                    &[("tenant", &s.name), ("route", &w.route)],
                ),
                w.solve_us,
            );
        }
    }
    push_header(
        &mut out,
        "knn_audit_checked_total",
        "counter",
        "Shadow-audit re-executions compared against served bytes.",
    );
    for s in &stats {
        push_sample(
            &mut out,
            &series_key("knn_audit_checked_total", &[("tenant", &s.name)]),
            s.engine.audit_checked,
        );
    }
    push_header(
        &mut out,
        "knn_audit_diverged_total",
        "counter",
        "Shadow-audit re-executions whose bytes diverged from the served response.",
    );
    for s in &stats {
        push_sample(
            &mut out,
            &series_key("knn_audit_diverged_total", &[("tenant", &s.name)]),
            s.engine.audit_diverged,
        );
    }
    push_header(&mut out, "knn_server_requests_total", "counter", "Queries completed per tenant.");
    for s in &stats {
        push_sample(
            &mut out,
            &series_key("knn_server_requests_total", &[("tenant", &s.name)]),
            s.requests,
        );
    }
    push_header(
        &mut out,
        "knn_server_errors_total",
        "counter",
        "Error responses among completed queries.",
    );
    for s in &stats {
        push_sample(
            &mut out,
            &series_key("knn_server_errors_total", &[("tenant", &s.name)]),
            s.errors,
        );
    }
    push_header(
        &mut out,
        "knn_server_tenant_queued",
        "gauge",
        "Queries currently waiting for admission, per tenant.",
    );
    for s in &stats {
        push_sample(
            &mut out,
            &series_key("knn_server_tenant_queued", &[("tenant", &s.name)]),
            s.queued,
        );
    }
    push_header(
        &mut out,
        "knn_server_tenant_active",
        "gauge",
        "Queries currently executing, per tenant.",
    );
    for s in &stats {
        push_sample(
            &mut out,
            &series_key("knn_server_tenant_active", &[("tenant", &s.name)]),
            s.active,
        );
    }
    let a = shared.admission.stats();
    push_header(&mut out, "knn_server_admission_budget", "gauge", "Global worker budget.");
    push_sample(&mut out, "knn_server_admission_budget", a.budget as u64);
    push_header(
        &mut out,
        "knn_server_admission_waiting",
        "gauge",
        "Queries waiting in the global admission queue.",
    );
    push_sample(&mut out, "knn_server_admission_waiting", a.waiting as u64);
    push_header(
        &mut out,
        "knn_server_admission_queue_depth",
        "gauge",
        "Admission queue depth (waiting; alias of knn_server_admission_waiting).",
    );
    push_sample(&mut out, "knn_server_admission_queue_depth", a.waiting as u64);
    push_header(
        &mut out,
        "knn_server_admission_granted_total",
        "counter",
        "Admission slots granted over the process lifetime.",
    );
    push_sample(&mut out, "knn_server_admission_granted_total", a.granted);
    out
}

/// One `top` row per tenant, ranked by estimated bytes (descending, then
/// name): memory by component, request rate since the previous `top`
/// scrape, and SLO burn. Feeds the registered SLO objectives a fresh
/// observation window first, so the burn columns reflect traffic up to
/// this call.
fn top_rows(shared: &Arc<Shared>) -> Vec<Value> {
    let num64 = |n: u64| Value::Number(n as f64);
    let now = Instant::now();
    let mut baseline = shared.top_baseline.lock().unwrap();
    let mut rows: Vec<(u64, String, Value)> = shared
        .registry
        .list()
        .iter()
        .map(|t| {
            let s = t.stats();
            let r = s.engine.resources;
            let (t0, req0) =
                baseline.insert(s.name.clone(), (now, s.requests)).unwrap_or((shared.started, 0));
            let dt = now.duration_since(t0).as_secs_f64().max(1e-6);
            let qps = (s.requests.saturating_sub(req0)) as f64 / dt;
            let slo = shared.telemetry.observe_slo(&s.name);
            let row = Value::Object(vec![
                ("tenant".into(), Value::String(s.name.clone())),
                ("bytes_total".into(), num64(r.total_bytes())),
                (
                    "bytes".into(),
                    Value::Object(vec![
                        ("dataset".into(), num64(r.dataset_bytes)),
                        ("mutation_log".into(), num64(r.log_bytes)),
                        ("artifacts".into(), num64(r.artifact_bytes)),
                        ("region_memo".into(), num64(r.memo_bytes)),
                        ("cache".into(), num64(r.cache_bytes)),
                    ]),
                ),
                ("requests".into(), num64(s.requests)),
                ("qps".into(), Value::Number((qps * 100.0).round() / 100.0)),
                (
                    "slo_burn".into(),
                    Value::Number(
                        slo.as_ref().map_or(0.0, |st| (st.burn * 10_000.0).round() / 10_000.0),
                    ),
                ),
                ("slo_violations".into(), num64(slo.as_ref().map_or(0, |st| st.violations))),
            ]);
            (r.total_bytes(), s.name, row)
        })
        .collect();
    rows.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    rows.into_iter().map(|(_, _, row)| row).collect()
}

/// One span event as a JSON object — every field, plus an (initially
/// empty) `children` array the tree builder and the cluster router's
/// stitcher fill in.
fn span_node(ev: &SpanEvent) -> Value {
    Value::Object(vec![
        ("name".into(), Value::String(ev.name.to_string())),
        ("detail".into(), Value::String(ev.detail.clone())),
        ("tenant".into(), Value::String(ev.tenant.clone())),
        ("epoch".into(), Value::Number(ev.epoch as f64)),
        ("start_us".into(), Value::Number(ev.start_us as f64)),
        ("dur_us".into(), Value::Number(ev.dur_us as f64)),
        ("anomaly".into(), Value::String(ev.anomaly.to_string())),
        ("children".into(), Value::Array(Vec::new())),
    ])
}

/// Reconstructs the span tree of `spans` (expected sorted by
/// `(start_us, seq)`, as [`Recorder::spans_for`](knn_telemetry::Recorder)
/// hands them out): every span whose `parent` is 0 — or points at a span
/// no longer retained — becomes a root; the rest nest under their parent,
/// preserving start order. The cluster router reuses this to render each
/// process's local tree before grafting backend trees under its dispatch
/// spans.
pub fn span_tree(spans: &[SpanEvent]) -> Vec<Value> {
    // Trees are tiny (one query's spans); quadratic child-gathering keeps
    // the builder free of index bookkeeping.
    fn build(spans: &[SpanEvent], parent_seq: u64) -> Vec<Value> {
        spans
            .iter()
            .filter(|ev| ev.parent == parent_seq)
            .map(|ev| {
                let mut node = span_node(ev);
                let children = build(spans, ev.seq);
                if let Value::Object(members) = &mut node {
                    if let Some((_, v)) = members.iter_mut().find(|(k, _)| k == "children") {
                        *v = Value::Array(children);
                    }
                }
                node
            })
            .collect()
    }
    let retained: std::collections::BTreeSet<u64> = spans.iter().map(|ev| ev.seq).collect();
    let mut roots = build(spans, 0);
    // Orphans (parent evicted from the ring) surface as roots rather than
    // disappearing: a trace is forensic data, partial beats silent.
    for ev in spans.iter().filter(|ev| ev.parent != 0 && !retained.contains(&ev.parent)) {
        roots.push(span_node(ev));
    }
    roots
}

/// Executes one control verb, returning the response line and whether the
/// connection should close afterwards.
fn run_control(shared: &Arc<Shared>, id: &str, command: Command) -> (String, bool) {
    let num = |n: usize| Value::Number(n as f64);
    let num64 = |n: u64| Value::Number(n as f64);
    match command {
        Command::Query { .. } => unreachable!("queries are dispatched by the caller"),
        Command::Load { name, path, text, replay } => {
            let text = match (text, path) {
                (Some(t), None) => t,
                (None, Some(p)) => match std::fs::read_to_string(&p) {
                    Ok(t) => t,
                    Err(e) => {
                        return (proto::error_line(id, &format!("cannot read {p}: {e}")), false)
                    }
                },
                _ => unreachable!("parse_line enforces exactly one of path/text"),
            };
            match shared.registry.load_with_replay(&name, &text, &replay) {
                Err(e) => (proto::error_line(id, &e), false),
                Ok(tenant) => {
                    let s = tenant.stats();
                    let line = proto::ok_line(
                        id,
                        vec![
                            ("loaded".into(), Value::String(name)),
                            ("points".into(), num(s.points)),
                            ("dim".into(), num(s.dim)),
                            ("version".into(), num64(s.engine.epoch)),
                        ],
                    );
                    (line, false)
                }
            }
        }
        Command::Unload { name } => match shared.registry.unload(&name) {
            Err(e) => (proto::error_line(id, &e), false),
            Ok(()) => (proto::ok_line(id, vec![("unloaded".into(), Value::String(name))]), false),
        },
        Command::Insert { name, label, point } => run_mutation(
            shared,
            id,
            &name,
            knn_engine::Mutation::Insert { point, label },
            "inserted",
        ),
        Command::Remove { name, index } => {
            run_mutation(shared, id, &name, knn_engine::Mutation::Remove { id: index }, "removed")
        }
        Command::List => {
            let datasets: Vec<Value> = shared
                .registry
                .list()
                .iter()
                .map(|t| {
                    let s = t.stats();
                    Value::Object(vec![
                        ("name".into(), Value::String(s.name)),
                        ("points".into(), num(s.points)),
                        ("dim".into(), num(s.dim)),
                    ])
                })
                .collect();
            (proto::ok_line(id, vec![("datasets".into(), Value::Array(datasets))]), false)
        }
        Command::Stats => {
            let a = shared.admission.stats();
            let uptime_ms = shared.started.elapsed().as_millis() as u64;
            let admission = Value::Object(vec![
                ("budget".into(), num(a.budget)),
                ("available".into(), num(a.available)),
                ("waiting".into(), num(a.waiting)),
                ("granted".into(), num64(a.granted)),
            ]);
            let tenants: Vec<Value> = shared
                .registry
                .list()
                .iter()
                .map(|t| {
                    let s = t.stats();
                    let cache = Value::Object(vec![
                        ("hits".into(), num64(s.engine.cache.hits)),
                        ("misses".into(), num64(s.engine.cache.misses)),
                        ("coalesced".into(), num64(s.engine.coalesced)),
                        ("revalidated".into(), num64(s.engine.revalidated)),
                        ("filled".into(), num64(s.engine.filled)),
                        ("evictions".into(), num64(s.engine.cache.evictions)),
                        ("entries".into(), num(s.engine.cache.entries)),
                        ("capacity".into(), num(s.engine.cache.capacity)),
                    ]);
                    Value::Object(vec![
                        ("name".into(), Value::String(s.name)),
                        ("version".into(), num64(s.engine.epoch)),
                        ("points".into(), num(s.points)),
                        ("points_pos".into(), num(s.points_pos)),
                        ("points_neg".into(), num(s.points_neg)),
                        ("inserts".into(), num64(s.engine.inserts)),
                        ("removes".into(), num64(s.engine.removes)),
                        ("requests".into(), num64(s.requests)),
                        ("errors".into(), num64(s.errors)),
                        ("queued".into(), num64(s.queued)),
                        ("active".into(), num64(s.active)),
                        ("cache".into(), cache),
                        ("inflight".into(), num(s.engine.inflight)),
                        ("artifacts_built".into(), num(s.engine.artifacts_built)),
                        ("artifacts_built_total".into(), num64(s.engine.artifacts_built_total)),
                        ("artifacts_carried".into(), num64(s.engine.artifacts_carried)),
                        ("artifact_build_us".into(), num64(s.engine.artifact_build_us)),
                        ("revalidation_failed".into(), num64(s.engine.revalidation_failed)),
                        ("audit_checked".into(), num64(s.engine.audit_checked)),
                        ("audit_diverged".into(), num64(s.engine.audit_diverged)),
                        (
                            "regions".into(),
                            Value::Object(vec![
                                ("yields".into(), num64(s.engine.regions.yields)),
                                ("pruned_empty".into(), num64(s.engine.regions.pruned_empty)),
                                (
                                    "pruned_dominated".into(),
                                    num64(s.engine.regions.pruned_dominated),
                                ),
                                ("memo_pruned".into(), num64(s.engine.regions.memo_pruned)),
                            ]),
                        ),
                    ])
                })
                .collect();
            let line = proto::ok_line(
                id,
                vec![
                    ("health".into(), Value::String("ok".into())),
                    ("uptime_ms".into(), num64(uptime_ms)),
                    ("admission".into(), admission),
                    ("tenants".into(), Value::Array(tenants)),
                ],
            );
            (line, false)
        }
        Command::Metrics => {
            // Scrapes drive the SLO windows: each `metrics` (or `top`) call
            // diffs the cumulative histograms into one observation window.
            shared.telemetry.observe_slo_all();
            let mut text = shared.telemetry.render();
            text.push_str(&engine_series(shared));
            (proto::ok_line(id, vec![("metrics".into(), Value::String(text))]), false)
        }
        Command::Top => {
            (proto::ok_line(id, vec![("top".into(), Value::Array(top_rows(shared)))]), false)
        }
        Command::Slo { name, objective } => match objective {
            Some(o) => match shared.telemetry.slo().set(&name, o) {
                Err(e) => (proto::error_line(id, &e), false),
                Ok(()) => {
                    let line = proto::ok_line(
                        id,
                        vec![
                            ("slo".into(), Value::String(name)),
                            ("quantile".into(), Value::Number(o.quantile)),
                            ("threshold_us".into(), num64(o.threshold_us)),
                            ("windows".into(), num(o.windows)),
                        ],
                    );
                    (line, false)
                }
            },
            None => match shared.telemetry.observe_slo(&name) {
                None => {
                    let msg =
                        format!("no slo objective for `{name}` (set one with `threshold_us`)");
                    (proto::error_line(id, &msg), false)
                }
                Some(s) => {
                    let line = proto::ok_line(
                        id,
                        vec![
                            ("slo".into(), Value::String(s.tenant)),
                            ("quantile".into(), Value::Number(s.objective.quantile)),
                            ("threshold_us".into(), num64(s.objective.threshold_us)),
                            ("windows".into(), num(s.objective.windows)),
                            ("windows_held".into(), num(s.windows_held)),
                            ("good".into(), num64(s.good)),
                            ("total".into(), num64(s.total)),
                            ("quantile_us".into(), num64(s.quantile_us)),
                            ("short_burn".into(), Value::Number(s.short_burn)),
                            ("long_burn".into(), Value::Number(s.long_burn)),
                            ("burn".into(), Value::Number(s.burn)),
                            ("violations".into(), num64(s.violations)),
                        ],
                    );
                    (line, false)
                }
            },
        },
        Command::Slow => {
            let slow: Vec<Value> = shared
                .telemetry
                .drain_slow()
                .into_iter()
                .map(|q| {
                    Value::Object(vec![
                        ("tenant".into(), Value::String(q.tenant)),
                        ("id".into(), Value::String(q.id)),
                        ("route".into(), Value::String(q.route)),
                        ("cache".into(), Value::String(q.cache)),
                        ("epoch".into(), num64(q.epoch)),
                        ("conn".into(), num64(q.conn)),
                        ("seq".into(), num64(q.seq)),
                        ("total_us".into(), num64(q.total_us)),
                        ("admission_us".into(), num64(q.admission_us)),
                        ("plan_us".into(), num64(q.plan_us)),
                        ("artifact_us".into(), num64(q.artifact_us)),
                        ("cache_us".into(), num64(q.cache_us)),
                        ("solve_us".into(), num64(q.solve_us)),
                        ("trace".into(), q.trace.map(Value::String).unwrap_or(Value::Null)),
                    ])
                })
                .collect();
            (proto::ok_line(id, vec![("slow".into(), Value::Array(slow))]), false)
        }
        Command::Trace { trace } => {
            let spans = shared.telemetry.recorder().spans_for(&trace);
            let line = proto::ok_line(
                id,
                vec![
                    ("trace".into(), Value::String(trace)),
                    ("spans".into(), Value::Array(span_tree(&spans))),
                ],
            );
            (line, false)
        }
        Command::Dump => {
            let events = shared.telemetry.recorder().all();
            let chrome = knn_telemetry::chrome::chrome_trace_json(&events, 0);
            let line = proto::ok_line(
                id,
                vec![
                    ("events".into(), num(events.len())),
                    ("chrome".into(), Value::String(chrome)),
                ],
            );
            (line, false)
        }
        Command::Fill { name, epoch, request, response } => {
            let Some(tenant) = shared.registry.get(&name) else {
                let msg = format!("no dataset named `{name}` (try the load verb)");
                return (proto::error_line(id, &msg), false);
            };
            // Best-effort by design: a stale epoch or an already-present
            // newer entry answers ok with filled:false rather than an error,
            // so routers can fire-and-forget without error-path bookkeeping.
            let installed = tenant.engine.insert_external(
                epoch,
                &request,
                response.route.clone(),
                response.result.clone(),
            );
            let line = proto::ok_line(
                id,
                vec![
                    ("fill".into(), Value::String(name)),
                    ("filled".into(), Value::Bool(installed)),
                ],
            );
            (line, false)
        }
        Command::Repro { trace, conn, seq, name } => {
            let capture = shared.telemetry.capture();
            let captures = if let Some(trace) = &trace {
                capture.by_trace(trace)
            } else if let (Some(conn), Some(seq)) = (conn, seq) {
                capture.by_ref(conn, seq).into_iter().collect()
            } else {
                capture.for_tenant(name.as_deref().unwrap_or_default())
            };
            let Some(first) = captures.first() else {
                let msg = "no captured requests match that selector (the capture ring is bounded and keeps the newest)";
                return (proto::error_line(id, msg), false);
            };
            // A bundle replays one tenant's seed; a trace that touched
            // several tenants exports against the first one captured.
            let tenant_name = first.tenant.clone();
            let Some(tenant) = shared.registry.get(&tenant_name) else {
                let msg = format!("no dataset named `{tenant_name}` (try the load verb)");
                return (proto::error_line(id, &msg), false);
            };
            let entries: Vec<BundleEntry> = captures
                .iter()
                .filter(|e| e.tenant == tenant_name)
                .map(|e| BundleEntry {
                    conn: e.conn,
                    seq: e.seq,
                    backend: None,
                    epoch: e.epoch,
                    trace: e.trace.clone(),
                    request: e.request.clone(),
                    response: e.response.clone(),
                })
                .collect();
            let bundle = tenant.bundle_with(entries);
            let line = proto::ok_line(
                id,
                vec![
                    ("repro".into(), Value::String(tenant_name)),
                    ("entries".into(), num(bundle.entries.len())),
                    ("bundle".into(), Value::String(bundle.to_json())),
                ],
            );
            (line, false)
        }
        Command::Audit { sample } => {
            let audit = shared.telemetry.audit();
            if let Some(rate) = sample {
                audit.set_rate(rate);
            }
            let (mut checked, mut diverged) = (0u64, 0u64);
            for t in shared.registry.list() {
                let s = t.stats();
                checked += s.engine.audit_checked;
                diverged += s.engine.audit_diverged;
            }
            let line = proto::ok_line(
                id,
                vec![
                    ("sample".into(), num64(audit.rate())),
                    ("checked".into(), num64(checked)),
                    ("diverged".into(), num64(diverged)),
                    ("queued".into(), num(audit.queued())),
                    ("dropped".into(), num64(audit.dropped())),
                ],
            );
            (line, false)
        }
        Command::Ping => (proto::ok_line(id, vec![("pong".into(), Value::Bool(true))]), false),
        Command::Quit => (proto::ok_line(id, vec![("bye".into(), Value::Bool(true))]), true),
        Command::Shutdown => {
            // The caller sets the flag after this connection is flushed.
            (proto::ok_line(id, vec![("shutdown".into(), Value::Bool(true))]), true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOOL: &str = "+ 1 1 1\n+ 1 1 0\n- 0 0 0\n- 0 0 1\n";

    fn spawn_server() -> ServerHandle {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        server.registry().load("toy", BOOL).unwrap();
        server.spawn()
    }

    #[test]
    fn end_to_end_lifecycle() {
        let handle = spawn_server();
        let mut c = Client::connect(handle.addr()).unwrap();

        let pong = c.roundtrip(r#"{"id":"p","verb":"ping"}"#).unwrap();
        assert_eq!(pong, r#"{"id":"p","ok":true,"pong":true}"#);

        let resp = c
            .roundtrip(
                r#"{"dataset":"toy","id":"q","cmd":"classify","metric":"hamming","point":[1,1,1]}"#,
            )
            .unwrap();
        assert_eq!(resp, r#"{"id":"q","ok":true,"route":"hamming-index","label":"+"}"#);

        let loaded = c
            .roundtrip(r#"{"id":"l","verb":"load","name":"inline","text":"+ 1 0\n- 0 1"}"#)
            .unwrap();
        assert_eq!(
            loaded,
            r#"{"id":"l","ok":true,"loaded":"inline","points":2,"dim":2,"version":0}"#
        );

        let list = c.roundtrip(r#"{"verb":"list"}"#).unwrap();
        assert!(list.contains(r#""name":"inline""#) && list.contains(r#""name":"toy""#), "{list}");

        let stats = c.roundtrip(r#"{"verb":"stats"}"#).unwrap();
        assert!(stats.contains(r#""admission""#) && stats.contains(r#""requests":1"#), "{stats}");

        let unloaded = c.roundtrip(r#"{"verb":"unload","name":"inline"}"#).unwrap();
        assert!(unloaded.contains(r#""ok":true"#), "{unloaded}");
        let gone = c.roundtrip(r#"{"dataset":"inline","cmd":"classify","point":[1,0]}"#).unwrap();
        assert!(gone.contains("no dataset named"), "{gone}");

        let bye = c.roundtrip(r#"{"verb":"quit"}"#).unwrap();
        assert!(bye.contains(r#""bye":true"#), "{bye}");
        assert_eq!(c.recv().unwrap(), None, "server closes after quit");

        handle.shutdown();
    }

    #[test]
    fn responses_keep_request_order_while_pipelined() {
        let handle = spawn_server();
        let mut c = Client::connect(handle.addr()).unwrap();
        let mut input = String::new();
        for i in 0..40 {
            let cmd = if i % 3 == 0 { "counterfactual" } else { "classify" };
            input.push_str(&format!(
                "{{\"dataset\":\"toy\",\"id\":\"q{i}\",\"cmd\":\"{cmd}\",\"metric\":\"hamming\",\"point\":[{},{},{}]}}\n",
                i % 2,
                (i / 2) % 2,
                (i / 4) % 2
            ));
        }
        let out = c.run_stream(&input).unwrap();
        assert_eq!(out.len(), 40);
        for (i, line) in out.iter().enumerate() {
            assert!(line.starts_with(&format!("{{\"id\":\"q{i}\"")), "slot {i}: {line}");
        }
        handle.shutdown();
    }

    #[test]
    fn malformed_lines_get_error_responses_and_the_connection_survives() {
        let handle = spawn_server();
        let mut c = Client::connect(handle.addr()).unwrap();
        for bad in ["not json", "{\"verb\":\"fly\"}", "[]", "{\"cmd\":\"classify\"}"] {
            let resp = c.roundtrip(bad).unwrap();
            assert!(resp.contains(r#""ok":false"#), "{bad} -> {resp}");
        }
        // Still serving after the garbage:
        let resp = c
            .roundtrip(r#"{"dataset":"toy","cmd":"classify","metric":"hamming","point":[0,0,0]}"#)
            .unwrap();
        assert!(resp.contains(r#""label":"-""#), "{resp}");
        handle.shutdown();
    }

    /// The `fill` verb end to end: an explanation computed against one
    /// tenant installs into a twin tenant holding the same dataset at the
    /// same epoch, after which the twin answers byte-identically from cache
    /// (counted under `filled`, not hits/misses) — while a fill labeled with
    /// a stale epoch is dropped with `filled:false`.
    #[test]
    fn fill_verb_installs_epoch_checked_entries() {
        let handle = spawn_server();
        let mut c = Client::connect(handle.addr()).unwrap();
        let loaded = c
            .roundtrip(r#"{"id":"l","verb":"load","name":"twin","text":"+ 1 1 1\n+ 1 1 0\n- 0 0 0\n- 0 0 1"}"#)
            .unwrap();
        assert!(loaded.contains(r#""ok":true"#), "{loaded}");

        // Compute one cold explanation on `toy`.
        let q = r#"{"dataset":"toy","id":"q","cmd":"counterfactual","metric":"hamming","point":[1,1,1]}"#;
        let computed = c.roundtrip(q).unwrap();
        assert!(computed.contains(r#""ok":true"#), "{computed}");

        // Push it into `twin` at the matching epoch: installed.
        let fill = format!(
            r#"{{"id":"f","verb":"fill","name":"twin","epoch":0,"req":{},"resp":{}}}"#,
            Value::String(q.into()).to_json(),
            Value::String(computed.clone()).to_json(),
        );
        let ack = c.roundtrip(&fill).unwrap();
        assert_eq!(ack, r#"{"id":"f","ok":true,"fill":"twin","filled":true}"#);

        // The twin now answers from cache, byte-identically to the origin.
        let qt = q.replace(r#""dataset":"toy""#, r#""dataset":"twin""#);
        assert_eq!(c.roundtrip(&qt).unwrap(), computed);
        let stats = c.roundtrip(r#"{"verb":"stats"}"#).unwrap();
        let twin = stats.split(r#""name":"twin""#).nth(1).expect("twin stats");
        for member in [r#""hits":1"#, r#""misses":0"#, r#""filled":1"#] {
            assert!(twin.contains(member), "missing {member}: {twin}");
        }
        let metrics = c.roundtrip(r#"{"verb":"metrics"}"#).unwrap();
        assert!(metrics.contains(r#"knn_engine_cache_fill_total{tenant=\"twin\"} 1"#), "{metrics}");

        // Mutate the twin (epoch 0 → 1): the same fill is now stale and dropped.
        let ins = c
            .roundtrip(r#"{"id":"i","verb":"insert","name":"twin","label":"-","point":[0,1,0]}"#)
            .unwrap();
        assert!(ins.contains(r#""version":1"#), "{ins}");
        let stale = c.roundtrip(&fill).unwrap();
        assert_eq!(stale, r#"{"id":"f","ok":true,"fill":"twin","filled":false}"#);

        // Unknown tenants are an error, not a silent drop.
        let missing = fill.replace(r#""name":"twin""#, r#""name":"ghost""#);
        assert!(c.roundtrip(&missing).unwrap().contains("no dataset named"), "ghost fill");
        handle.shutdown();
    }

    /// The mutation verbs over the wire: versions bump, queries see the new
    /// dataset, stats report epochs and per-class counts, and the mutated
    /// tenant answers byte-identically to a fresh server loaded with its
    /// final dataset.
    #[test]
    fn insert_and_remove_verbs_mutate_the_tenant_live() {
        let handle = spawn_server();
        let mut c = Client::connect(handle.addr()).unwrap();

        // [0,0,1] is a negative dataset point: 0 flips to "- 0 0 1".
        let q = r#"{"dataset":"toy","id":"q","cmd":"classify","metric":"hamming","point":[0,0,1]}"#;
        let before = c.roundtrip(q).unwrap();
        assert!(before.contains(r#""label":"-""#), "{before}");

        // Insert a positive point *at* the query: the 0-flip tie goes "+".
        let ins = c
            .roundtrip(r#"{"id":"i","verb":"insert","name":"toy","label":"+","point":[0,0,1]}"#)
            .unwrap();
        assert_eq!(ins, r#"{"id":"i","ok":true,"inserted":"toy","version":1,"points":5}"#);
        let after = c.roundtrip(q).unwrap();
        assert!(after.contains(r#""label":"+""#), "{after}");

        // Remove it again (it sits at index 4, the end).
        let rm = c.roundtrip(r#"{"id":"r","verb":"remove","name":"toy","index":4}"#).unwrap();
        assert_eq!(rm, r#"{"id":"r","ok":true,"removed":"toy","version":2,"points":4}"#);
        let reverted = c.roundtrip(q).unwrap();
        assert_eq!(reverted, before, "mutation round-trip restores the original bytes");

        let stats = c.roundtrip(r#"{"verb":"stats"}"#).unwrap();
        for member in [
            r#""version":2"#,
            r#""inserts":1"#,
            r#""removes":1"#,
            r#""points_pos":2"#,
            r#""points_neg":2"#,
        ] {
            assert!(stats.contains(member), "missing {member}: {stats}");
        }

        // Mutating a missing tenant and invalid mutations are plain errors.
        let missing =
            c.roundtrip(r#"{"verb":"insert","name":"nope","label":"+","point":[1,1,1]}"#).unwrap();
        assert!(missing.contains("no dataset named"), "{missing}");
        let bad_dim =
            c.roundtrip(r#"{"verb":"insert","name":"toy","label":"+","point":[1,1]}"#).unwrap();
        assert!(bad_dim.contains("dimension"), "{bad_dim}");
        let bad_idx = c.roundtrip(r#"{"verb":"remove","name":"toy","index":9}"#).unwrap();
        assert!(bad_idx.contains("out of range"), "{bad_idx}");

        handle.shutdown();
    }

    /// The observability plane: `metrics` answers valid Prometheus text
    /// exposition with non-empty route histograms and the per-tenant engine
    /// counters; `slow` drains the worst-N ring (and drains it exactly
    /// once); neither changes the bytes of the queries around them.
    #[test]
    fn metrics_and_slow_verbs_expose_telemetry_out_of_band() {
        let handle = spawn_server();
        let mut c = Client::connect(handle.addr()).unwrap();

        let q = r#"{"dataset":"toy","id":"q","cmd":"counterfactual","metric":"hamming","point":[1,0,1]}"#;
        let before = c.roundtrip(q).unwrap();
        for i in 0..4 {
            let line = format!(
                r#"{{"dataset":"toy","id":"w{i}","cmd":"classify","metric":"hamming","point":[{},{},1]}}"#,
                i % 2,
                (i / 2) % 2
            );
            assert!(c.roundtrip(&line).unwrap().contains(r#""ok":true"#));
        }

        let m = c.roundtrip(r#"{"id":"m","verb":"metrics"}"#).unwrap();
        let parsed = knn_engine::json::parse_bytes(m.as_bytes()).unwrap();
        let Some(Value::String(text)) = parsed.get("metrics") else {
            panic!("metrics member missing: {m}");
        };
        knn_telemetry::exposition::validate(text).unwrap();
        let samples = knn_telemetry::exposition::parse(text);
        let served: f64 = samples
            .iter()
            .filter(|(k, _)| k.starts_with("knn_request_duration_us_count{"))
            .map(|(_, v)| *v)
            .sum();
        assert!(served >= 5.0, "route histograms cover the warm queries: {served}");
        for series in [
            r#"knn_request_duration_us_count{tenant="toy",route="hamming-index"}"#,
            r#"knn_phase_duration_us_count{tenant="toy",phase="admission"}"#,
            r#"knn_engine_region_yields_total{tenant="toy"}"#,
            r#"knn_engine_region_pruned_total{tenant="toy",rule="empty"}"#,
            r#"knn_engine_cache_events_total{tenant="toy",event="miss"}"#,
            r#"knn_engine_artifact_cells_total{tenant="toy",kind="built"}"#,
            "knn_server_admission_granted_total",
        ] {
            assert!(text.contains(series), "missing {series} in:\n{text}");
        }

        // The ring drains once: the counterfactual (multi-µs) is in it.
        let s = c.roundtrip(r#"{"id":"s","verb":"slow"}"#).unwrap();
        assert!(s.contains(r#""total_us":"#) && s.contains(r#""cache":"#), "{s}");
        let s2 = c.roundtrip(r#"{"id":"s2","verb":"slow"}"#).unwrap();
        assert!(s2.contains(r#""slow":[]"#), "drained: {s2}");

        // Telemetry is out-of-band: the same query answers byte-identically.
        assert_eq!(c.roundtrip(q).unwrap(), before);
        handle.shutdown();
    }

    /// The resource plane: `top` ranks tenants by estimated bytes with QPS
    /// and SLO burn columns; `slo` sets and reads a latency objective; both
    /// are out-of-band (query bytes unchanged around them). The metrics
    /// exposition carries the byte/work gauges with full HELP/TYPE headers.
    #[test]
    fn top_and_slo_verbs_account_resources_out_of_band() {
        let handle = spawn_server();
        let mut c = Client::connect(handle.addr()).unwrap();
        c.roundtrip(r#"{"verb":"load","name":"second","text":"+ 1 0\n- 0 1"}"#).unwrap();

        let q = r#"{"dataset":"toy","id":"q","cmd":"counterfactual","metric":"hamming","point":[1,0,1]}"#;
        let before = c.roundtrip(q).unwrap();
        assert!(c
            .roundtrip(r#"{"dataset":"second","cmd":"classify","point":[1,0]}"#)
            .unwrap()
            .contains(r#""ok":true"#));

        // An objective with an absurdly low threshold: the first window
        // (all traffic so far) must burn and record a violation.
        let set = c
            .roundtrip(r#"{"id":"o","verb":"slo","name":"toy","quantile":0.5,"threshold_us":0,"windows":4}"#)
            .unwrap();
        assert_eq!(
            set,
            r#"{"id":"o","ok":true,"slo":"toy","quantile":0.5,"threshold_us":0,"windows":4}"#
        );

        let t = c.roundtrip(r#"{"id":"t","verb":"top"}"#).unwrap();
        let parsed = knn_engine::json::parse_bytes(t.as_bytes()).unwrap();
        let Some(Value::Array(rows)) = parsed.get("top") else { panic!("top member: {t}") };
        assert_eq!(rows.len(), 2, "one row per tenant: {t}");
        let mut totals = Vec::new();
        for row in rows {
            let total = row.get("bytes_total").and_then(Value::as_u64).unwrap();
            assert!(total > 0, "every tenant holds bytes: {t}");
            for member in ["tenant", "bytes", "requests", "qps", "slo_burn", "slo_violations"] {
                assert!(row.get(member).is_some(), "row missing {member}: {t}");
            }
            totals.push(total);
        }
        assert!(totals[0] >= totals[1], "ranked by bytes descending: {t}");
        let toy_row =
            rows.iter().find(|r| r.get("tenant") == Some(&Value::String("toy".into()))).unwrap();
        assert!(
            toy_row.get("slo_burn").and_then(Value::as_f64).unwrap() > 0.0,
            "a 0us threshold burns: {t}"
        );

        let status = c.roundtrip(r#"{"id":"g","verb":"slo","name":"toy"}"#).unwrap();
        for member in [r#""slo":"toy""#, r#""windows_held":"#, r#""violations":"#, r#""burn":"#] {
            assert!(status.contains(member), "missing {member}: {status}");
        }
        let no_obj = c.roundtrip(r#"{"verb":"slo","name":"second"}"#).unwrap();
        assert!(no_obj.contains("no slo objective"), "{no_obj}");
        let bad =
            c.roundtrip(r#"{"verb":"slo","name":"toy","quantile":1.5,"threshold_us":10}"#).unwrap();
        assert!(bad.contains(r#""ok":false"#), "quantile out of (0,1) rejected: {bad}");

        // The new gauges ride the exposition, headers included.
        let m = c.roundtrip(r#"{"id":"m","verb":"metrics"}"#).unwrap();
        let parsed = knn_engine::json::parse_bytes(m.as_bytes()).unwrap();
        let Some(Value::String(text)) = parsed.get("metrics") else { panic!("{m}") };
        knn_telemetry::exposition::validate(text).unwrap();
        for series in [
            r#"knn_engine_bytes{tenant="toy",component="dataset"}"#,
            r#"knn_engine_bytes{tenant="toy",component="cache"}"#,
            r#"knn_engine_work_total{tenant="toy",route="#,
            r#"knn_engine_mutation_log_entries{tenant="toy"}"#,
            "knn_server_admission_queue_depth",
            r#"knn_server_tenant_active{tenant="toy"}"#,
            r#"knn_slo_burn{tenant="toy"}"#,
            "# HELP knn_engine_bytes",
            "# TYPE knn_engine_bytes gauge",
        ] {
            assert!(text.contains(series), "missing {series} in:\n{text}");
        }

        // Accounting is out-of-band: the warmed query answers byte-identically.
        assert_eq!(c.roundtrip(q).unwrap(), before);
        handle.shutdown();
    }

    /// Reload semantics: `load` of an existing name atomically replaces the
    /// tenant — new dataset, fresh version — with no unload required.
    #[test]
    fn load_replaces_an_existing_tenant_atomically() {
        let handle = spawn_server();
        let mut c = Client::connect(handle.addr()).unwrap();

        let mutated = c
            .roundtrip(r#"{"id":"i","verb":"insert","name":"toy","label":"+","point":[1,1,1]}"#)
            .unwrap();
        assert!(mutated.contains(r#""version":1"#), "{mutated}");

        let reloaded =
            c.roundtrip(r#"{"id":"l","verb":"load","name":"toy","text":"+ 1 1\n- 0 0"}"#).unwrap();
        assert_eq!(
            reloaded, r#"{"id":"l","ok":true,"loaded":"toy","points":2,"dim":2,"version":0}"#,
            "reload answers like a fresh load"
        );
        let q =
            c.roundtrip(r#"{"dataset":"toy","id":"q","cmd":"classify","point":[1,0.9]}"#).unwrap();
        assert!(q.contains(r#""label":"+""#), "query runs against the replacement: {q}");
        let stats = c.roundtrip(r#"{"verb":"stats"}"#).unwrap();
        assert!(stats.contains(r#""version":0"#), "fresh epoch after reload: {stats}");
        handle.shutdown();
    }

    /// `load` with a `replay` log lands at the final version in one step —
    /// the reconciler's repair path.
    #[test]
    fn load_with_replay_restores_a_mutated_tenant() {
        let handle = spawn_server();
        let mut c = Client::connect(handle.addr()).unwrap();
        let line = format!(
            r#"{{"id":"l","verb":"load","name":"restored","text":{},"replay":[{{"op":"insert","label":"+","point":[0,1,1]}},{{"op":"remove","index":0}}]}}"#,
            Value::String(BOOL.into()).to_json()
        );
        let loaded = c.roundtrip(&line).unwrap();
        assert_eq!(
            loaded,
            r#"{"id":"l","ok":true,"loaded":"restored","points":4,"dim":3,"version":2}"#
        );
        // The restored tenant answers exactly like one mutated verb-by-verb.
        let stepwise = c
            .roundtrip(&format!(
                r#"{{"verb":"load","name":"stepwise","text":{}}}"#,
                Value::String(BOOL.into()).to_json()
            ))
            .and_then(|_| {
                c.roundtrip(r#"{"verb":"insert","name":"stepwise","label":"+","point":[0,1,1]}"#)
            })
            .and_then(|_| c.roundtrip(r#"{"verb":"remove","name":"stepwise","index":0}"#));
        assert!(stepwise.unwrap().contains(r#""version":2"#));
        for point in ["[0,1,1]", "[1,1,0]", "[0,0,0]"] {
            let a = c
                .roundtrip(&format!(
                    r#"{{"dataset":"restored","id":"q","cmd":"classify","metric":"hamming","point":{point}}}"#
                ))
                .unwrap();
            let b = c
                .roundtrip(&format!(
                    r#"{{"dataset":"stepwise","id":"q","cmd":"classify","metric":"hamming","point":{point}}}"#
                ))
                .unwrap();
            assert_eq!(a, b, "replayed and stepwise tenants agree on {point}");
        }
        handle.shutdown();
    }

    /// The forensics plane: a `"trace"` member never changes response
    /// bytes, `trace <id>` reconstructs the query's span tree (root →
    /// admission + phase children), `dump` exports parseable Chrome
    /// trace-event JSON, and the slow ring links back to the trace id.
    #[test]
    fn trace_verb_reconstructs_spans_and_dump_exports_chrome_json() {
        let handle = spawn_server();
        let mut c = Client::connect(handle.addr()).unwrap();

        let q = r#"{"dataset":"toy","id":"q","cmd":"counterfactual","metric":"hamming","point":[1,0,1]}"#;
        let traced = r#"{"dataset":"toy","id":"q","cmd":"counterfactual","metric":"hamming","point":[1,0,1],"trace":"t-7"}"#;
        let oracle = c.roundtrip(q).unwrap();
        let echoed = c.roundtrip(traced).unwrap();
        assert_eq!(echoed, oracle, "a trace id must never leak into response bytes");

        let t = c.roundtrip(r#"{"id":"t","verb":"trace","trace":"t-7"}"#).unwrap();
        let parsed = knn_engine::json::parse_bytes(t.as_bytes()).unwrap();
        assert_eq!(parsed.get("trace"), Some(&Value::String("t-7".into())));
        let Some(Value::Array(roots)) = parsed.get("spans") else {
            panic!("spans member missing: {t}");
        };
        assert_eq!(roots.len(), 1, "one traced query, one root: {t}");
        let root = &roots[0];
        assert_eq!(root.get("name"), Some(&Value::String("query".into())));
        let Some(Value::Array(children)) = root.get("children") else { panic!("{t}") };
        let names: Vec<&str> =
            children.iter().filter_map(|ch| ch.get("name").and_then(Value::as_str)).collect();
        assert!(names.contains(&"admission"), "admission child present: {names:?}");
        // The traced run was the second identical query: a cache hit.
        assert!(names.contains(&"cache"), "cache child present: {names:?}");

        // An unknown trace id answers with an empty tree, not an error.
        let none = c.roundtrip(r#"{"id":"n","verb":"trace","trace":"nope"}"#).unwrap();
        assert!(none.contains(r#""spans":[]"#), "{none}");

        let d = c.roundtrip(r#"{"id":"d","verb":"dump"}"#).unwrap();
        let parsed = knn_engine::json::parse_bytes(d.as_bytes()).unwrap();
        let Some(Value::String(chrome)) = parsed.get("chrome") else {
            panic!("chrome member missing: {d}");
        };
        let events = knn_engine::json::parse_bytes(chrome.as_bytes()).unwrap();
        let Value::Array(events) = events else { panic!("chrome dump not an array") };
        assert!(!events.is_empty(), "dump covers the traced spans");
        assert!(events.iter().any(|e| e.get("ph") == Some(&Value::String("X".into()))));

        // The slow ring links back: the traced counterfactual carries t-7.
        let s = c.roundtrip(r#"{"id":"s","verb":"slow"}"#).unwrap();
        assert!(s.contains(r#""trace":"t-7""#) || s.contains(r#""trace":null"#), "{s}");

        handle.shutdown();
    }

    /// The forensics close-out plane, end to end: every served response is
    /// captured, `repro` exports a self-contained bundle (seed plus replay
    /// ops plus captured lines) whose offline replay is byte-identical even
    /// across a mid-stream mutation, the slow ring's `(conn, seq)`
    /// reference drills down into a single-entry bundle, and the shadow
    /// auditor at sample rate 1 re-checks the traffic with zero
    /// divergences.
    #[test]
    fn repro_verb_exports_bundles_and_the_shadow_audit_stays_clean() {
        let handle = spawn_server();
        let mut c = Client::connect(handle.addr()).unwrap();

        let a = c.roundtrip(r#"{"id":"a","verb":"audit","sample":1}"#).unwrap();
        for member in [r#""sample":1"#, r#""checked":"#, r#""diverged":0"#, r#""dropped":0"#] {
            assert!(a.contains(member), "missing {member}: {a}");
        }

        // Traffic across a mutation: the traced query answers at epoch 0,
        // the rest at epoch 1 — one bundle must reproduce both.
        let q0 = r#"{"dataset":"toy","id":"q0","cmd":"counterfactual","metric":"hamming","point":[1,0,1],"trace":"t-r"}"#;
        let served0 = c.roundtrip(q0).unwrap();
        let ins =
            c.roundtrip(r#"{"verb":"insert","name":"toy","label":"+","point":[0,0,1]}"#).unwrap();
        assert!(ins.contains(r#""version":1"#), "{ins}");
        let q1 =
            r#"{"dataset":"toy","id":"q1","cmd":"classify","metric":"hamming","point":[0,0,1]}"#;
        let served1 = c.roundtrip(q1).unwrap();
        assert!(served1.contains(r#""label":"+""#), "{served1}");

        // Tenant-window repro: both captures, the seed, and the insert op.
        let r = c.roundtrip(r#"{"id":"r","verb":"repro","name":"toy"}"#).unwrap();
        let parsed = knn_engine::json::parse_bytes(r.as_bytes()).unwrap();
        assert_eq!(parsed.get("repro"), Some(&Value::String("toy".into())));
        assert_eq!(parsed.get("entries").and_then(Value::as_u64), Some(2), "{r}");
        let Some(Value::String(text)) = parsed.get("bundle") else { panic!("{r}") };
        let bundle = knn_engine::bundle::ReproBundle::from_json(text).unwrap();
        assert_eq!(bundle.replay.len(), 1, "the insert rides the bundle");
        let report = bundle.replay().unwrap();
        assert_eq!((report.checked, report.final_epoch), (2, 1));
        assert!(report.divergences.is_empty(), "{report:?}");
        assert!(
            bundle.entries.iter().any(|e| e.response == served0)
                && bundle.entries.iter().any(|e| e.response == served1),
            "captured bytes are the served bytes"
        );

        // Trace-id repro narrows to the traced query.
        let rt = c.roundtrip(r#"{"id":"rt","verb":"repro","trace":"t-r"}"#).unwrap();
        let parsed = knn_engine::json::parse_bytes(rt.as_bytes()).unwrap();
        assert_eq!(parsed.get("entries").and_then(Value::as_u64), Some(1), "{rt}");

        // The slow → repro drill-down: take (conn, seq) off a slow entry.
        let s = c.roundtrip(r#"{"id":"s","verb":"slow"}"#).unwrap();
        let parsed = knn_engine::json::parse_bytes(s.as_bytes()).unwrap();
        let Some(Value::Array(slow)) = parsed.get("slow") else { panic!("{s}") };
        let entry = slow.first().expect("the counterfactual is in the slow ring");
        let conn = entry.get("conn").and_then(Value::as_u64).unwrap();
        let seq = entry.get("seq").and_then(Value::as_u64).unwrap();
        let rs = c
            .roundtrip(&format!(r#"{{"id":"rs","verb":"repro","conn":{conn},"seq":{seq}}}"#))
            .unwrap();
        let parsed = knn_engine::json::parse_bytes(rs.as_bytes()).unwrap();
        assert_eq!(parsed.get("entries").and_then(Value::as_u64), Some(1), "{rs}");

        // No matching capture is an error, not an empty bundle.
        let miss = c.roundtrip(r#"{"verb":"repro","trace":"nope"}"#).unwrap();
        assert!(miss.contains("no captured requests"), "{miss}");

        // The shadow auditor drains the sampled jobs without divergence;
        // its counters surface through the audit verb and the exposition.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let a = c.roundtrip(r#"{"id":"a2","verb":"audit"}"#).unwrap();
            let parsed = knn_engine::json::parse_bytes(a.as_bytes()).unwrap();
            let checked = parsed.get("checked").and_then(Value::as_u64).unwrap();
            let queued = parsed.get("queued").and_then(Value::as_u64).unwrap();
            assert_eq!(parsed.get("diverged").and_then(Value::as_u64), Some(0), "{a}");
            if checked >= 1 && queued == 0 {
                break;
            }
            assert!(Instant::now() < deadline, "auditor never drained: {a}");
            std::thread::sleep(Duration::from_millis(20));
        }
        let m = c.roundtrip(r#"{"id":"m","verb":"metrics"}"#).unwrap();
        let parsed = knn_engine::json::parse_bytes(m.as_bytes()).unwrap();
        let Some(Value::String(text)) = parsed.get("metrics") else { panic!("{m}") };
        assert!(text.contains(r#"knn_audit_checked_total{tenant="toy"}"#), "{text}");
        assert!(text.contains(r#"knn_audit_diverged_total{tenant="toy"} 0"#), "{text}");
        let st = c.roundtrip(r#"{"verb":"stats"}"#).unwrap();
        assert!(st.contains(r#""audit_checked":"#) && st.contains(r#""audit_diverged":0"#), "{st}");

        handle.shutdown();
    }
}
