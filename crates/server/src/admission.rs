//! Fair admission control: a FIFO-ordered counting semaphore over the
//! server's global worker budget.
//!
//! Every query on every connection must acquire one admission slot before it
//! touches an engine, and slots are granted strictly in `acquire` order — a
//! tenant whose queries sit on an exponential route (budgeted SAT, implicit
//! hitting sets) can hold at most its connection's in-flight cap worth of
//! slots, and everyone queued behind it is served in arrival order rather
//! than by lock-acquisition luck. Admission changes only *when* a query runs,
//! never its bytes: responses stay pure functions of `(dataset, config,
//! request)` per the engine's determinism contract.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Counters of one [`Admission`] queue (reported by the `stats` verb).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Total slots (the worker budget).
    pub budget: usize,
    /// Slots currently free.
    pub available: usize,
    /// Queries currently waiting for a slot.
    pub waiting: usize,
    /// Slots granted over the server's lifetime.
    pub granted: u64,
}

struct State {
    available: usize,
    /// Tickets not yet granted, in arrival order.
    queue: VecDeque<u64>,
    next_ticket: u64,
    granted: u64,
}

/// A FIFO-fair counting semaphore. See the module docs.
pub struct Admission {
    budget: usize,
    state: Mutex<State>,
    cv: Condvar,
}

impl Admission {
    /// A queue with `budget` slots (`budget` ≥ 1 is enforced).
    pub fn new(budget: usize) -> Admission {
        let budget = budget.max(1);
        Admission {
            budget,
            state: Mutex::new(State {
                available: budget,
                queue: VecDeque::new(),
                next_ticket: 0,
                granted: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until a slot is granted (strictly FIFO), returning a guard that
    /// releases the slot on drop.
    pub fn acquire(&self) -> AdmissionGuard<'_> {
        let mut st = self.state.lock().unwrap();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queue.push_back(ticket);
        while st.queue.front() != Some(&ticket) || st.available == 0 {
            st = self.cv.wait(st).unwrap();
        }
        st.queue.pop_front();
        st.available -= 1;
        st.granted += 1;
        // The next ticket in line may also be grantable (available > 0).
        self.cv.notify_all();
        AdmissionGuard { admission: self }
    }

    /// A point-in-time snapshot of the queue counters.
    pub fn stats(&self) -> AdmissionStats {
        let st = self.state.lock().unwrap();
        AdmissionStats {
            budget: self.budget,
            available: st.available,
            waiting: st.queue.len(),
            granted: st.granted,
        }
    }
}

/// Holds one admission slot; dropping it releases the slot.
pub struct AdmissionGuard<'a> {
    admission: &'a Admission,
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.admission.state.lock().unwrap();
        st.available += 1;
        drop(st);
        self.admission.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn grants_respect_the_budget() {
        let a = Arc::new(Admission::new(2));
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let (a, peak, live) = (a.clone(), peak.clone(), live.clone());
            handles.push(std::thread::spawn(move || {
                let _g = a.acquire();
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(2));
                live.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "never more than budget in flight");
        let s = a.stats();
        assert_eq!(s.granted, 16);
        assert_eq!(s.available, 2);
        assert_eq!(s.waiting, 0);
    }

    #[test]
    fn fifo_order_is_preserved() {
        // One slot; a holder thread pins it while we enqueue waiters with
        // known arrival order, then release and check the grant order.
        let a = Arc::new(Admission::new(1));
        let order = Arc::new(Mutex::new(Vec::new()));
        let hold = a.acquire();
        let mut handles = Vec::new();
        for i in 0..8 {
            let (aa, order) = (a.clone(), order.clone());
            handles.push(std::thread::spawn(move || {
                let _g = aa.acquire();
                order.lock().unwrap().push(i);
            }));
            // Wait until this waiter is queued before spawning the next, so
            // arrival order is deterministic.
            while a.stats().waiting != i + 1 {
                std::thread::yield_now();
            }
        }
        drop(hold);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), (0..8).collect::<Vec<_>>());
    }
}
