//! The server's acceptance property: **two datasets served concurrently from
//! one process**, 16 clients firing shuffled request streams, and every
//! client's response stream is byte-identical to a fresh single-threaded
//! in-process engine answering the same lines in the same order. Admission
//! scheduling, connection interleaving, shared caches, single-flight
//! coalescing — and a concurrent accounting poller hammering the `slo`,
//! `top`, and `metrics` verbs — may change *when* work happens — never a
//! single output byte.

use knn_engine::{textfmt, EngineConfig, ExplanationEngine, Request};
use knn_server::{Client, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BOOL: &str = "+ 1 1 1 0 0\n+ 1 1 0 0 0\n+ 1 0 1 0 0\n- 0 0 0 1 1\n- 0 0 1 1 1\n- 0 1 0 1 1\n";
const CONT: &str = "+ 2.0 2.0\n+ 3.0 1.5\n+ 1.0 2.5\n- -1.0 -1.0\n- 0.0 -2.0\n- -2.0 0.5\n";

/// The base request list for one tenant (ids are per-slot; shuffles relabel).
fn base_requests(tenant: &str) -> Vec<String> {
    let mut reqs = Vec::new();
    if tenant == "bool" {
        let points = ["[1,1,0,1,0]", "[0,0,0,0,0]", "[1,0,1,0,1]", "[0,1,1,0,1]"];
        for (pi, point) in points.iter().enumerate() {
            for k in [1, 3] {
                for cmd in ["classify", "minimal-sr", "counterfactual"] {
                    reqs.push(format!(
                        r#"{{"dataset":"bool","id":"b{pi}-{k}-{cmd}","cmd":"{cmd}","metric":"hamming","k":{k},"point":{point}}}"#
                    ));
                }
                reqs.push(format!(
                    r#"{{"dataset":"bool","id":"b{pi}-{k}-chk","cmd":"check-sr","metric":"hamming","k":{k},"point":{point},"features":[0,3]}}"#
                ));
            }
        }
    } else {
        let points = ["[1.5,1.0]", "[-0.5,0.25]", "[0.0,0.0]", "[2.5,-1.0]"];
        for (pi, point) in points.iter().enumerate() {
            for k in [1, 3] {
                for cmd in ["classify", "minimal-sr", "counterfactual"] {
                    reqs.push(format!(
                        r#"{{"dataset":"cont","id":"c{pi}-{k}-{cmd}","cmd":"{cmd}","metric":"l2","k":{k},"point":{point}}}"#
                    ));
                }
            }
            // The ℓ1 k=1 exact cells and a refused cell (error responses must
            // be deterministic too).
            reqs.push(format!(
                r#"{{"dataset":"cont","id":"c{pi}-l1","cmd":"counterfactual","metric":"l1","k":1,"point":{point}}}"#
            ));
            reqs.push(format!(
                r#"{{"dataset":"cont","id":"c{pi}-bad","cmd":"minimal-sr","metric":"l1","k":3,"point":{point}}}"#
            ));
        }
    }
    reqs
}

fn shuffled(base: &[String], seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<String> = base.to_vec();
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        v.swap(i, j);
    }
    v
}

/// The oracle: a fresh engine, one thread, requests in the client's order.
fn sequential_oracle(dataset_text: &str, lines: &[String]) -> Vec<String> {
    let engine = ExplanationEngine::new(
        textfmt::parse_dataset(dataset_text).unwrap(),
        EngineConfig::default(),
    );
    lines
        .iter()
        .map(|line| {
            // The server envelope's `dataset` member is opaque to the engine
            // parser, so the very same line drives the oracle.
            let req = Request::from_json_line(line, "oracle").unwrap();
            engine.run(&req).to_json_line()
        })
        .collect()
}

#[test]
fn sixteen_shuffled_clients_match_the_sequential_oracle_per_tenant() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig { worker_budget: 4, conn_inflight: 2, engine: EngineConfig::default() },
    )
    .unwrap();
    server.registry().load("bool", BOOL).unwrap();
    server.registry().load("cont", CONT).unwrap();
    let handle = server.spawn();
    let addr = handle.addr();

    let bool_base = base_requests("bool");
    let cont_base = base_requests("cont");

    // An aggressive SLO objective (threshold 0µs: every query violates it)
    // plus a background poller scraping `top` and `metrics` while the client
    // fleet runs — accounting and burn-rate evaluation are out-of-band and
    // must not perturb a single response byte.
    {
        let mut admin = Client::connect(addr).unwrap();
        for tenant in ["bool", "cont"] {
            let line = format!(r#"{{"id":"adm","verb":"slo","name":"{tenant}","threshold_us":0}}"#);
            let resp = admin.roundtrip(&line).unwrap();
            assert!(resp.contains("\"ok\":true"), "slo set failed: {resp}");
        }
    }
    let (stop_tx, stop_rx) = std::sync::mpsc::channel::<()>();
    let poller = std::thread::spawn(move || {
        let mut admin = Client::connect(addr).unwrap();
        let mut scrapes = 0u32;
        loop {
            let top = admin.roundtrip(r#"{"id":"p","verb":"top"}"#).unwrap();
            assert!(top.contains("\"ok\":true"), "top failed: {top}");
            let metrics = admin.roundtrip(r#"{"id":"p","verb":"metrics"}"#).unwrap();
            assert!(metrics.contains("\"ok\":true"), "metrics failed: {metrics}");
            scrapes += 1;
            match stop_rx.recv_timeout(std::time::Duration::from_millis(5)) {
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {}
                _ => break,
            }
        }
        scrapes
    });

    let mut threads = Vec::new();
    for client_id in 0..16u64 {
        let (text, base) =
            if client_id % 2 == 0 { (BOOL, bool_base.clone()) } else { (CONT, cont_base.clone()) };
        threads.push(std::thread::spawn(move || {
            let lines = shuffled(&base, 0xC0FFEE ^ client_id);
            let expected = sequential_oracle(text, &lines);
            let mut client = Client::connect(addr).unwrap();
            let got = client.run_stream(&lines.join("\n")).unwrap();
            (client_id, expected, got)
        }));
    }
    for t in threads {
        let (client_id, expected, got) = t.join().unwrap();
        assert_eq!(expected.len(), got.len(), "client {client_id}: response count mismatch");
        for (slot, (want, have)) in expected.iter().zip(&got).enumerate() {
            assert_eq!(
                want, have,
                "client {client_id}, slot {slot}: server bytes diverge from the oracle"
            );
        }
    }

    stop_tx.send(()).unwrap();
    let scrapes = poller.join().unwrap();
    assert!(scrapes > 0, "the accounting poller never completed a scrape");

    handle.shutdown();
}
