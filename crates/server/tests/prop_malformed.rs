//! Robustness property: a live server fed *arbitrary bytes* — invalid UTF-8,
//! truncated JSON, binary garbage — answers every non-blank line with an
//! error (or valid) JSON response, never drops the connection, and never dies.
//! The peer controls every byte on the wire; the server's parse path must be
//! total.

use knn_server::{Client, Server, ServerConfig};
use proptest::prelude::*;
use std::io::Write;
use std::net::TcpStream;

const BOOL: &str = "+ 1 1 1\n+ 1 1 0\n- 0 0 0\n- 0 0 1\n";

fn spawn() -> knn_server::ServerHandle {
    let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    server.registry().load("toy", BOOL).unwrap();
    server.spawn()
}

/// Bytes for one wire line: anything but the newline delimiter itself.
fn line_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=255, 1..60).prop_map(|mut bytes| {
        for b in &mut bytes {
            if *b == b'\n' {
                *b = b'{';
            }
        }
        bytes
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_bytes_never_kill_the_connection(lines in prop::collection::vec(line_strategy(), 1..12)) {
        let handle = spawn();

        // Raw socket: the Client type is string-based, and this test is
        // exactly about the bytes a well-behaved client would never send.
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let expected: usize = lines
            .iter()
            .filter(|l| l.iter().any(|b| !b.is_ascii_whitespace()))
            .count();
        for line in &lines {
            stream.write_all(line).unwrap();
            stream.write_all(b"\n").unwrap();
        }
        for i in 0..expected {
            use std::io::BufRead;
            let mut resp = Vec::new();
            let n = reader.read_until(b'\n', &mut resp).unwrap();
            prop_assert!(n > 0, "connection died after {i} of {expected} responses");
            let parsed = knn_engine::json::parse_bytes(&resp[..resp.len() - 1]);
            prop_assert!(parsed.is_ok(), "response is not JSON: {resp:?}");
        }

        // The same connection still serves valid queries afterwards.
        stream
            .write_all(b"{\"dataset\":\"toy\",\"id\":\"ok\",\"cmd\":\"classify\",\"metric\":\"hamming\",\"point\":[1,1,1]}\n")
            .unwrap();
        use std::io::BufRead;
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        prop_assert!(resp.contains("\"label\":\"+\""), "survivor query failed: {resp}");

        // And the *server* still accepts fresh connections (it never died).
        let mut probe = Client::connect(handle.addr()).unwrap();
        let pong = probe.roundtrip("{\"verb\":\"ping\"}").unwrap();
        prop_assert!(pong.contains("\"pong\":true"), "{pong}");

        handle.shutdown();
    }
}
