//! The placement map: which backends replicate which tenant.
//!
//! Assignment is **rendezvous hashing** (highest random weight): every
//! `(tenant, backend)` pair gets a deterministic 64-bit score and a tenant's
//! replicas are the top-`r` backends by score. Two properties make this the
//! right fit here:
//!
//! * **determinism** — the same tenant name and backend set always produce
//!   the same replica set, so `load` fan-out, query dispatch, and a restarted
//!   router all agree without any coordination state;
//! * **minimal disruption** — adding a backend moves only the tenants whose
//!   top-`r` set it enters; nothing else re-shuffles.
//!
//! Placement is over *all* backends, not just healthy ones: health is a
//! dispatch-time concern (retry on another replica), never a placement
//! concern — otherwise a blip would silently migrate a tenant onto backends
//! that never loaded its dataset.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// One tenant's placement: the backend ids replicating it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantPlacement {
    /// Tenant name.
    pub name: String,
    /// Backend ids holding a replica, in rendezvous-score order.
    pub replicas: Vec<usize>,
}

/// The tenant → replicas map (see module docs).
pub struct PlacementMap {
    default_replication: usize,
    tenants: Mutex<BTreeMap<String, Vec<usize>>>,
}

/// FNV-1a over the tenant name and backend id: deterministic across runs and
/// platforms (unlike `DefaultHasher`, which is seeded per process — a router
/// restart must not re-place every tenant).
fn rendezvous_score(tenant: &str, backend: usize) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in tenant.as_bytes().iter().chain(&(backend as u64).to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl PlacementMap {
    /// An empty map. `default_replication` is the replica count used when a
    /// `load` names none (`0` = replicate on every backend).
    pub fn new(default_replication: usize) -> PlacementMap {
        PlacementMap { default_replication, tenants: Mutex::new(BTreeMap::new()) }
    }

    /// The replica set rendezvous hashing picks for `tenant` over backends
    /// `0..n_backends`, without recording it.
    pub fn rendezvous(
        &self,
        tenant: &str,
        n_backends: usize,
        replication: Option<usize>,
    ) -> Vec<usize> {
        let r = match replication.unwrap_or(self.default_replication) {
            0 => n_backends,
            r => r.min(n_backends),
        }
        .max(1);
        let mut scored: Vec<(u64, usize)> =
            (0..n_backends).map(|id| (rendezvous_score(tenant, id), id)).collect();
        // Score descending; id ascending breaks (astronomically unlikely) ties
        // deterministically.
        scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.truncate(r);
        scored.into_iter().map(|(_, id)| id).collect()
    }

    /// Records the replica set of `tenant` — the load fan-out's surviving
    /// (acknowledging) subset of a [`PlacementMap::rendezvous`] candidate
    /// set, an operator override, or a test pinning a tenant to a
    /// particular backend.
    pub fn pin(&self, tenant: &str, replicas: Vec<usize>) {
        self.tenants.lock().unwrap().insert(tenant.to_string(), replicas);
    }

    /// The recorded replica set of `tenant`.
    pub fn get(&self, tenant: &str) -> Option<Vec<usize>> {
        self.tenants.lock().unwrap().get(tenant).cloned()
    }

    /// Forgets `tenant` (after `unload`). Err when it was never placed.
    pub fn remove(&self, tenant: &str) -> Result<Vec<usize>, String> {
        self.tenants
            .lock()
            .unwrap()
            .remove(tenant)
            .ok_or_else(|| format!("no dataset named `{tenant}`"))
    }

    /// Every placed tenant, sorted by name (listings must not depend on hash
    /// order).
    pub fn list(&self) -> Vec<TenantPlacement> {
        self.tenants
            .lock()
            .unwrap()
            .iter()
            .map(|(name, replicas)| TenantPlacement {
                name: name.clone(),
                replicas: replicas.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendezvous_is_deterministic_and_respects_replication() {
        let p = PlacementMap::new(2);
        let a = p.rendezvous("alpha", 5, None);
        assert_eq!(a.len(), 2);
        assert_eq!(a, p.rendezvous("alpha", 5, None), "same inputs, same placement");
        assert_eq!(p.rendezvous("alpha", 5, Some(0)).len(), 5, "0 = all backends");
        assert_eq!(p.rendezvous("alpha", 3, Some(7)).len(), 3, "clamped to the pool");
        assert_eq!(p.rendezvous("alpha", 0, None).len(), 0, "no backends, no replicas");
    }

    #[test]
    fn growing_the_pool_only_adds_candidates() {
        // Minimal disruption: a tenant's replicas under n backends that
        // survive into n+1 stay in the same relative order.
        let p = PlacementMap::new(3);
        for tenant in ["a", "b", "hot-tenant", "x/y"] {
            let small = p.rendezvous(tenant, 4, None);
            let big = p.rendezvous(tenant, 5, None);
            let kept: Vec<usize> = big.iter().copied().filter(|id| small.contains(id)).collect();
            let small_kept: Vec<usize> =
                small.iter().copied().filter(|id| big.contains(id)).collect();
            assert_eq!(kept, small_kept, "{tenant}: surviving replicas keep their order");
        }
    }

    #[test]
    fn distinct_tenants_spread_over_backends() {
        let p = PlacementMap::new(1);
        let mut used = std::collections::BTreeSet::new();
        for i in 0..64 {
            used.insert(p.rendezvous(&format!("tenant-{i}"), 8, None)[0]);
        }
        assert!(used.len() >= 6, "64 tenants over 8 backends hit most of them: {used:?}");
    }

    #[test]
    fn pin_get_remove_lifecycle() {
        let p = PlacementMap::new(0);
        let r = p.rendezvous("t", 3, None);
        assert_eq!(r.len(), 3);
        p.pin("t", r.clone());
        assert_eq!(p.get("t"), Some(r));
        p.pin("t", vec![1]);
        assert_eq!(p.get("t"), Some(vec![1]));
        assert_eq!(p.list().len(), 1);
        assert_eq!(p.remove("t").unwrap(), vec![1]);
        assert!(p.remove("t").is_err());
        assert!(p.get("t").is_none());
    }
}
