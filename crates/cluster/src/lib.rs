//! # knn-cluster — a sharding/replication router over `knn-server` backends
//!
//! One `knn-server` process multiplexes many tenants; this crate scales the
//! other axis: **one (hot) tenant across many server processes**. A router
//! process fronts N backends, speaking the same newline-delimited JSON
//! protocol on both sides — for query and error lines, clients cannot tell
//! a router from a server by the bytes (control verbs answer with
//! cluster-shaped members: replica sets, per-backend health):
//!
//! ```text
//!                        ┌─ placement map: tenant ─rendezvous-hash→ replicas
//!  client ──TCP──► router│                                    [`placement`]
//!                        ├─ backend pool: spawn-or-attach, health probes,
//!                        │  mark-down / mark-up                    [`pool`]
//!                        └─ per-connection scatter-gather:
//!                           queries round-robin over replicas,
//!                           responses merged in request order   [`scatter`]
//!                                │
//!                 ┌──────────────┼──────────────┐
//!            knn-server     knn-server     knn-server   (N processes)
//! ```
//!
//! * **Backend pool** — spawn `xknn serve` children on ephemeral ports or
//!   attach to already-running servers; a probe thread polls each backend's
//!   `stats` verb (`health`/`uptime_ms`) and marks backends up; any TCP
//!   failure marks them down.
//! * **Placement map** — `load` assigns a tenant a replica set by
//!   deterministic rendezvous hashing (optionally `"replicas":r` per tenant)
//!   and fans the dataset out to every replica; `unload` retracts it.
//! * **Batch scatter-gather** — a client's pipelined batch is partitioned
//!   round-robin across its tenant's replicas and merged back in sequence
//!   order. Each query is a pure function of `(dataset, config, request)`,
//!   so request-level sharding keeps the response stream **byte-identical**
//!   to a single server — including under replica failure, when pending
//!   queries are redispatched to survivors (see [`scatter`] for the failure
//!   model).
//! * **Cluster stats** — the router's `stats` verb aggregates per-backend
//!   admission and per-tenant cache counters into one cluster view.
//!
//! The `xknn router` subcommand wires this to the shell; the
//! `router_throughput` bench records 1/2/4-backend cold and warm throughput
//! in `BENCH_cluster.json`.

#![warn(missing_docs)]

pub mod placement;
pub mod pool;
mod scatter;

pub use placement::{PlacementMap, TenantPlacement};
pub use pool::{Backend, BackendPool, BackendSnapshot};

use knn_engine::json::{parse_bytes, Value};
use knn_server::proto::{self, Command};
use scatter::{Dispatcher, PendingQuery};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Router configuration.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Default replicas per tenant when a `load` names none
    /// (`0` = replicate on every backend).
    pub replication: usize,
    /// Health-probe cadence (`Duration::ZERO` disables the probe loop;
    /// data-path failures still mark backends down, but nothing marks them
    /// up again).
    pub probe_interval: Duration,
    /// How many replicas one client connection's batch scatters over
    /// (`0` = all of them). Full spread maximizes one client's parallelism;
    /// `--spread 1` gives each connection a single anchored replica (with
    /// the rest as failover fallback), which minimizes per-backend
    /// connection fan-in when clients outnumber replicas. Response bytes
    /// are identical either way.
    pub spread: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig { replication: 0, probe_interval: Duration::from_millis(500), spread: 0 }
    }
}

/// Where a `load` fan-out takes the dataset from.
#[derive(Clone, Copy, Debug)]
pub enum LoadSource<'a> {
    /// A file the *router* reads and forwards inline (backends need not
    /// share a filesystem with it).
    Path(&'a str),
    /// Inline dataset text.
    Text(&'a str),
}

struct RouterShared {
    pool: Arc<BackendPool>,
    placement: Arc<PlacementMap>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    started: Instant,
    probe_interval: Duration,
    spread: usize,
    /// Connection counter, anchoring successive connections on different
    /// replicas.
    conn_counter: AtomicUsize,
    /// Retained dataset text per tenant, so the probe loop can re-load a
    /// replica that restarted with an empty registry.
    sources: Mutex<BTreeMap<String, Arc<str>>>,
    /// Serializes `load` fan-outs: the already-loaded check, the backend
    /// roundtrips, and the placement/sources records must not interleave
    /// between two concurrent loads of the same name (split-brain: replicas
    /// holding one client's text under a placement recording the other's).
    /// Loads are rare control-plane work, so holding a lock across the
    /// roundtrips is fine.
    load_lock: Mutex<()>,
}

/// The router process: bind, attach/spawn backends, preload tenants, then
/// [`Router::serve`] (blocking) or [`Router::spawn`] (background thread).
pub struct Router {
    listener: TcpListener,
    shared: Arc<RouterShared>,
}

impl Router {
    /// Binds the client-facing listener to `addr` (`127.0.0.1:0` for an
    /// ephemeral port).
    pub fn bind<A: ToSocketAddrs>(addr: A, config: RouterConfig) -> std::io::Result<Router> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(RouterShared {
            pool: Arc::new(BackendPool::new()),
            placement: Arc::new(PlacementMap::new(config.replication)),
            shutdown: AtomicBool::new(false),
            addr,
            started: Instant::now(),
            probe_interval: config.probe_interval,
            spread: config.spread,
            conn_counter: AtomicUsize::new(0),
            sources: Mutex::new(BTreeMap::new()),
            load_lock: Mutex::new(()),
        });
        Ok(Router { listener, shared })
    }

    /// The bound client-facing address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The backend pool (attach backends before serving).
    pub fn pool(&self) -> &BackendPool {
        &self.shared.pool
    }

    /// The placement map.
    pub fn placement(&self) -> &PlacementMap {
        &self.shared.placement
    }

    /// Registers an already-running backend server.
    pub fn attach(&self, addr: SocketAddr) -> Arc<Backend> {
        self.shared.pool.attach(addr)
    }

    /// Spawns an owned `xknn serve` backend child on an ephemeral port.
    /// `extra_args` go to the child verbatim (e.g. `--workers`, `--cache`).
    pub fn spawn_backend(
        &self,
        xknn: &std::path::Path,
        extra_args: &[String],
    ) -> std::io::Result<Arc<Backend>> {
        self.shared.pool.spawn(xknn, extra_args)
    }

    /// Places `name` by rendezvous hash and fans the dataset out to every
    /// replica. Returns the replica ids.
    pub fn load(
        &self,
        name: &str,
        source: LoadSource<'_>,
        replication: Option<usize>,
    ) -> Result<Vec<usize>, String> {
        fan_out_load(&self.shared, name, source, Placement::Auto(replication))
    }

    /// [`Router::load`] with an explicit replica set (operator override /
    /// test pinning) instead of rendezvous placement.
    pub fn load_pinned(
        &self,
        name: &str,
        source: LoadSource<'_>,
        replicas: Vec<usize>,
    ) -> Result<Vec<usize>, String> {
        fan_out_load(&self.shared, name, source, Placement::Pinned(replicas))
    }

    /// Accepts client connections until a client sends `shutdown`. Also
    /// starts the health-probe loop.
    pub fn serve(self) -> std::io::Result<()> {
        start_probe_loop(&self.shared);
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shared = self.shared.clone();
            std::thread::spawn(move || {
                // A client connection's I/O errors must never take the
                // router down.
                let _ = route_connection(stream, &shared);
            });
        }
        // Spawned backends die with the router.
        self.shared.pool.shutdown_spawned();
        Ok(())
    }

    /// Runs [`Router::serve`] on a background thread.
    pub fn spawn(self) -> RouterHandle {
        let shared = self.shared.clone();
        let join = std::thread::spawn(move || {
            let _ = self.serve();
        });
        RouterHandle { shared, join }
    }
}

/// Handle to a router running in the background.
pub struct RouterHandle {
    shared: Arc<RouterShared>,
    join: JoinHandle<()>,
}

impl RouterHandle {
    /// The router's client-facing address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Stops the accept loop, joins it, and shuts down spawned backends.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.shared.addr);
        let _ = self.join.join();
    }
}

/// The probe loop doubles as a **reconciler**: each round, every backend
/// that answers its `stats` probe has the probe's tenant list compared to
/// the placement map, and any placed tenant missing from one of its
/// replicas (a backend that restarted with an empty registry, i.e.
/// recovered amnesiac) is re-loaded from the router's retained dataset
/// text. Until that converges, the scatter layer's not-loaded redispatch
/// (see [`scatter`]) keeps response bytes correct.
fn start_probe_loop(shared: &Arc<RouterShared>) {
    if shared.probe_interval.is_zero() {
        return;
    }
    let shared = shared.clone();
    std::thread::spawn(move || {
        while !shared.shutdown.load(Ordering::SeqCst) {
            for backend in shared.pool.backends() {
                if let Some(stats) = backend.probe() {
                    reconcile_backend(&shared, &backend, &stats);
                }
            }
            std::thread::sleep(shared.probe_interval);
        }
    });
}

/// Re-loads any placed tenant this backend replicates but no longer holds
/// (`stats` is the probe response just received from it). Serialized with
/// `load`/`unload` by the load lock — otherwise a reconcile running off a
/// stale placement snapshot could re-load a tenant a concurrent `unload`
/// just removed, stranding it on the backend (where it would then refuse
/// any future `load` under that name).
fn reconcile_backend(shared: &Arc<RouterShared>, backend: &Backend, stats: &str) {
    let _load_serialized = shared.load_lock.lock().unwrap();
    let placements = shared.placement.list();
    if placements.is_empty() {
        return;
    }
    let Ok(v) = parse_bytes(stats.as_bytes()) else { return };
    let held: std::collections::BTreeSet<&str> = v
        .get("tenants")
        .and_then(Value::as_array)
        .unwrap_or(&[])
        .iter()
        .filter_map(|t| t.get("name").and_then(Value::as_str))
        .collect();
    for t in &placements {
        if !t.replicas.contains(&backend.id) || held.contains(t.name.as_str()) {
            continue;
        }
        let source = shared.sources.lock().unwrap().get(&t.name).cloned();
        if let Some(text) = source {
            let _ = backend.control_roundtrip(&load_line(&t.name, &text));
        }
    }
}

/// The wire line that loads `name` from inline `text` on a backend.
fn load_line(name: &str, text: &str) -> String {
    Value::Object(vec![
        ("id".into(), Value::String("fanout".into())),
        ("verb".into(), Value::String("load".into())),
        ("name".into(), Value::String(name.to_string())),
        ("text".into(), Value::String(text.to_string())),
    ])
    .to_json()
}

/// How a `load` picks its candidate replica set.
enum Placement {
    Auto(Option<usize>),
    Pinned(Vec<usize>),
}

/// Places a tenant and fans its dataset out to every candidate replica.
/// Only the replicas that **acknowledge** the load become the tenant's
/// replica set — a backend that is down, or already serves something else
/// under the same name, must never be routed queries for data it does not
/// hold. The dataset text is retained so the probe loop can re-load an
/// acknowledged replica that later restarts empty.
fn fan_out_load(
    shared: &Arc<RouterShared>,
    name: &str,
    source: LoadSource<'_>,
    placement: Placement,
) -> Result<Vec<usize>, String> {
    let _load_serialized = shared.load_lock.lock().unwrap();
    let n = shared.pool.len();
    if n == 0 {
        return Err("no backends attached".into());
    }
    if shared.placement.get(name).is_some() {
        return Err(format!("dataset `{name}` is already loaded (unload it first)"));
    }
    let text = match source {
        LoadSource::Text(t) => t.to_string(),
        LoadSource::Path(p) => {
            std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?
        }
    };
    let candidates = match placement {
        Placement::Auto(replication) => shared.placement.rendezvous(name, n, replication),
        Placement::Pinned(ids) => {
            if ids.is_empty() || ids.iter().any(|&id| id >= n) {
                return Err(format!("pinned replicas {ids:?} out of range (pool size {n})"));
            }
            ids
        }
    };
    let line = load_line(name, &text);

    let mut acked = Vec::new();
    let mut first_err = None;
    for &id in &candidates {
        let result = match shared.pool.get(id) {
            Some(backend) => backend.control_roundtrip(&line).and_then(|resp| {
                match parse_bytes(resp.as_bytes()) {
                    Ok(v) if matches!(v.get("ok"), Some(Value::Bool(true))) => Ok(()),
                    Ok(v) => Err(v
                        .get("error")
                        .and_then(Value::as_str)
                        .unwrap_or("backend refused the load")
                        .to_string()),
                    Err(e) => Err(format!("unparseable backend response: {e}")),
                }
            }),
            None => Err(format!("no backend with id {id}")),
        };
        match result {
            Ok(()) => acked.push(id),
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    if acked.is_empty() {
        return Err(first_err.unwrap_or_else(|| "load failed on every replica".into()));
    }
    shared.sources.lock().unwrap().insert(name.to_string(), Arc::from(text.as_str()));
    shared.placement.pin(name, acked.clone());
    Ok(acked)
}

/// Fans `unload` out to the tenant's replicas and retracts the placement.
/// Holds the load lock so it cannot interleave with a `load` or a
/// reconcile of the same name.
fn fan_out_unload(shared: &Arc<RouterShared>, name: &str) -> Result<Vec<usize>, String> {
    let _load_serialized = shared.load_lock.lock().unwrap();
    let replicas = shared.placement.remove(name)?;
    shared.sources.lock().unwrap().remove(name);
    let line = Value::Object(vec![
        ("id".into(), Value::String("fanout".into())),
        ("verb".into(), Value::String("unload".into())),
        ("name".into(), Value::String(name.to_string())),
    ])
    .to_json();
    for &id in &replicas {
        if let Some(backend) = shared.pool.get(id) {
            // Best-effort: a dead replica has nothing to unload.
            let _ = backend.control_roundtrip(&line);
        }
    }
    Ok(replicas)
}

/// One client connection: parse, scatter queries, barrier control verbs —
/// the same loop shape as `knn_server::serve_connection`, with the worker
/// pool replaced by the [`scatter::Dispatcher`].
fn route_connection(stream: TcpStream, shared: &Arc<RouterShared>) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let (out_tx, out_rx) = mpsc::channel::<(u64, Vec<u8>)>();
    let writer = std::thread::spawn(move || scatter::writer_loop(stream, out_rx));
    let disp = Dispatcher::new(
        shared.pool.clone(),
        shared.placement.clone(),
        out_tx.clone(),
        shared.conn_counter.fetch_add(1, Ordering::Relaxed),
        shared.spread,
    );

    let mut seq = 0u64;
    let mut lineno = 0u64;
    let mut dispatched = 0u64;
    let mut buf = Vec::new();
    let mut quit = false;
    let mut shutdown_after_flush = false;
    while !quit {
        buf.clear();
        // A read error mid-connection must still fall through to the
        // teardown below, or this connection's receiver threads would leak.
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        lineno += 1;
        let line = buf.trim_ascii();
        if line.is_empty() {
            continue; // blank lines get no response, exactly like the server
        }
        let default_id = lineno.to_string();
        match proto::parse_line_value(line, &default_id) {
            Err(e) => {
                let msg = format!("line {lineno}: {e}");
                let _ = out_tx.send((seq, proto::error_line(&default_id, &msg).into_bytes()));
            }
            Ok((parsed, value)) => match parsed.command {
                Command::Query { dataset, request } => {
                    if shared.placement.get(&dataset).is_some() {
                        let has_id = value.get("id").is_some();
                        disp.dispatch(PendingQuery {
                            seq,
                            id: request.id,
                            tenant: dataset,
                            line: forward_query_line(line, &default_id, has_id),
                            attempts: 0,
                        });
                        dispatched += 1;
                    } else {
                        // Byte-identical to the single server's answer.
                        let msg = format!("no dataset named `{dataset}` (try the load verb)");
                        let _ =
                            out_tx.send((seq, proto::error_line(&request.id, &msg).into_bytes()));
                    }
                }
                command => {
                    // Control barrier: every earlier query on this connection
                    // has a final response before a control verb runs.
                    disp.wait_completed(dispatched);
                    if matches!(command, Command::Shutdown) {
                        shutdown_after_flush = true;
                    }
                    // `load` may carry a per-tenant `"replicas":r` member the
                    // shared proto doesn't model.
                    let replicas_hint = if matches!(command, Command::Load { .. }) {
                        value.get("replicas").and_then(Value::as_u64).map(|r| r as usize)
                    } else {
                        None
                    };
                    let (resp, close) =
                        run_cluster_control(shared, &parsed.id, command, replicas_hint);
                    let _ = out_tx.send((seq, resp.into_bytes()));
                    quit = close;
                }
            },
        }
        seq += 1;
    }

    // Teardown: every dispatched query gets its final response, then the
    // backend channels close gracefully and the writer flushes out. The
    // dispatcher holds an `out_tx` clone, so it must be dropped (after
    // `close` joined the receiver threads holding its other references) or
    // the writer would never see the channel close and the client
    // connection would never shut.
    disp.wait_completed(dispatched);
    disp.close();
    drop(disp);
    drop(out_tx);
    let _ = writer.join();
    if shutdown_after_flush {
        shared.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(shared.addr);
    }
    Ok(())
}

/// The bytes forwarded to a backend for a client's query line: the raw line
/// itself — the backend computes the response from the parsed request, and
/// parsing is bytes-in-semantics-out — except that a line with no `"id"`
/// member (`has_id`, from the caller's already-parsed view of the line)
/// gets the client's line number injected, because the backend's own line
/// counter (the default id) will not match the client's. The splice
/// preserves every other byte, so numeric formatting in `point` etc. is
/// untouched.
fn forward_query_line(raw: &[u8], default_id: &str, has_id: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw.len() + default_id.len() + 12);
    if has_id {
        out.extend_from_slice(raw);
    } else {
        let brace = raw.iter().position(|&b| b == b'{').unwrap_or(0);
        out.extend_from_slice(&raw[..=brace]);
        out.extend_from_slice(b"\"id\":");
        out.extend_from_slice(Value::String(default_id.to_string()).to_json().as_bytes());
        out.push(b',');
        out.extend_from_slice(&raw[brace + 1..]);
    }
    out.push(b'\n');
    out
}

/// Executes one control verb at the router. Returns the response line and
/// whether the connection closes afterwards.
fn run_cluster_control(
    shared: &Arc<RouterShared>,
    id: &str,
    command: Command,
    replicas_hint: Option<usize>,
) -> (String, bool) {
    let num = |n: usize| Value::Number(n as f64);
    let ids = |v: &[usize]| Value::Array(v.iter().map(|&i| num(i)).collect());
    match command {
        Command::Query { .. } => unreachable!("queries are dispatched by the caller"),
        Command::Load { name, path, text } => {
            let source = match (&text, &path) {
                (Some(t), None) => LoadSource::Text(t),
                (None, Some(p)) => LoadSource::Path(p),
                _ => unreachable!("parse_line enforces exactly one of path/text"),
            };
            match fan_out_load(shared, &name, source, Placement::Auto(replicas_hint)) {
                Err(e) => (proto::error_line(id, &e), false),
                Ok(replicas) => {
                    let line = proto::ok_line(
                        id,
                        vec![
                            ("loaded".into(), Value::String(name)),
                            ("replicas".into(), ids(&replicas)),
                        ],
                    );
                    (line, false)
                }
            }
        }
        Command::Unload { name } => match fan_out_unload(shared, &name) {
            Err(e) => (proto::error_line(id, &e), false),
            Ok(replicas) => {
                let line = proto::ok_line(
                    id,
                    vec![
                        ("unloaded".into(), Value::String(name)),
                        ("replicas".into(), ids(&replicas)),
                    ],
                );
                (line, false)
            }
        },
        Command::List => {
            let datasets: Vec<Value> = shared
                .placement
                .list()
                .into_iter()
                .map(|t| {
                    Value::Object(vec![
                        ("name".into(), Value::String(t.name)),
                        ("replicas".into(), ids(&t.replicas)),
                    ])
                })
                .collect();
            (proto::ok_line(id, vec![("datasets".into(), Value::Array(datasets))]), false)
        }
        Command::Stats => (cluster_stats_line(shared, id), false),
        Command::Ping => (proto::ok_line(id, vec![("pong".into(), Value::Bool(true))]), false),
        Command::Quit => (proto::ok_line(id, vec![("bye".into(), Value::Bool(true))]), true),
        Command::Shutdown => {
            (proto::ok_line(id, vec![("shutdown".into(), Value::Bool(true))]), true)
        }
    }
}

/// Per-tenant counters summed over backends.
#[derive(Default)]
struct TenantAgg {
    replicas: Vec<usize>,
    requests: u64,
    errors: u64,
    cache_hits: u64,
    cache_misses: u64,
    artifacts_built: u64,
}

/// The cluster `stats` verb: one `stats` roundtrip per live backend,
/// aggregated into a cluster view (admission totals, per-tenant counters
/// summed over replicas) plus per-backend health. Parsing is total — a
/// backend answering garbage just contributes nothing.
fn cluster_stats_line(shared: &Arc<RouterShared>, id: &str) -> String {
    let num = |n: usize| Value::Number(n as f64);
    let num64 = |n: u64| Value::Number(n as f64);
    let u = |v: Option<&Value>| v.and_then(Value::as_u64).unwrap_or(0);

    let mut tenants: BTreeMap<String, TenantAgg> = shared
        .placement
        .list()
        .into_iter()
        .map(|t| (t.name, TenantAgg { replicas: t.replicas, ..TenantAgg::default() }))
        .collect();
    let mut budget = 0u64;
    let mut granted = 0u64;
    let mut answering = 0usize;
    let mut backends_json = Vec::new();
    for backend in shared.pool.backends() {
        let stats = if backend.is_healthy() {
            backend
                .control_roundtrip(r#"{"id":"agg","verb":"stats"}"#)
                .ok()
                .and_then(|resp| parse_bytes(resp.as_bytes()).ok())
                .filter(|v| matches!(v.get("ok"), Some(Value::Bool(true))))
        } else {
            None
        };
        if let Some(v) = &stats {
            answering += 1;
            let adm = v.get("admission");
            budget += u(adm.and_then(|a| a.get("budget")));
            granted += u(adm.and_then(|a| a.get("granted")));
            for t in v.get("tenants").and_then(Value::as_array).unwrap_or(&[]) {
                let Some(name) = t.get("name").and_then(Value::as_str) else { continue };
                // Only tenants the router placed: a backend may serve others.
                let Some(agg) = tenants.get_mut(name) else { continue };
                agg.requests += u(t.get("requests"));
                agg.errors += u(t.get("errors"));
                let cache = t.get("cache");
                agg.cache_hits += u(cache.and_then(|c| c.get("hits")));
                agg.cache_misses += u(cache.and_then(|c| c.get("misses")));
                agg.artifacts_built += u(t.get("artifacts_built"));
            }
        }
        let snap = backend.snapshot();
        backends_json.push(Value::Object(vec![
            ("id".into(), num(snap.id)),
            ("addr".into(), Value::String(snap.addr.to_string())),
            ("healthy".into(), Value::Bool(snap.healthy)),
            ("spawned".into(), Value::Bool(snap.spawned)),
            ("probes_ok".into(), num64(snap.probes_ok)),
            ("probes_failed".into(), num64(snap.probes_failed)),
        ]));
    }
    let tenants_json: Vec<Value> = tenants
        .into_iter()
        .map(|(name, agg)| {
            Value::Object(vec![
                ("name".into(), Value::String(name)),
                ("replicas".into(), Value::Array(agg.replicas.iter().map(|&i| num(i)).collect())),
                ("requests".into(), num64(agg.requests)),
                ("errors".into(), num64(agg.errors)),
                ("cache_hits".into(), num64(agg.cache_hits)),
                ("cache_misses".into(), num64(agg.cache_misses)),
                ("artifacts_built".into(), num64(agg.artifacts_built)),
            ])
        })
        .collect();
    let cluster = Value::Object(vec![
        ("backends".into(), num(shared.pool.len())),
        ("answering".into(), num(answering)),
        ("uptime_ms".into(), num64(shared.started.elapsed().as_millis() as u64)),
    ]);
    proto::ok_line(
        id,
        vec![
            ("health".into(), Value::String("ok".into())),
            ("cluster".into(), cluster),
            (
                "admission".into(),
                Value::Object(vec![
                    ("budget".into(), num64(budget)),
                    ("granted".into(), num64(granted)),
                ]),
            ),
            ("backends".into(), Value::Array(backends_json)),
            ("tenants".into(), Value::Array(tenants_json)),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_server::{Client, Server, ServerConfig};

    const BOOL: &str = "+ 1 1 1\n+ 1 1 0\n- 0 0 0\n- 0 0 1\n";

    fn backend() -> knn_server::ServerHandle {
        Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap().spawn()
    }

    fn router_over(handles: &[&knn_server::ServerHandle]) -> RouterHandle {
        let router = Router::bind("127.0.0.1:0", RouterConfig::default()).unwrap();
        for h in handles {
            router.attach(h.addr());
        }
        router.load("toy", LoadSource::Text(BOOL), None).unwrap();
        router.spawn()
    }

    #[test]
    fn end_to_end_over_two_backends() {
        let (b0, b1) = (backend(), backend());
        let handle = router_over(&[&b0, &b1]);
        let mut c = Client::connect(handle.addr()).unwrap();

        let pong = c.roundtrip(r#"{"id":"p","verb":"ping"}"#).unwrap();
        assert_eq!(pong, r#"{"id":"p","ok":true,"pong":true}"#);

        // The same queries a single server would get, same response bytes.
        let resp = c
            .roundtrip(
                r#"{"dataset":"toy","id":"q","cmd":"classify","metric":"hamming","point":[1,1,1]}"#,
            )
            .unwrap();
        assert_eq!(resp, r#"{"id":"q","ok":true,"route":"hamming-index","label":"+"}"#);

        // A query without an id gets the client's line number, not the
        // backend connection's.
        for _ in 0..3 {
            c.roundtrip(r#"{"verb":"list"}"#).unwrap(); // advance the line counter
        }
        let resp = c
            .roundtrip(r#"{"dataset":"toy","cmd":"classify","metric":"hamming","point":[0,0,0]}"#)
            .unwrap();
        assert!(resp.starts_with(r#"{"id":"6","#), "{resp}");

        let missing = c.roundtrip(r#"{"dataset":"nope","id":"m","cmd":"classify","point":[1]}"#);
        assert!(missing.unwrap().contains("no dataset named `nope`"));

        let list = c.roundtrip(r#"{"id":"ls","verb":"list"}"#).unwrap();
        assert!(list.contains(r#""name":"toy""#) && list.contains(r#""replicas":[0,1]"#), "{list}");

        let stats = c.roundtrip(r#"{"id":"st","verb":"stats"}"#).unwrap();
        assert!(stats.contains(r#""health":"ok""#), "{stats}");
        assert!(stats.contains(r#""answering":2"#), "{stats}");
        // The barrier makes the aggregated request counter deterministic:
        // both queries above are counted, on whichever replicas ran them.
        assert!(stats.contains(r#""requests":2"#), "{stats}");

        let un = c.roundtrip(r#"{"id":"u","verb":"unload","name":"toy"}"#).unwrap();
        assert!(un.contains(r#""unloaded":"toy""#), "{un}");
        let gone = c.roundtrip(r#"{"dataset":"toy","id":"g","cmd":"classify","point":[1]}"#);
        assert!(gone.unwrap().contains("no dataset named"), "tenant unloaded");

        let bye = c.roundtrip(r#"{"id":"q","verb":"quit"}"#).unwrap();
        assert!(bye.contains(r#""bye":true"#), "{bye}");
        assert_eq!(c.recv().unwrap(), None, "router closes after quit");

        handle.shutdown();
        b0.shutdown();
        b1.shutdown();
    }

    #[test]
    fn load_with_replication_hint_and_reload_refused() {
        let (b0, b1) = (backend(), backend());
        let router = Router::bind("127.0.0.1:0", RouterConfig::default()).unwrap();
        router.attach(b0.addr());
        router.attach(b1.addr());
        let handle = router.spawn();
        let mut c = Client::connect(handle.addr()).unwrap();

        let one = c
            .roundtrip(&format!(
                r#"{{"id":"l","verb":"load","name":"solo","replicas":1,"text":{}}}"#,
                Value::String(BOOL.into()).to_json()
            ))
            .unwrap();
        assert!(one.contains(r#""ok":true"#), "{one}");
        let replicas: Vec<char> = one.chars().filter(|c| c.is_ascii_digit()).collect();
        assert_eq!(replicas.len(), 1, "one replica placed: {one}");

        let again =
            c.roundtrip(r#"{"id":"l2","verb":"load","name":"solo","text":"+ 1\n- 0"}"#).unwrap();
        assert!(again.contains("already loaded"), "{again}");

        // Queries work against a replication-1 tenant.
        let resp = c
            .roundtrip(
                r#"{"dataset":"solo","id":"q","cmd":"classify","metric":"hamming","point":[1,0,1]}"#,
            )
            .unwrap();
        assert!(resp.contains(r#""ok":true"#), "{resp}");

        handle.shutdown();
        b0.shutdown();
        b1.shutdown();
    }

    #[test]
    fn malformed_lines_get_error_responses_and_the_connection_survives() {
        let b0 = backend();
        let handle = router_over(&[&b0]);
        let mut c = Client::connect(handle.addr()).unwrap();
        for bad in ["not json", "{\"verb\":\"fly\"}", "[]", "{\"cmd\":\"classify\"}"] {
            let resp = c.roundtrip(bad).unwrap();
            assert!(resp.contains(r#""ok":false"#), "{bad} -> {resp}");
        }
        let resp = c
            .roundtrip(r#"{"dataset":"toy","cmd":"classify","metric":"hamming","point":[0,0,0]}"#)
            .unwrap();
        assert!(resp.contains(r#""label":"-""#), "{resp}");
        handle.shutdown();
        b0.shutdown();
    }

    #[test]
    fn dead_replica_at_dispatch_time_fails_over_to_the_survivor() {
        let live = backend();
        // A backend that is gone before the first query: bind-then-drop.
        let dead = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);

        let router = Router::bind(
            "127.0.0.1:0",
            RouterConfig { probe_interval: Duration::ZERO, ..RouterConfig::default() },
        )
        .unwrap();
        router.attach(live.addr());
        router.attach(dead_addr);
        router.load("toy", LoadSource::Text(BOOL), None).unwrap();
        let handle = router.spawn();

        let mut c = Client::connect(handle.addr()).unwrap();
        // Round-robin would alternate replicas; every query must still be
        // answered (by the survivor), bytes intact.
        for i in 0..8 {
            let resp = c
                .roundtrip(&format!(
                    r#"{{"dataset":"toy","id":"q{i}","cmd":"classify","metric":"hamming","point":[1,1,{}]}}"#,
                    i % 2
                ))
                .unwrap();
            assert!(resp.starts_with(&format!("{{\"id\":\"q{i}\",\"ok\":true")), "{resp}");
        }
        handle.shutdown();
        live.shutdown();
    }

    #[test]
    fn spread_one_anchors_connections_but_still_fails_over() {
        let live = backend();
        let dead = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);

        let router = Router::bind(
            "127.0.0.1:0",
            RouterConfig { spread: 1, probe_interval: Duration::ZERO, ..RouterConfig::default() },
        )
        .unwrap();
        router.attach(dead_addr); // id 0: some connections anchor here
        router.attach(live.addr());
        router.load("toy", LoadSource::Text(BOOL), None).unwrap();
        let handle = router.spawn();

        // Several connections: whichever anchor each one gets, every query
        // must be answered correctly (dead-anchored connections fall back
        // beyond their window).
        for conn in 0..4 {
            let mut c = Client::connect(handle.addr()).unwrap();
            let resp = c
                .roundtrip(
                    r#"{"dataset":"toy","id":"q","cmd":"classify","metric":"hamming","point":[1,1,1]}"#,
                )
                .unwrap();
            assert_eq!(
                resp, r#"{"id":"q","ok":true,"route":"hamming-index","label":"+"}"#,
                "connection {conn}"
            );
        }
        handle.shutdown();
        live.shutdown();
    }

    #[test]
    fn load_records_only_acknowledging_replicas() {
        let live = backend();
        let dead = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);

        let router = Router::bind(
            "127.0.0.1:0",
            RouterConfig { probe_interval: Duration::ZERO, ..RouterConfig::default() },
        )
        .unwrap();
        router.attach(live.addr()); // id 0
        router.attach(dead_addr); // id 1: never acks the load
        let replicas = router.load("toy", LoadSource::Text(BOOL), None).unwrap();
        assert_eq!(replicas, vec![0], "only the acking replica is placed");

        let handle = router.spawn();
        let mut c = Client::connect(handle.addr()).unwrap();
        let list = c.roundtrip(r#"{"id":"ls","verb":"list"}"#).unwrap();
        assert!(list.contains(r#""replicas":[0]"#), "{list}");
        // Queries never touch the backend that never loaded the data.
        let resp = c
            .roundtrip(
                r#"{"dataset":"toy","id":"q","cmd":"classify","metric":"hamming","point":[1,1,1]}"#,
            )
            .unwrap();
        assert_eq!(resp, r#"{"id":"q","ok":true,"route":"hamming-index","label":"+"}"#);

        handle.shutdown();
        live.shutdown();
    }

    #[test]
    fn amnesiac_replica_is_masked_and_reconciled() {
        let (b0, b1) = (backend(), backend());
        let router = Router::bind(
            "127.0.0.1:0",
            RouterConfig { probe_interval: Duration::from_millis(50), ..RouterConfig::default() },
        )
        .unwrap();
        router.attach(b0.addr());
        router.attach(b1.addr());
        router.load("toy", LoadSource::Text(BOOL), None).unwrap();
        let handle = router.spawn();

        // A replica loses the tenant behind the router's back (the shape of
        // a backend restarting with an empty registry).
        let mut direct = Client::connect(b1.addr()).unwrap();
        let un = direct.roundtrip(r#"{"verb":"unload","name":"toy"}"#).unwrap();
        assert!(un.contains(r#""ok":true"#), "{un}");

        // Response bytes stay oracle-identical throughout: the amnesiac
        // replica's "no dataset" answers are retried on the survivor.
        let mut c = Client::connect(handle.addr()).unwrap();
        for i in 0..12 {
            let resp = c
                .roundtrip(&format!(
                    r#"{{"dataset":"toy","id":"q{i}","cmd":"classify","metric":"hamming","point":[1,1,1]}}"#
                ))
                .unwrap();
            assert_eq!(
                resp,
                format!(r#"{{"id":"q{i}","ok":true,"route":"hamming-index","label":"+"}}"#)
            );
        }

        // The probe loop's reconciler re-loads the tenant onto the replica.
        let mut reloaded = false;
        for _ in 0..100 {
            let stats = direct.roundtrip(r#"{"verb":"stats"}"#).unwrap();
            if stats.contains(r#""name":"toy""#) {
                reloaded = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(reloaded, "probe loop never re-loaded the amnesiac replica");

        handle.shutdown();
        b0.shutdown();
        b1.shutdown();
    }

    #[test]
    fn router_with_no_backends_refuses_load() {
        let router = Router::bind("127.0.0.1:0", RouterConfig::default()).unwrap();
        assert!(router.load("x", LoadSource::Text(BOOL), None).is_err());
    }
}
