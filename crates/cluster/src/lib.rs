//! # knn-cluster — a sharding/replication router over `knn-server` backends
//!
//! One `knn-server` process multiplexes many tenants; this crate scales the
//! other axis: **one (hot) tenant across many server processes**. A router
//! process fronts N backends, speaking the same newline-delimited JSON
//! protocol on both sides — for query and error lines, clients cannot tell
//! a router from a server by the bytes (control verbs answer with
//! cluster-shaped members: replica sets, per-backend health):
//!
//! ```text
//!                        ┌─ placement map: tenant ─rendezvous-hash→ replicas
//!  client ──TCP──► router│                                    [`placement`]
//!                        ├─ backend pool: spawn-or-attach, health probes,
//!                        │  mark-down / mark-up                    [`pool`]
//!                        └─ per-connection scatter-gather:
//!                           queries round-robin over replicas,
//!                           responses merged in request order   [`scatter`]
//!                                │
//!                 ┌──────────────┼──────────────┐
//!            knn-server     knn-server     knn-server   (N processes)
//! ```
//!
//! * **Backend pool** — spawn `xknn serve` children on ephemeral ports or
//!   attach to already-running servers; a probe thread polls each backend's
//!   `stats` verb (`health`/`uptime_ms`) and marks backends up; any TCP
//!   failure marks them down.
//! * **Placement map** — `load` assigns a tenant a replica set by
//!   deterministic rendezvous hashing (optionally `"replicas":r` per tenant)
//!   and fans the dataset out to every replica (re-loading an existing name
//!   atomically replaces it everywhere); `unload` retracts it.
//! * **Live mutation** — `insert` / `remove` fan out to every replica of
//!   the tenant under the control-plane lock, so replicas never diverge: a
//!   replica that misses a mutation is demoted from the active set before
//!   the client hears the ack, and the probe loop's reconciler rebuilds it
//!   atomically from the retained seed text plus the full mutation log
//!   (`load` + `replay`) before re-admitting it. Per-replica versions are
//!   visible in the cluster `stats` verb.
//! * **Batch scatter-gather** — a client's pipelined batch is partitioned
//!   across its tenant's replicas and merged back in sequence order. Each
//!   query is a pure function of `(dataset, config, request)`, so
//!   request-level sharding keeps the response stream **byte-identical**
//!   to a single server — including under replica failure, when pending
//!   queries are redispatched to survivors (see [`scatter`] for the failure
//!   model).
//! * **Cache-affinity routing + cross-replica fill** (default on) — query
//!   lines are routed by rendezvous hash of the engine's deterministic
//!   cache key, so every repeat of a query prefers the replica already
//!   holding its cached explanation (warm throughput scales with backends
//!   instead of inverting); the window round-robin remains the path for
//!   unkeyed lines and the failover fallback. A replica that computes a
//!   cold answer has it pushed to its peers via the `fill` verb —
//!   best-effort, deduplicated, epoch-checked on both ends.
//! * **Cluster stats** — the router's `stats` verb aggregates per-backend
//!   admission and per-tenant cache counters into one cluster view.
//!
//! The `xknn router` subcommand wires this to the shell; the
//! `router_throughput` bench records 1/2/4-backend cold and warm throughput
//! in `BENCH_cluster.json`.

#![warn(missing_docs)]

pub mod placement;
pub mod pool;
mod scatter;

pub use placement::{PlacementMap, TenantPlacement};
pub use pool::{Backend, BackendPool, BackendSnapshot};

use knn_engine::json::{parse_bytes, Value};
use knn_server::proto::{self, Command};
use knn_telemetry::{exposition, SloObjective, Telemetry};
use scatter::{Dispatcher, PendingQuery};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Router configuration.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Default replicas per tenant when a `load` names none
    /// (`0` = replicate on every backend).
    pub replication: usize,
    /// Health-probe cadence (`Duration::ZERO` disables the probe loop;
    /// data-path failures still mark backends down, but nothing marks them
    /// up again).
    pub probe_interval: Duration,
    /// How many replicas one client connection's batch scatters over
    /// (`0` = all of them). Full spread maximizes one client's parallelism;
    /// `--spread 1` gives each connection a single anchored replica (with
    /// the rest as failover fallback), which minimizes per-backend
    /// connection fan-in when clients outnumber replicas. Response bytes
    /// are identical either way.
    pub spread: usize,
    /// Cache-affinity routing + cross-replica cache fill (default on).
    /// Query lines are routed by rendezvous hash of their deterministic
    /// cache key over the tenant's replicas — every repeat of a query
    /// prefers the replica already holding its cached explanation — and a
    /// replica that computes a cold answer has it pushed (best-effort,
    /// epoch-checked) to its peers. Replica choice never changes response
    /// bytes, so this is purely a warm-path throughput lever; `false`
    /// restores the pure window/round-robin scatter.
    pub affinity: bool,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            replication: 0,
            probe_interval: Duration::from_millis(500),
            spread: 0,
            affinity: true,
        }
    }
}

/// Where a `load` fan-out takes the dataset from.
#[derive(Clone, Copy, Debug)]
pub enum LoadSource<'a> {
    /// A file the *router* reads and forwards inline (backends need not
    /// share a filesystem with it).
    Path(&'a str),
    /// Inline dataset text.
    Text(&'a str),
}

/// The router's retained state for one placed tenant: everything needed to
/// rebuild any replica byte-for-byte — the seed text plus the full mutation
/// log (as wire `replay` items), and the replica set that acknowledged the
/// seed (`desired`). The *active* replica set (queries route only there)
/// lives in the placement map and is always a subset of `desired`: a
/// replica that fails a mutation is demoted from the active set on the
/// spot and repaired back into it by the reconciler.
#[derive(Clone)]
struct TenantSource {
    /// The seed dataset text fanned out at load time.
    seed: Arc<str>,
    /// Applied mutations since the seed, as `replay` items
    /// (`{"op":"insert",...}` / `{"op":"remove",...}`), oldest first.
    muts: Vec<Value>,
    /// The replicas that acknowledged the seed load, in placement order.
    desired: Vec<usize>,
}

impl TenantSource {
    /// The version (epoch) every consistent replica must be at.
    fn version(&self) -> u64 {
        self.muts.len() as u64
    }
}

struct RouterShared {
    pool: Arc<BackendPool>,
    placement: Arc<PlacementMap>,
    /// Router-side counters (dispatches, failovers, demotions, reconciles)
    /// and the probe-round latency histogram. Enabled at bind; the
    /// `metrics` verb appends its rendering after the merged backend
    /// expositions (series names are disjoint from the backends').
    telemetry: Arc<Telemetry>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    started: Instant,
    probe_interval: Duration,
    spread: usize,
    /// Connection counter, anchoring successive connections on different
    /// replicas.
    conn_counter: AtomicUsize,
    /// Retained seed text + mutation log per tenant, so the probe loop can
    /// rebuild a replica that restarted with an empty registry (or missed a
    /// mutation) to the exact current version.
    sources: Mutex<BTreeMap<String, TenantSource>>,
    /// Serializes the control plane: `load`/`unload`/mutation fan-outs and
    /// reconciles must not interleave (split-brain: replicas holding one
    /// client's data under a placement recording another's; a reconcile
    /// replaying a log a concurrent mutation is extending). These are rare
    /// control-plane operations, so holding a lock across the roundtrips is
    /// fine.
    load_lock: Mutex<()>,
    /// Cache-affinity routing + cross-replica fill enabled
    /// ([`RouterConfig::affinity`]).
    affinity: bool,
    /// The fill hub (present iff `affinity`): completed keyed answers are
    /// offered here and a worker thread pushes them to peer replicas.
    fill: Option<Arc<FillHub>>,
    /// Slow-query entries retained across `slow` scrapes. Backend rings
    /// drain destructively, so the router *merges* each drain into this
    /// bounded, slowest-first list and serves snapshots of it — two
    /// concurrent watchers both see every entry instead of racing each
    /// other for disjoint subsets.
    slow_retained: Mutex<Vec<Value>>,
}

/// How many merged slow-query entries the router retains for `slow`
/// scrapes (the slowest win; backend rings are 32 each).
const SLOW_RETAINED: usize = 64;

/// One completed keyed answer, queued for best-effort propagation to the
/// tenant's peer replicas.
struct FillJob {
    tenant: String,
    /// The answer's affinity key: picks the push target (the key's first
    /// failover replica).
    key: u64,
    /// Backend that produced (or already cached) the answer — excluded
    /// from the push set.
    origin: usize,
    /// Router-side tenant version at *dispatch* time; re-verified under
    /// the load lock before pushing (see [`push_fill`]).
    version: u64,
    /// The forwarded request line (UTF-8 of the exact bytes the backend
    /// answered).
    req: String,
    /// The response line the backend produced.
    resp: String,
}

/// Fan-in point for cross-replica cache fill: dispatchers offer completed
/// keyed answers; a single worker thread drains the queue and pushes each
/// fresh `(tenant, key)`'s answer to the tenant's other replicas over
/// their control channels. Fire-and-forget by design — a lost push costs
/// one future cache miss, never a wrong byte.
pub(crate) struct FillHub {
    tx: Mutex<mpsc::Sender<FillJob>>,
    /// `(tenant, affinity key)` pairs already offered, so a hot key's
    /// thousandth repeat does not re-push the same immutable entry.
    /// Bounded by clearing on overflow: dedup is an optimization — the
    /// engine's insert path tolerates (and ignores) duplicates.
    seen: Mutex<std::collections::HashSet<(String, u64)>>,
}

/// Cap on the fill dedup set; clearing past this only costs re-pushes.
const FILL_SEEN_CAP: usize = 65_536;

impl FillHub {
    /// Queues `q`'s completed answer for propagation unless this
    /// `(tenant, key)` was already offered. Called off the response path
    /// (after the client has its bytes); never blocks on I/O.
    pub(crate) fn offer(&self, q: &scatter::PendingQuery, key: u64, origin: usize, resp: &[u8]) {
        {
            let mut seen = self.seen.lock().unwrap();
            if seen.len() >= FILL_SEEN_CAP {
                seen.clear();
            }
            if !seen.insert((q.tenant.clone(), key)) {
                return;
            }
        }
        let req = String::from_utf8_lossy(q.line.trim_ascii()).into_owned();
        let resp = String::from_utf8_lossy(resp).into_owned();
        let job = FillJob { tenant: q.tenant.clone(), key, origin, version: q.version, req, resp };
        let _ = self.tx.lock().unwrap().send(job);
    }
}

/// The fill worker: drains the hub's queue, re-validating and pushing each
/// job. Polls with a timeout so it notices router shutdown.
fn start_fill_worker(shared: &Arc<RouterShared>, rx: mpsc::Receiver<FillJob>) {
    let shared = shared.clone();
    std::thread::spawn(move || loop {
        match rx.recv_timeout(Duration::from_millis(200)) {
            Ok(job) => push_fill(&shared, job),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        }
    });
}

/// Pushes one answer to the key's **first failover replica** — the
/// highest-ranked replica in the key's affinity order that is not the
/// origin — under the load lock, and only if the tenant's version still
/// equals the job's dispatch-time version.
///
/// One target, not all peers: affinity routing sends a key's repeats to
/// its home replica, so the only other replica that will ever see the key
/// (short of a double failure) is the next one in its affinity order.
/// Filling just that replica buys warm failover at 1/(N-1) of the push
/// traffic and keeps each replica's cache holding its own shard instead
/// of every replica holding everything.
///
/// Why the lock and the version check are both load-bearing: a mutation
/// fan-out bumps the router-side version only *after* every replica acked,
/// so a query can race it — computed on a replica already at N+1 while the
/// router still reads N. Labeling that answer with N and pushing it to a
/// replica still at N would install bytes from the future under the old
/// epoch: silent divergence. Holding the load lock means no fan-out is in
/// flight while we push, and `version == job.version` means none completed
/// since dispatch either — so every active replica is at exactly the
/// epoch the answer was computed at. The backend's own epoch check on
/// insert ([`knn_engine::ExplanationEngine::insert_external`]) remains as
/// the second belt.
fn push_fill(shared: &Arc<RouterShared>, job: FillJob) {
    let _load_serialized = shared.load_lock.lock().unwrap();
    let current = shared.sources.lock().unwrap().get(&job.tenant).map(|s| s.version());
    if current != Some(job.version) {
        shared.telemetry.add("knn_router_fill_stale_total", 1);
        return;
    }
    let Some(active) = shared.placement.get(&job.tenant) else { return };
    let line = Value::Object(vec![
        ("id".into(), Value::String("fill".into())),
        ("verb".into(), Value::String("fill".into())),
        ("name".into(), Value::String(job.tenant.clone())),
        ("epoch".into(), Value::Number(job.version as f64)),
        ("req".into(), Value::String(job.req)),
        ("resp".into(), Value::String(job.resp)),
    ])
    .to_json();
    let target = scatter::affinity_order(job.key, &active).into_iter().find(|&id| id != job.origin);
    if let Some(id) = target {
        let Some(backend) = shared.pool.get(id) else { return };
        if !backend.is_healthy() {
            return; // it will rebuild its cache the usual way
        }
        // Best-effort: an error or a `filled:false` answer costs nothing
        // but the miss the peer would have had anyway.
        let _ = backend.control_roundtrip(&line);
        shared.telemetry.add("knn_router_fills_total", 1);
    }
}

/// The router process: bind, attach/spawn backends, preload tenants, then
/// [`Router::serve`] (blocking) or [`Router::spawn`] (background thread).
pub struct Router {
    listener: TcpListener,
    shared: Arc<RouterShared>,
}

impl Router {
    /// Binds the client-facing listener to `addr` (`127.0.0.1:0` for an
    /// ephemeral port).
    pub fn bind<A: ToSocketAddrs>(addr: A, config: RouterConfig) -> std::io::Result<Router> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let telemetry = Telemetry::new();
        telemetry.set_enabled(true);
        let (fill, fill_rx) = if config.affinity {
            let (tx, rx) = mpsc::channel();
            let hub = Arc::new(FillHub {
                tx: Mutex::new(tx),
                seen: Mutex::new(std::collections::HashSet::new()),
            });
            (Some(hub), Some(rx))
        } else {
            (None, None)
        };
        let shared = Arc::new(RouterShared {
            pool: Arc::new(BackendPool::new()),
            placement: Arc::new(PlacementMap::new(config.replication)),
            telemetry,
            shutdown: AtomicBool::new(false),
            addr,
            started: Instant::now(),
            probe_interval: config.probe_interval,
            spread: config.spread,
            conn_counter: AtomicUsize::new(0),
            sources: Mutex::new(BTreeMap::new()),
            load_lock: Mutex::new(()),
            affinity: config.affinity,
            fill,
            slow_retained: Mutex::new(Vec::new()),
        });
        if let Some(rx) = fill_rx {
            start_fill_worker(&shared, rx);
        }
        Ok(Router { listener, shared })
    }

    /// The bound client-facing address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The backend pool (attach backends before serving).
    pub fn pool(&self) -> &BackendPool {
        &self.shared.pool
    }

    /// The placement map.
    pub fn placement(&self) -> &PlacementMap {
        &self.shared.placement
    }

    /// Registers an already-running backend server.
    pub fn attach(&self, addr: SocketAddr) -> Arc<Backend> {
        self.shared.pool.attach(addr)
    }

    /// Spawns an owned `xknn serve` backend child on an ephemeral port.
    /// `extra_args` go to the child verbatim (e.g. `--workers`, `--cache`).
    pub fn spawn_backend(
        &self,
        xknn: &std::path::Path,
        extra_args: &[String],
    ) -> std::io::Result<Arc<Backend>> {
        self.shared.pool.spawn(xknn, extra_args)
    }

    /// Places `name` by rendezvous hash and fans the dataset out to every
    /// replica. Returns the replica ids.
    pub fn load(
        &self,
        name: &str,
        source: LoadSource<'_>,
        replication: Option<usize>,
    ) -> Result<Vec<usize>, String> {
        fan_out_load(&self.shared, name, source, Placement::Auto(replication))
    }

    /// [`Router::load`] with an explicit replica set (operator override /
    /// test pinning) instead of rendezvous placement.
    pub fn load_pinned(
        &self,
        name: &str,
        source: LoadSource<'_>,
        replicas: Vec<usize>,
    ) -> Result<Vec<usize>, String> {
        fan_out_load(&self.shared, name, source, Placement::Pinned(replicas))
    }

    /// Accepts client connections until a client sends `shutdown`. Also
    /// starts the health-probe loop.
    pub fn serve(self) -> std::io::Result<()> {
        start_probe_loop(&self.shared);
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shared = self.shared.clone();
            std::thread::spawn(move || {
                // A client connection's I/O errors must never take the
                // router down.
                let _ = route_connection(stream, &shared);
            });
        }
        // Spawned backends die with the router.
        self.shared.pool.shutdown_spawned();
        Ok(())
    }

    /// Runs [`Router::serve`] on a background thread.
    pub fn spawn(self) -> RouterHandle {
        let shared = self.shared.clone();
        let join = std::thread::spawn(move || {
            let _ = self.serve();
        });
        RouterHandle { shared, join }
    }
}

/// Handle to a router running in the background.
pub struct RouterHandle {
    shared: Arc<RouterShared>,
    join: JoinHandle<()>,
}

impl RouterHandle {
    /// The router's client-facing address.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Stops the accept loop, joins it, and shuts down spawned backends.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.shared.addr);
        let _ = self.join.join();
    }
}

/// The probe loop doubles as a **reconciler**: each round, every backend
/// that answers its `stats` probe has the probe's per-tenant versions
/// compared to the router's expected versions, and any desired replica
/// that is missing a tenant (restarted amnesiac) or holds it at the wrong
/// version (missed a mutation) is rebuilt — one atomic `load` carrying the
/// retained seed text plus the full mutation log as `replay`, so the
/// replica is never observable at an intermediate version. Until that
/// converges, inconsistent replicas are out of the tenant's *active* set
/// (queries never route to them) and the scatter layer's not-loaded
/// redispatch (see [`scatter`]) keeps response bytes correct.
fn start_probe_loop(shared: &Arc<RouterShared>) {
    if shared.probe_interval.is_zero() {
        return;
    }
    let shared = shared.clone();
    std::thread::spawn(move || {
        while !shared.shutdown.load(Ordering::SeqCst) {
            let round = Instant::now();
            for backend in shared.pool.backends() {
                if backend.probe().is_some() {
                    reconcile_backend(&shared, &backend);
                }
            }
            shared
                .telemetry
                .record_named("knn_router_probe_round_us", round.elapsed().as_micros() as u64);
            std::thread::sleep(shared.probe_interval);
        }
    });
}

/// Repairs any desired replica of a placed tenant this backend hosts that
/// is missing the tenant (restarted amnesiac) or holds it at the wrong
/// version. Serialized with `load`/`unload`/mutations by the load lock —
/// otherwise a reconcile running off a stale snapshot could rebuild a
/// tenant a concurrent `unload` just removed, or replay a log a concurrent
/// mutation is extending.
///
/// The versions the repair decision reads come from a **fresh** `stats`
/// roundtrip made *under the load lock*, never from the probe response
/// that triggered the reconcile: a mutation holds the lock across its
/// fan-out, so by the time the reconcile acquires it, probe-time state may
/// describe the previous version — acting on it would demote a perfectly
/// consistent replica (and, transiently, every replica of the tenant).
///
/// The repair itself is **atomic**: a single `load` with the seed text and
/// the mutation log as `replay`, which the backend applies before the
/// tenant becomes visible. A repaired (or consistent-but-demoted) replica
/// is re-admitted to the tenant's active set, in desired order.
fn reconcile_backend(shared: &Arc<RouterShared>, backend: &Backend) {
    let _load_serialized = shared.load_lock.lock().unwrap();
    let sources = shared.sources.lock().unwrap().clone();
    if sources.is_empty() {
        return;
    }
    let Ok(stats) = backend.control_roundtrip(r#"{"id":"reconcile","verb":"stats"}"#) else {
        return;
    };
    let Ok(v) = parse_bytes(stats.as_bytes()) else { return };
    // tenant name → reported version on this backend.
    let held: BTreeMap<&str, u64> = v
        .get("tenants")
        .and_then(Value::as_array)
        .unwrap_or(&[])
        .iter()
        .filter_map(|t| {
            let name = t.get("name").and_then(Value::as_str)?;
            Some((name, t.get("version").and_then(Value::as_u64).unwrap_or(0)))
        })
        .collect();
    for (name, src) in &sources {
        if !src.desired.contains(&backend.id) {
            continue;
        }
        let active = shared.placement.get(name).unwrap_or_default();
        let consistent = held.get(name.as_str()) == Some(&src.version());
        if consistent {
            if !active.contains(&backend.id) {
                // Applied its mutations but the ack was lost: re-admit.
                readmit(shared, name, src, &active, backend.id);
            }
            continue;
        }
        // Inconsistent: make sure no queries route here, then rebuild
        // atomically and re-admit on success.
        if active.contains(&backend.id) {
            let demoted: Vec<usize> =
                active.iter().copied().filter(|&id| id != backend.id).collect();
            shared.placement.pin(name, demoted);
        }
        let line = load_line(name, src);
        if roundtrip_acked(backend, &line) {
            shared.telemetry.add("knn_router_reconciles_total", 1);
            let active = shared.placement.get(name).unwrap_or_default();
            readmit(shared, name, src, &active, backend.id);
        }
    }
}

/// Re-pins `name`'s active replica set to `active ∪ {id}`, ordered by the
/// tenant's desired replica order (deterministic listings).
fn readmit(
    shared: &Arc<RouterShared>,
    name: &str,
    src: &TenantSource,
    active: &[usize],
    id: usize,
) {
    let merged: Vec<usize> =
        src.desired.iter().copied().filter(|r| active.contains(r) || *r == id).collect();
    shared.placement.pin(name, merged);
}

/// Did `line` roundtrip on `backend` with an `"ok":true` response?
fn roundtrip_acked(backend: &Backend, line: &str) -> bool {
    backend
        .control_roundtrip(line)
        .ok()
        .and_then(|resp| parse_bytes(resp.as_bytes()).ok())
        .is_some_and(|v| matches!(v.get("ok"), Some(Value::Bool(true))))
}

/// The wire line that rebuilds `name` on a backend: the seed text plus the
/// retained mutation log as `replay` (omitted while empty, which keeps the
/// initial fan-out line identical to PR 3's).
fn load_line(name: &str, src: &TenantSource) -> String {
    let mut members = vec![
        ("id".into(), Value::String("fanout".into())),
        ("verb".into(), Value::String("load".into())),
        ("name".into(), Value::String(name.to_string())),
        ("text".into(), Value::String(src.seed.to_string())),
    ];
    if !src.muts.is_empty() {
        members.push(("replay".into(), Value::Array(src.muts.clone())));
    }
    Value::Object(members).to_json()
}

/// How a `load` picks its candidate replica set.
enum Placement {
    Auto(Option<usize>),
    Pinned(Vec<usize>),
}

/// Places a tenant and fans its dataset out to every candidate replica,
/// atomically **replacing** any tenant already placed under that name
/// (matching the single server's reload semantics). Only the replicas that
/// **acknowledge** the load become the tenant's replica set — a backend
/// that is down must never be routed queries for data it does not hold.
/// The dataset text is retained (with an empty mutation log) so the probe
/// loop can rebuild an acknowledged replica that later restarts empty.
fn fan_out_load(
    shared: &Arc<RouterShared>,
    name: &str,
    source: LoadSource<'_>,
    placement: Placement,
) -> Result<Vec<usize>, String> {
    let _load_serialized = shared.load_lock.lock().unwrap();
    let n = shared.pool.len();
    if n == 0 {
        return Err("no backends attached".into());
    }
    let text = match source {
        LoadSource::Text(t) => t.to_string(),
        LoadSource::Path(p) => {
            std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?
        }
    };
    let candidates = match placement {
        Placement::Auto(replication) => shared.placement.rendezvous(name, n, replication),
        Placement::Pinned(ids) => {
            if ids.is_empty() || ids.iter().any(|&id| id >= n) {
                return Err(format!("pinned replicas {ids:?} out of range (pool size {n})"));
            }
            ids
        }
    };
    // The old generation's *desired* set, not just the active one: a
    // replica demoted by a failed mutation still holds (stale) data and
    // must be cleaned up on replace like everyone else.
    let previous = shared.sources.lock().unwrap().get(name).map(|s| s.desired.clone());
    let src =
        TenantSource { seed: Arc::from(text.as_str()), muts: Vec::new(), desired: Vec::new() };
    let line = load_line(name, &src);

    let mut acked = Vec::new();
    let mut first_err = None;
    for &id in &candidates {
        let result = match shared.pool.get(id) {
            Some(backend) => backend.control_roundtrip(&line).and_then(|resp| {
                match parse_bytes(resp.as_bytes()) {
                    Ok(v) if matches!(v.get("ok"), Some(Value::Bool(true))) => Ok(()),
                    Ok(v) => Err(v
                        .get("error")
                        .and_then(Value::as_str)
                        .unwrap_or("backend refused the load")
                        .to_string()),
                    Err(e) => Err(format!("unparseable backend response: {e}")),
                }
            }),
            None => Err(format!("no backend with id {id}")),
        };
        match result {
            Ok(()) => acked.push(id),
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    if acked.is_empty() {
        // A reload that reached nobody changes nothing: the previous
        // generation (if any) stays placed and retained.
        return Err(first_err.unwrap_or_else(|| "load failed on every replica".into()));
    }
    shared
        .sources
        .lock()
        .unwrap()
        .insert(name.to_string(), TenantSource { desired: acked.clone(), ..src });
    shared.placement.pin(name, acked.clone());
    // A replace: old-generation replicas that are not part of the new set
    // still hold the old data — drop it (best-effort; an unreachable one is
    // simply no longer this tenant's concern).
    if let Some(old) = previous {
        let unload = unload_line(name);
        for id in old.into_iter().filter(|id| !acked.contains(id)) {
            if let Some(backend) = shared.pool.get(id) {
                let _ = backend.control_roundtrip(&unload);
            }
        }
    }
    Ok(acked)
}

/// The wire line that drops `name` on a backend.
fn unload_line(name: &str) -> String {
    Value::Object(vec![
        ("id".into(), Value::String("fanout".into())),
        ("verb".into(), Value::String("unload".into())),
        ("name".into(), Value::String(name.to_string())),
    ])
    .to_json()
}

/// Fans `unload` out to the tenant's replicas and retracts the placement.
/// Holds the load lock so it cannot interleave with a `load`, a mutation,
/// or a reconcile of the same name.
fn fan_out_unload(shared: &Arc<RouterShared>, name: &str) -> Result<Vec<usize>, String> {
    let _load_serialized = shared.load_lock.lock().unwrap();
    let replicas = shared.placement.remove(name)?;
    let desired = shared.sources.lock().unwrap().remove(name).map(|s| s.desired);
    let line = unload_line(name);
    // Every desired replica may hold data (a demoted one holds a stale
    // generation) — unload them all, not just the active set.
    for &id in desired.as_deref().unwrap_or(&replicas) {
        if let Some(backend) = shared.pool.get(id) {
            // Best-effort: a dead replica has nothing to unload.
            let _ = backend.control_roundtrip(&line);
        }
    }
    Ok(replicas)
}

/// Fans one mutation out to every *active* replica of `name` under the
/// load lock, appends it to the retained log, and reports the new version.
///
/// Failure handling keeps replicas from diverging: a replica that does not
/// acknowledge the mutation is **demoted** from the active set right here
/// (and best-effort unloaded), so no query can read its stale state after
/// the mutation's response; the reconciler repairs and re-admits it later
/// by replaying the log. If *no* replica acknowledges, the mutation did
/// not happen: the log is not extended and the client gets an error. The
/// first refusal from a live, consistent replica (a deterministic
/// validation error — bad dimension, index out of range) is reported
/// verbatim, and since validation is deterministic, every consistent
/// replica refused it identically — nothing diverged.
fn fan_out_mutation(
    shared: &Arc<RouterShared>,
    name: &str,
    item: Value,
    verb_line: String,
) -> Result<(u64, Vec<usize>), String> {
    let _load_serialized = shared.load_lock.lock().unwrap();
    let Some(active) = shared.placement.get(name) else {
        return Err(format!("no dataset named `{name}` (try the load verb)"));
    };
    let mut acked = Vec::new();
    let mut failed = Vec::new();
    let mut first_err = None;
    for &id in &active {
        let ok = match shared.pool.get(id) {
            Some(backend) => match backend.control_roundtrip(&verb_line) {
                Ok(resp) => match parse_bytes(resp.as_bytes()) {
                    Ok(v) if matches!(v.get("ok"), Some(Value::Bool(true))) => true,
                    Ok(v) => {
                        let msg = v
                            .get("error")
                            .and_then(Value::as_str)
                            .unwrap_or("backend refused the mutation")
                            .to_string();
                        first_err = first_err.or(Some(msg));
                        false
                    }
                    Err(e) => {
                        first_err =
                            first_err.or(Some(format!("unparseable backend response: {e}")));
                        false
                    }
                },
                Err(e) => {
                    first_err = first_err.or(Some(e));
                    false
                }
            },
            None => false,
        };
        if ok {
            acked.push(id);
        } else {
            failed.push(id);
        }
    }
    if acked.is_empty() {
        return Err(first_err.unwrap_or_else(|| "mutation failed on every replica".into()));
    }
    // Partial failure: demote the failures before the client hears the ack,
    // so post-mutation queries can only reach replicas that applied it.
    if !failed.is_empty() {
        shared.telemetry.add("knn_router_demotions_total", failed.len() as u64);
        shared.placement.pin(name, acked.clone());
        let unload = unload_line(name);
        for &id in &failed {
            if let Some(backend) = shared.pool.get(id) {
                let _ = backend.control_roundtrip(&unload);
            }
        }
    }
    let version = {
        let mut sources = shared.sources.lock().unwrap();
        let src = sources.get_mut(name).expect("placed tenants are retained");
        src.muts.push(item);
        src.version()
    };
    Ok((version, acked))
}

/// One client connection: parse, scatter queries, barrier control verbs —
/// the same loop shape as `knn_server::serve_connection`, with the worker
/// pool replaced by the [`scatter::Dispatcher`].
fn route_connection(stream: TcpStream, shared: &Arc<RouterShared>) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let (out_tx, out_rx) = mpsc::channel::<(u64, Vec<u8>)>();
    let writer = std::thread::spawn(move || scatter::writer_loop(stream, out_rx));
    let conn = shared.conn_counter.fetch_add(1, Ordering::Relaxed);
    let disp = Dispatcher::new(
        shared.pool.clone(),
        shared.placement.clone(),
        out_tx.clone(),
        conn,
        shared.spread,
        shared.telemetry.clone(),
        shared.fill.clone(),
    );

    let mut seq = 0u64;
    let mut lineno = 0u64;
    let mut dispatched = 0u64;
    let mut buf = Vec::new();
    let mut quit = false;
    let mut shutdown_after_flush = false;
    while !quit {
        buf.clear();
        // A read error mid-connection must still fall through to the
        // teardown below, or this connection's receiver threads would leak.
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        lineno += 1;
        let line = buf.trim_ascii();
        if line.is_empty() {
            continue; // blank lines get no response, exactly like the server
        }
        let default_id = lineno.to_string();
        match proto::parse_line_value(line, &default_id) {
            Err(e) => {
                let msg = format!("line {lineno}: {e}");
                let _ = out_tx.send((seq, proto::error_line(&default_id, &msg).into_bytes()));
            }
            Ok((parsed, value)) => match parsed.command {
                Command::Query { dataset, request } => {
                    if shared.placement.get(&dataset).is_some() {
                        let has_id = value.get("id").is_some();
                        // Trace propagation: a client's `"trace"` member
                        // rides the forwarded bytes as-is; for a 1-in-N
                        // sampled untraced query the router mints an id and
                        // splices it in-band, so the backend captures the
                        // same query the router's dispatch span covers.
                        // Either way the id never reaches response bytes.
                        let client_trace = match value.get("trace") {
                            Some(Value::String(s)) if !s.is_empty() => Some(s.clone()),
                            _ => None,
                        };
                        let minted = (value.get("trace").is_none()
                            && shared.telemetry.recorder().sample())
                        .then(|| format!("r{conn}-{lineno}"));
                        let trace = client_trace.or_else(|| minted.clone());
                        let start_us =
                            if trace.is_some() { shared.telemetry.recorder().now_us() } else { 0 };
                        // The affinity key is the engine's own cache-key
                        // hash — computable here without any dataset or
                        // artifact, because it is a pure function of the
                        // request. The version snapshot is the epoch a fill
                        // of this answer would be labeled with.
                        let (affinity, version) = if shared.affinity {
                            let key = knn_engine::cache::affinity_hash(&request);
                            let v = shared
                                .sources
                                .lock()
                                .unwrap()
                                .get(&dataset)
                                .map(|s| s.version())
                                .unwrap_or(0);
                            (Some(key), v)
                        } else {
                            (None, 0)
                        };
                        disp.dispatch(PendingQuery {
                            seq,
                            id: request.id,
                            tenant: dataset,
                            line: forward_query_line(line, &default_id, has_id, minted.as_deref()),
                            attempts: 0,
                            trace,
                            start_us,
                            affinity,
                            version,
                        });
                        dispatched += 1;
                    } else {
                        // Byte-identical to the single server's answer.
                        let msg = format!("no dataset named `{dataset}` (try the load verb)");
                        let _ =
                            out_tx.send((seq, proto::error_line(&request.id, &msg).into_bytes()));
                    }
                }
                command => {
                    // Control barrier: every earlier query on this connection
                    // has a final response before a control verb runs.
                    disp.wait_completed(dispatched);
                    if matches!(command, Command::Shutdown) {
                        shutdown_after_flush = true;
                    }
                    // `load` may carry a per-tenant `"replicas":r` member the
                    // shared proto doesn't model.
                    let replicas_hint = if matches!(command, Command::Load { .. }) {
                        value.get("replicas").and_then(Value::as_u64).map(|r| r as usize)
                    } else {
                        None
                    };
                    let (resp, close) =
                        run_cluster_control(shared, &parsed.id, command, replicas_hint);
                    let _ = out_tx.send((seq, resp.into_bytes()));
                    quit = close;
                }
            },
        }
        seq += 1;
    }

    // Teardown: every dispatched query gets its final response, then the
    // backend channels close gracefully and the writer flushes out. The
    // dispatcher holds an `out_tx` clone, so it must be dropped (after
    // `close` joined the receiver threads holding its other references) or
    // the writer would never see the channel close and the client
    // connection would never shut.
    disp.wait_completed(dispatched);
    disp.close();
    drop(disp);
    drop(out_tx);
    let _ = writer.join();
    if shutdown_after_flush {
        shared.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(shared.addr);
    }
    Ok(())
}

/// The bytes forwarded to a backend for a client's query line: the raw line
/// itself — the backend computes the response from the parsed request, and
/// parsing is bytes-in-semantics-out — except for two splices at the
/// opening brace, both preserving every other byte (numeric formatting in
/// `point` etc. is untouched):
///
/// * a line with no `"id"` member (`has_id`, from the caller's
///   already-parsed view of the line) gets the client's line number
///   injected, because the backend's own line counter (the default id)
///   will not match the client's;
/// * a router-minted trace id (`minted_trace`; only for lines with no
///   `"trace"` member of their own) rides in-band as a `"trace"` member,
///   which the backend reads out-of-band and never echoes.
fn forward_query_line(
    raw: &[u8],
    default_id: &str,
    has_id: bool,
    minted_trace: Option<&str>,
) -> Vec<u8> {
    let mut inject = String::new();
    if !has_id {
        inject.push_str("\"id\":");
        inject.push_str(&Value::String(default_id.to_string()).to_json());
        inject.push(',');
    }
    if let Some(t) = minted_trace {
        inject.push_str("\"trace\":");
        inject.push_str(&Value::String(t.to_string()).to_json());
        inject.push(',');
    }
    let mut out = Vec::with_capacity(raw.len() + inject.len() + 1);
    if inject.is_empty() {
        out.extend_from_slice(raw);
    } else {
        let brace = raw.iter().position(|&b| b == b'{').unwrap_or(0);
        out.extend_from_slice(&raw[..=brace]);
        out.extend_from_slice(inject.as_bytes());
        out.extend_from_slice(&raw[brace + 1..]);
    }
    out.push(b'\n');
    out
}

/// Executes one control verb at the router. Returns the response line and
/// whether the connection closes afterwards.
fn run_cluster_control(
    shared: &Arc<RouterShared>,
    id: &str,
    command: Command,
    replicas_hint: Option<usize>,
) -> (String, bool) {
    let num = |n: usize| Value::Number(n as f64);
    let ids = |v: &[usize]| Value::Array(v.iter().map(|&i| num(i)).collect());
    match command {
        Command::Query { .. } => unreachable!("queries are dispatched by the caller"),
        Command::Load { name, path, text, replay } => {
            if !replay.is_empty() {
                // `replay` is the router→backend repair channel; a client
                // expressing history should send the mutations as verbs.
                let msg = "`replay` is not accepted through the router (send insert/remove verbs)";
                return (proto::error_line(id, msg), false);
            }
            let source = match (&text, &path) {
                (Some(t), None) => LoadSource::Text(t),
                (None, Some(p)) => LoadSource::Path(p),
                _ => unreachable!("parse_line enforces exactly one of path/text"),
            };
            match fan_out_load(shared, &name, source, Placement::Auto(replicas_hint)) {
                Err(e) => (proto::error_line(id, &e), false),
                Ok(replicas) => {
                    let line = proto::ok_line(
                        id,
                        vec![
                            ("loaded".into(), Value::String(name)),
                            ("replicas".into(), ids(&replicas)),
                        ],
                    );
                    (line, false)
                }
            }
        }
        Command::Insert { name, label, point } => {
            let label_s = if label == knn_space::Label::Positive { "+" } else { "-" };
            let point_v = Value::Array(point.iter().map(|&x| Value::Number(x)).collect());
            let item = Value::Object(vec![
                ("op".into(), Value::String("insert".into())),
                ("label".into(), Value::String(label_s.into())),
                ("point".into(), point_v.clone()),
            ]);
            let line = Value::Object(vec![
                ("id".into(), Value::String("fanout".into())),
                ("verb".into(), Value::String("insert".into())),
                ("name".into(), Value::String(name.clone())),
                ("label".into(), Value::String(label_s.into())),
                ("point".into(), point_v),
            ])
            .to_json();
            mutation_response(shared, id, &name, "inserted", item, line)
        }
        Command::Remove { name, index } => {
            let item = Value::Object(vec![
                ("op".into(), Value::String("remove".into())),
                ("index".into(), Value::Number(index as f64)),
            ]);
            let line = Value::Object(vec![
                ("id".into(), Value::String("fanout".into())),
                ("verb".into(), Value::String("remove".into())),
                ("name".into(), Value::String(name.clone())),
                ("index".into(), Value::Number(index as f64)),
            ])
            .to_json();
            mutation_response(shared, id, &name, "removed", item, line)
        }
        Command::Unload { name } => match fan_out_unload(shared, &name) {
            Err(e) => (proto::error_line(id, &e), false),
            Ok(replicas) => {
                let line = proto::ok_line(
                    id,
                    vec![
                        ("unloaded".into(), Value::String(name)),
                        ("replicas".into(), ids(&replicas)),
                    ],
                );
                (line, false)
            }
        },
        Command::List => {
            let datasets: Vec<Value> = shared
                .placement
                .list()
                .into_iter()
                .map(|t| {
                    Value::Object(vec![
                        ("name".into(), Value::String(t.name)),
                        ("replicas".into(), ids(&t.replicas)),
                    ])
                })
                .collect();
            (proto::ok_line(id, vec![("datasets".into(), Value::Array(datasets))]), false)
        }
        Command::Fill { .. } => {
            // `fill` is the router→backend cache-fill channel; a client has
            // no epoch authority, so the router refuses it the same way it
            // refuses client `replay`.
            let msg = "`fill` is not accepted through the router (cache fill is router-originated)";
            (proto::error_line(id, msg), false)
        }
        Command::Stats => (cluster_stats_line(shared, id), false),
        Command::Metrics => (cluster_metrics_line(shared, id), false),
        Command::Top => (cluster_top_line(shared, id), false),
        Command::Slo { name, objective } => (cluster_slo_line(shared, id, &name, objective), false),
        Command::Slow => (cluster_slow_line(shared, id), false),
        Command::Trace { trace } => (cluster_trace_line(shared, id, &trace), false),
        Command::Dump => (cluster_dump_line(shared, id), false),
        Command::Repro { trace, conn, seq, name } => {
            (cluster_repro_line(shared, id, trace.as_deref(), conn, seq, name.as_deref()), false)
        }
        Command::Audit { sample } => (cluster_audit_line(shared, id, sample), false),
        Command::Ping => (proto::ok_line(id, vec![("pong".into(), Value::Bool(true))]), false),
        Command::Quit => (proto::ok_line(id, vec![("bye".into(), Value::Bool(true))]), true),
        Command::Shutdown => {
            (proto::ok_line(id, vec![("shutdown".into(), Value::Bool(true))]), true)
        }
    }
}

/// Runs one mutation fan-out and formats the router's response:
/// `{"ok":true,"<verbed>":name,"version":...,"replicas":[...]}`.
fn mutation_response(
    shared: &Arc<RouterShared>,
    id: &str,
    name: &str,
    verbed: &str,
    item: Value,
    verb_line: String,
) -> (String, bool) {
    match fan_out_mutation(shared, name, item, verb_line) {
        Err(e) => (proto::error_line(id, &e), false),
        Ok((version, replicas)) => {
            let line = proto::ok_line(
                id,
                vec![
                    (verbed.to_string(), Value::String(name.to_string())),
                    ("version".into(), Value::Number(version as f64)),
                    (
                        "replicas".into(),
                        Value::Array(replicas.iter().map(|&i| Value::Number(i as f64)).collect()),
                    ),
                ],
            );
            (line, false)
        }
    }
}

/// The cluster `metrics` verb: one `metrics` roundtrip per live backend,
/// the expositions **merged key-wise** (histogram buckets and counters
/// sum; `_max` series take the max — exact because every backend emits
/// the identical fixed bucket set), then the router's own series appended
/// (`knn_router_*`: dispatches, failovers, demotions, reconciles, the
/// probe-round histogram — names disjoint from anything a backend emits).
/// A backend answering garbage contributes nothing; the merge is total —
/// but not silent: every live backend whose scrape fails (roundtrip error,
/// unparseable response, missing `metrics` member) bumps
/// `knn_router_scrape_failures_total`, and the
/// `knn_router_backends_scraped` gauge says how many expositions this
/// merge actually covers, so a partial scrape cannot masquerade as a
/// cluster-wide one.
fn cluster_metrics_line(shared: &Arc<RouterShared>, id: &str) -> String {
    let mut texts: Vec<String> = Vec::new();
    for backend in shared.pool.backends() {
        if !backend.is_healthy() {
            continue; // down, not a scrape failure: nothing was expected
        }
        let text = backend
            .control_roundtrip(r#"{"id":"agg","verb":"metrics"}"#)
            .ok()
            .and_then(|resp| parse_bytes(resp.as_bytes()).ok())
            .and_then(|v| match v.get("metrics") {
                Some(Value::String(text)) => Some(text.clone()),
                _ => None,
            });
        match text {
            Some(text) => texts.push(text),
            None => shared.telemetry.add("knn_router_scrape_failures_total", 1),
        }
    }
    let mut text = exposition::merge(&texts);
    text.push_str(&shared.telemetry.render());
    exposition::push_header(
        &mut text,
        "knn_router_backends_scraped",
        "gauge",
        "Backend expositions this merge covers.",
    );
    exposition::push_sample(&mut text, "knn_router_backends_scraped", texts.len() as u64);
    proto::ok_line(id, vec![("metrics".into(), Value::String(text))])
}

/// The cluster `top` verb: one `top` roundtrip per live backend, rows
/// merged per tenant — bytes / requests / QPS **sum** (each backend holds
/// its own replica of the data and serves its own share of the traffic),
/// burn rates **max-merge** (the worst replica defines the tenant's SLO
/// health; averaging would let a healthy replica mask a burning one), and
/// violation counts sum. Rows come back ranked by merged bytes descending,
/// then tenant name.
fn cluster_top_line(shared: &Arc<RouterShared>, id: &str) -> String {
    let num64 = |n: u64| Value::Number(n as f64);
    #[derive(Default)]
    struct Row {
        bytes: BTreeMap<String, u64>,
        bytes_total: u64,
        requests: u64,
        qps: f64,
        slo_burn: f64,
        slo_violations: u64,
    }
    let mut merged: BTreeMap<String, Row> = BTreeMap::new();
    let mut scraped = 0usize;
    for backend in shared.pool.backends() {
        if !backend.is_healthy() {
            continue;
        }
        let rows = backend
            .control_roundtrip(r#"{"id":"agg","verb":"top"}"#)
            .ok()
            .and_then(|resp| parse_bytes(resp.as_bytes()).ok())
            .and_then(|v| match v.get("top") {
                Some(Value::Array(rows)) => Some(rows.clone()),
                _ => None,
            });
        let Some(rows) = rows else {
            shared.telemetry.add("knn_router_scrape_failures_total", 1);
            continue;
        };
        scraped += 1;
        for row in &rows {
            let Some(tenant) = row.get("tenant").and_then(Value::as_str) else { continue };
            let slot = merged.entry(tenant.to_string()).or_default();
            slot.bytes_total += row.get("bytes_total").and_then(Value::as_u64).unwrap_or(0);
            slot.requests += row.get("requests").and_then(Value::as_u64).unwrap_or(0);
            slot.qps += row.get("qps").and_then(Value::as_f64).unwrap_or(0.0);
            slot.slo_burn =
                slot.slo_burn.max(row.get("slo_burn").and_then(Value::as_f64).unwrap_or(0.0));
            slot.slo_violations += row.get("slo_violations").and_then(Value::as_u64).unwrap_or(0);
            if let Some(Value::Object(components)) = row.get("bytes") {
                for (component, v) in components {
                    *slot.bytes.entry(component.clone()).or_default() += v.as_u64().unwrap_or(0);
                }
            }
        }
    }
    let mut rows: Vec<(u64, String, Row)> =
        merged.into_iter().map(|(name, row)| (row.bytes_total, name, row)).collect();
    rows.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    let rows: Vec<Value> = rows
        .into_iter()
        .map(|(_, tenant, row)| {
            Value::Object(vec![
                ("tenant".into(), Value::String(tenant)),
                ("bytes_total".into(), num64(row.bytes_total)),
                (
                    "bytes".into(),
                    Value::Object(row.bytes.into_iter().map(|(k, v)| (k, num64(v))).collect()),
                ),
                ("requests".into(), num64(row.requests)),
                ("qps".into(), Value::Number((row.qps * 100.0).round() / 100.0)),
                ("slo_burn".into(), Value::Number(row.slo_burn)),
                ("slo_violations".into(), num64(row.slo_violations)),
            ])
        })
        .collect();
    proto::ok_line(
        id,
        vec![
            ("top".into(), Value::Array(rows)),
            ("backends_scraped".into(), Value::Number(scraped as f64)),
        ],
    )
}

/// The cluster `slo` verb. **Set** fans the objective to every live
/// backend (setting it on a backend that doesn't host the tenant is
/// harmless — no traffic, no windows) and reports how many acknowledged.
/// **Get** scrapes each backend's status and merges: good/total/violations
/// sum, burn rates and the attained quantile max-merge — the same
/// worst-replica-wins rule as `top`.
fn cluster_slo_line(
    shared: &Arc<RouterShared>,
    id: &str,
    name: &str,
    objective: Option<SloObjective>,
) -> String {
    let num64 = |n: u64| Value::Number(n as f64);
    match objective {
        Some(o) => {
            let line = Value::Object(vec![
                ("id".into(), Value::String("fanout".into())),
                ("verb".into(), Value::String("slo".into())),
                ("name".into(), Value::String(name.to_string())),
                ("quantile".into(), Value::Number(o.quantile)),
                ("threshold_us".into(), num64(o.threshold_us)),
                ("windows".into(), Value::Number(o.windows as f64)),
            ])
            .to_json();
            let mut acked = 0usize;
            for backend in shared.pool.backends() {
                if !backend.is_healthy() {
                    continue;
                }
                let ok = backend
                    .control_roundtrip(&line)
                    .ok()
                    .and_then(|resp| parse_bytes(resp.as_bytes()).ok())
                    .is_some_and(|v| v.get("ok") == Some(&Value::Bool(true)));
                if ok {
                    acked += 1;
                }
            }
            if acked == 0 {
                return proto::error_line(id, "no live backend accepted the slo objective");
            }
            proto::ok_line(
                id,
                vec![
                    ("slo".into(), Value::String(name.to_string())),
                    ("quantile".into(), Value::Number(o.quantile)),
                    ("threshold_us".into(), num64(o.threshold_us)),
                    ("windows".into(), Value::Number(o.windows as f64)),
                    ("replicas".into(), Value::Number(acked as f64)),
                ],
            )
        }
        None => {
            let req = Value::Object(vec![
                ("id".into(), Value::String("agg".into())),
                ("verb".into(), Value::String("slo".into())),
                ("name".into(), Value::String(name.to_string())),
            ])
            .to_json();
            let (mut good, mut total, mut violations) = (0u64, 0u64, 0u64);
            let (mut short_burn, mut long_burn, mut burn) = (0.0f64, 0.0f64, 0.0f64);
            let mut quantile_us = 0u64;
            let mut statuses = 0usize;
            for backend in shared.pool.backends() {
                if !backend.is_healthy() {
                    continue;
                }
                let Ok(resp) = backend.control_roundtrip(&req) else { continue };
                let Ok(v) = parse_bytes(resp.as_bytes()) else { continue };
                if v.get("ok") != Some(&Value::Bool(true)) {
                    continue; // backend has no objective for this tenant
                }
                statuses += 1;
                let f = |key: &str| v.get(key).and_then(Value::as_f64).unwrap_or(0.0);
                let u = |key: &str| v.get(key).and_then(Value::as_u64).unwrap_or(0);
                good += u("good");
                total += u("total");
                violations += u("violations");
                quantile_us = quantile_us.max(u("quantile_us"));
                short_burn = short_burn.max(f("short_burn"));
                long_burn = long_burn.max(f("long_burn"));
                burn = burn.max(f("burn"));
            }
            if statuses == 0 {
                let msg = format!("no slo objective for `{name}` on any live backend");
                return proto::error_line(id, &msg);
            }
            proto::ok_line(
                id,
                vec![
                    ("slo".into(), Value::String(name.to_string())),
                    ("replicas".into(), Value::Number(statuses as f64)),
                    ("good".into(), num64(good)),
                    ("total".into(), num64(total)),
                    ("quantile_us".into(), num64(quantile_us)),
                    ("short_burn".into(), Value::Number(short_burn)),
                    ("long_burn".into(), Value::Number(long_burn)),
                    ("burn".into(), Value::Number(burn)),
                    ("violations".into(), num64(violations)),
                ],
            )
        }
    }
}

/// The cluster `trace` verb: the router's local span tree for `trace`
/// (dispatch completions, failover anomalies), with every healthy
/// backend's reconstruction of the same trace **stitched** under the
/// router's matching `dispatch` span — matched by the `backend=<id>`
/// detail the dispatch recorder wrote, and tagged with an explicit
/// `"backend"` member. A backend's spans with no surviving dispatch span
/// (evicted from the router's ring) get a synthesized dispatch node:
/// partial forensics beat silently dropped ones.
fn cluster_trace_line(shared: &Arc<RouterShared>, id: &str, trace: &str) -> String {
    let req = Value::Object(vec![
        ("id".into(), Value::String("agg".into())),
        ("verb".into(), Value::String("trace".into())),
        ("trace".into(), Value::String(trace.to_string())),
    ])
    .to_json();
    let mut roots = knn_server::span_tree(&shared.telemetry.recorder().spans_for(trace));
    for backend in shared.pool.backends() {
        if !backend.is_healthy() {
            continue;
        }
        let Ok(resp) = backend.control_roundtrip(&req) else { continue };
        let Ok(v) = parse_bytes(resp.as_bytes()) else { continue };
        let Some(Value::Array(spans)) = v.get("spans") else { continue };
        if spans.is_empty() {
            continue;
        }
        graft_backend_spans(&mut roots, backend.id, spans.clone());
    }
    proto::ok_line(
        id,
        vec![
            ("trace".into(), Value::String(trace.to_string())),
            ("spans".into(), Value::Array(roots)),
        ],
    )
}

/// Nests `spans` (one backend's span-tree roots) under the router's first
/// `dispatch` node for that backend, adding the `"backend"` member; or
/// synthesizes the dispatch node when the router retained none.
fn graft_backend_spans(roots: &mut Vec<Value>, backend_id: usize, spans: Vec<Value>) {
    let tag = format!("backend={backend_id}");
    let slot = roots.iter().position(|n| {
        n.get("name").and_then(Value::as_str) == Some("dispatch")
            && n.get("detail").and_then(Value::as_str) == Some(tag.as_str())
    });
    match slot {
        Some(i) => {
            if let Value::Object(members) = &mut roots[i] {
                if !members.iter().any(|(k, _)| k == "backend") {
                    let at =
                        members.iter().position(|(k, _)| k == "children").unwrap_or(members.len());
                    members.insert(at, ("backend".into(), Value::Number(backend_id as f64)));
                }
                if let Some((_, Value::Array(children))) =
                    members.iter_mut().find(|(k, _)| k == "children")
                {
                    children.extend(spans);
                }
            }
        }
        None => roots.push(Value::Object(vec![
            ("name".into(), Value::String("dispatch".into())),
            ("detail".into(), Value::String(tag)),
            ("backend".into(), Value::Number(backend_id as f64)),
            ("children".into(), Value::Array(spans)),
        ])),
    }
}

/// The cluster `dump` verb: one merged Chrome trace-event array — the
/// router's own recorder at `pid` 0, each backend's dump rewritten to
/// `pid` `backend.id + 1` so every process gets its own lane group in the
/// viewer.
fn cluster_dump_line(shared: &Arc<RouterShared>, id: &str) -> String {
    let router_chrome =
        knn_telemetry::chrome::chrome_trace_json(&shared.telemetry.recorder().all(), 0);
    let mut merged: Vec<Value> = match parse_bytes(router_chrome.as_bytes()) {
        Ok(Value::Array(events)) => events,
        _ => Vec::new(),
    };
    for backend in shared.pool.backends() {
        if !backend.is_healthy() {
            continue;
        }
        let Ok(resp) = backend.control_roundtrip(r#"{"id":"agg","verb":"dump"}"#) else { continue };
        let Ok(v) = parse_bytes(resp.as_bytes()) else { continue };
        let Some(Value::String(chrome)) = v.get("chrome") else { continue };
        let Ok(Value::Array(events)) = parse_bytes(chrome.as_bytes()) else { continue };
        for mut ev in events {
            if let Value::Object(members) = &mut ev {
                for (k, val) in members.iter_mut() {
                    if k == "pid" {
                        *val = Value::Number((backend.id + 1) as f64);
                    }
                }
            }
            merged.push(ev);
        }
    }
    proto::ok_line(
        id,
        vec![
            ("events".into(), Value::Number(merged.len() as f64)),
            ("chrome".into(), Value::String(Value::Array(merged).to_json())),
        ],
    )
}

/// The cluster `slow` verb: drains every live backend's slow-query ring
/// (each entry tagged with its backend id) and **merges** the drain into
/// the router's retained slowest-first list, answering with a snapshot of
/// it. Backend drains are destructive, so two concurrent watchers racing
/// raw drains would each see only a random subset; the retained-merge
/// under one lock serializes the drains and gives every scrape the full
/// picture (bounded at [`SLOW_RETAINED`], slowest win).
fn cluster_slow_line(shared: &Arc<RouterShared>, id: &str) -> String {
    // The retained lock is held across the backend roundtrips on purpose:
    // it is what serializes concurrent scrapes so each backend entry is
    // drained by exactly one of them — and then retained for all.
    let mut retained = shared.slow_retained.lock().unwrap();
    for backend in shared.pool.backends() {
        if !backend.is_healthy() {
            continue;
        }
        let Ok(resp) = backend.control_roundtrip(r#"{"id":"agg","verb":"slow"}"#) else {
            continue;
        };
        let Ok(v) = parse_bytes(resp.as_bytes()) else { continue };
        for entry in v.get("slow").and_then(Value::as_array).unwrap_or(&[]) {
            let Value::Object(members) = entry else { continue };
            let mut members = members.clone();
            members.push(("backend".into(), Value::Number(backend.id as f64)));
            retained.push(Value::Object(members));
        }
    }
    let total = |e: &Value| e.get("total_us").and_then(Value::as_u64).unwrap_or(0);
    retained.sort_by_key(|e| std::cmp::Reverse(total(e)));
    retained.truncate(SLOW_RETAINED);
    proto::ok_line(id, vec![("slow".into(), Value::Array(retained.clone()))])
}

/// The cluster `repro` verb: forwards the selector to every healthy
/// backend, then assembles ONE bundle from the **router's** retained
/// source (seed text + full mutation log) with each backend's captured
/// entries merged in, tagged with their backend id. Runs under the load
/// lock so no load/mutation fan-out can advance the source mid-assembly —
/// the bundle's replay log is pinned at a version every merged entry's
/// epoch is ≤ (entries beyond it, impossible in a quiesced cluster, are
/// dropped rather than exported unreplayable). A `conn`/`seq` selector is
/// backend-local (the ids the cluster `slow` entries carry), so only the
/// backend that owns the reference contributes.
fn cluster_repro_line(
    shared: &Arc<RouterShared>,
    id: &str,
    trace: Option<&str>,
    conn: Option<u64>,
    seq: Option<u64>,
    name: Option<&str>,
) -> String {
    let _load_serialized = shared.load_lock.lock().unwrap();
    let mut members = vec![
        ("id".into(), Value::String("agg".into())),
        ("verb".into(), Value::String("repro".into())),
    ];
    if let Some(t) = trace {
        members.push(("trace".into(), Value::String(t.to_string())));
    }
    if let (Some(c), Some(s)) = (conn, seq) {
        members.push(("conn".into(), Value::Number(c as f64)));
        members.push(("seq".into(), Value::Number(s as f64)));
    }
    if let Some(n) = name {
        members.push(("name".into(), Value::String(n.to_string())));
    }
    let req = Value::Object(members).to_json();

    let mut tenant: Option<String> = name.map(str::to_string);
    let mut config = None;
    let mut entries: Vec<knn_engine::bundle::BundleEntry> = Vec::new();
    for backend in shared.pool.backends() {
        if !backend.is_healthy() {
            continue;
        }
        let Ok(resp) = backend.control_roundtrip(&req) else { continue };
        let Ok(v) = parse_bytes(resp.as_bytes()) else { continue };
        if v.get("ok") != Some(&Value::Bool(true)) {
            continue; // nothing captured there for this selector
        }
        let Some(Value::String(text)) = v.get("bundle") else { continue };
        let Ok(bundle) = knn_engine::bundle::ReproBundle::from_json(text) else { continue };
        let target = tenant.get_or_insert_with(|| bundle.tenant.clone());
        if bundle.tenant != *target {
            continue; // a trace that crossed tenants exports the first one
        }
        config.get_or_insert(bundle.config);
        entries.extend(bundle.entries.into_iter().map(|mut e| {
            e.backend = Some(backend.id as u64);
            e
        }));
    }
    let (Some(tenant), Some(config)) = (tenant, config) else {
        let msg = "no captured requests match that selector on any live backend";
        return proto::error_line(id, msg);
    };
    let sources = shared.sources.lock().unwrap();
    let Some(src) = sources.get(&tenant) else {
        let msg = format!("no dataset named `{tenant}` (try the load verb)");
        return proto::error_line(id, &msg);
    };
    let version = src.version();
    entries.retain(|e| e.epoch <= version);
    entries.sort_by(|a, b| {
        (a.epoch, a.backend, a.conn, a.seq).cmp(&(b.epoch, b.backend, b.conn, b.seq))
    });
    let replay: Result<Vec<_>, String> =
        src.muts.iter().map(knn_engine::bundle::mutation_from_op).collect();
    let replay = match replay {
        Ok(ops) => ops,
        Err(e) => return proto::error_line(id, &format!("retained mutation log corrupt: {e}")),
    };
    let bundle = knn_engine::bundle::ReproBundle {
        tenant: tenant.clone(),
        config,
        seed: src.seed.to_string(),
        replay,
        entries,
    };
    proto::ok_line(
        id,
        vec![
            ("repro".into(), Value::String(tenant)),
            ("entries".into(), Value::Number(bundle.entries.len() as f64)),
            ("bundle".into(), Value::String(bundle.to_json())),
        ],
    )
}

/// The cluster `audit` verb: fans the sample rate (if given) to every live
/// backend and aggregates their shadow-audit counters — checked/diverged
/// sums, queue depth and drop counts summed, the configured rate echoed.
fn cluster_audit_line(shared: &Arc<RouterShared>, id: &str, sample: Option<u64>) -> String {
    let num64 = |n: u64| Value::Number(n as f64);
    let line = match sample {
        Some(rate) => format!(r#"{{"id":"fanout","verb":"audit","sample":{rate}}}"#),
        None => r#"{"id":"agg","verb":"audit"}"#.to_string(),
    };
    let (mut checked, mut diverged, mut queued, mut dropped) = (0u64, 0u64, 0u64, 0u64);
    let mut rate = 0u64;
    let mut replicas = 0usize;
    for backend in shared.pool.backends() {
        if !backend.is_healthy() {
            continue;
        }
        let Ok(resp) = backend.control_roundtrip(&line) else { continue };
        let Ok(v) = parse_bytes(resp.as_bytes()) else { continue };
        if v.get("ok") != Some(&Value::Bool(true)) {
            continue;
        }
        replicas += 1;
        let u = |key: &str| v.get(key).and_then(Value::as_u64).unwrap_or(0);
        checked += u("checked");
        diverged += u("diverged");
        queued += u("queued");
        dropped += u("dropped");
        rate = rate.max(u("sample"));
    }
    if replicas == 0 {
        return proto::error_line(id, "no live backend answered the audit verb");
    }
    proto::ok_line(
        id,
        vec![
            ("sample".into(), num64(rate)),
            ("checked".into(), num64(checked)),
            ("diverged".into(), num64(diverged)),
            ("queued".into(), num64(queued)),
            ("dropped".into(), num64(dropped)),
            ("replicas".into(), Value::Number(replicas as f64)),
        ],
    )
}

/// Per-tenant counters summed over backends, plus the version picture the
/// replica-divergence satellite wants visible: the router's expected
/// version, the desired replica set, and each desired replica's reported
/// version (absent while a replica is down or amnesiac).
#[derive(Default)]
struct TenantAgg {
    replicas: Vec<usize>,
    desired: Vec<usize>,
    expected_version: u64,
    versions: BTreeMap<usize, u64>,
    requests: u64,
    errors: u64,
    cache_hits: u64,
    cache_misses: u64,
    /// Summed separately from hits/misses: a filled entry was neither
    /// looked up nor computed on that replica, so folding it into either
    /// counter would corrupt cluster-wide hit-rate math once fill
    /// propagates entries.
    cache_filled: u64,
    artifacts_built: u64,
}

/// The cluster `stats` verb: one `stats` roundtrip per live backend,
/// aggregated into a cluster view (admission totals, per-tenant counters
/// summed over replicas, per-replica versions) plus per-backend health.
/// Parsing is total — a backend answering garbage just contributes nothing.
fn cluster_stats_line(shared: &Arc<RouterShared>, id: &str) -> String {
    let num = |n: usize| Value::Number(n as f64);
    let num64 = |n: u64| Value::Number(n as f64);
    let u = |v: Option<&Value>| v.and_then(Value::as_u64).unwrap_or(0);

    let mut tenants: BTreeMap<String, TenantAgg> = shared
        .placement
        .list()
        .into_iter()
        .map(|t| (t.name, TenantAgg { replicas: t.replicas, ..TenantAgg::default() }))
        .collect();
    for (name, src) in shared.sources.lock().unwrap().iter() {
        let agg = tenants.entry(name.clone()).or_default();
        agg.desired = src.desired.clone();
        agg.expected_version = src.version();
    }
    let mut budget = 0u64;
    let mut granted = 0u64;
    let mut answering = 0usize;
    let mut backends_json = Vec::new();
    for backend in shared.pool.backends() {
        let stats = if backend.is_healthy() {
            backend
                .control_roundtrip(r#"{"id":"agg","verb":"stats"}"#)
                .ok()
                .and_then(|resp| parse_bytes(resp.as_bytes()).ok())
                .filter(|v| matches!(v.get("ok"), Some(Value::Bool(true))))
        } else {
            None
        };
        if let Some(v) = &stats {
            answering += 1;
            let adm = v.get("admission");
            budget += u(adm.and_then(|a| a.get("budget")));
            granted += u(adm.and_then(|a| a.get("granted")));
            for t in v.get("tenants").and_then(Value::as_array).unwrap_or(&[]) {
                let Some(name) = t.get("name").and_then(Value::as_str) else { continue };
                // Only tenants the router placed: a backend may serve others.
                let Some(agg) = tenants.get_mut(name) else { continue };
                if let Some(version) = t.get("version").and_then(Value::as_u64) {
                    agg.versions.insert(backend.id, version);
                }
                agg.requests += u(t.get("requests"));
                agg.errors += u(t.get("errors"));
                let cache = t.get("cache");
                agg.cache_hits += u(cache.and_then(|c| c.get("hits")));
                agg.cache_misses += u(cache.and_then(|c| c.get("misses")));
                agg.cache_filled += u(cache.and_then(|c| c.get("filled")));
                agg.artifacts_built += u(t.get("artifacts_built"));
            }
        }
        let snap = backend.snapshot();
        backends_json.push(Value::Object(vec![
            ("id".into(), num(snap.id)),
            ("addr".into(), Value::String(snap.addr.to_string())),
            ("healthy".into(), Value::Bool(snap.healthy)),
            ("spawned".into(), Value::Bool(snap.spawned)),
            ("probes_ok".into(), num64(snap.probes_ok)),
            ("probes_failed".into(), num64(snap.probes_failed)),
        ]));
    }
    let tenants_json: Vec<Value> = tenants
        .into_iter()
        .map(|(name, agg)| {
            // One version slot per *desired* replica, aligned by position:
            // a demoted or silent replica shows `null`, a stale one shows a
            // number below `version` — divergence is visible either way.
            let versions: Vec<Value> = agg
                .desired
                .iter()
                .map(|id| agg.versions.get(id).map_or(Value::Null, |&v| num64(v)))
                .collect();
            Value::Object(vec![
                ("name".into(), Value::String(name)),
                ("version".into(), num64(agg.expected_version)),
                ("replicas".into(), Value::Array(agg.replicas.iter().map(|&i| num(i)).collect())),
                ("desired".into(), Value::Array(agg.desired.iter().map(|&i| num(i)).collect())),
                ("replica_versions".into(), Value::Array(versions)),
                ("requests".into(), num64(agg.requests)),
                ("errors".into(), num64(agg.errors)),
                ("cache_hits".into(), num64(agg.cache_hits)),
                ("cache_misses".into(), num64(agg.cache_misses)),
                ("cache_filled".into(), num64(agg.cache_filled)),
                ("artifacts_built".into(), num64(agg.artifacts_built)),
            ])
        })
        .collect();
    let cluster = Value::Object(vec![
        ("backends".into(), num(shared.pool.len())),
        ("answering".into(), num(answering)),
        ("uptime_ms".into(), num64(shared.started.elapsed().as_millis() as u64)),
    ]);
    proto::ok_line(
        id,
        vec![
            ("health".into(), Value::String("ok".into())),
            ("cluster".into(), cluster),
            (
                "admission".into(),
                Value::Object(vec![
                    ("budget".into(), num64(budget)),
                    ("granted".into(), num64(granted)),
                ]),
            ),
            ("backends".into(), Value::Array(backends_json)),
            ("tenants".into(), Value::Array(tenants_json)),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_server::{Client, Server, ServerConfig};

    const BOOL: &str = "+ 1 1 1\n+ 1 1 0\n- 0 0 0\n- 0 0 1\n";

    fn backend() -> knn_server::ServerHandle {
        Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap().spawn()
    }

    fn router_over(handles: &[&knn_server::ServerHandle]) -> RouterHandle {
        let router = Router::bind("127.0.0.1:0", RouterConfig::default()).unwrap();
        for h in handles {
            router.attach(h.addr());
        }
        router.load("toy", LoadSource::Text(BOOL), None).unwrap();
        router.spawn()
    }

    /// The cluster resource plane: `slo` set fans to both backends, `top`
    /// scrapes and merges their rows — bytes sum across the replicas, QPS
    /// sums, burn max-merges — and the merged row reports nonzero bytes
    /// for the tenant replicated on ≥ 2 backends.
    #[test]
    fn top_verb_merges_resource_rows_across_backends() {
        let (b0, b1) = (backend(), backend());
        let handle = router_over(&[&b0, &b1]);
        let mut c = Client::connect(handle.addr()).unwrap();

        // Warm both replicas (the scatter round-robins a batch over them).
        let mut input = String::new();
        for i in 0..8 {
            input.push_str(&format!(
                "{{\"dataset\":\"toy\",\"id\":\"q{i}\",\"cmd\":\"classify\",\"metric\":\"hamming\",\"point\":[{},{},1]}}\n",
                i % 2,
                (i / 2) % 2
            ));
        }
        assert_eq!(c.run_stream(&input).unwrap().len(), 8);

        let set = c
            .roundtrip(r#"{"id":"o","verb":"slo","name":"toy","quantile":0.5,"threshold_us":0}"#)
            .unwrap();
        assert!(set.contains(r#""slo":"toy""#) && set.contains(r#""replicas":2"#), "{set}");

        let t = c.roundtrip(r#"{"id":"t","verb":"top"}"#).unwrap();
        let parsed = parse_bytes(t.as_bytes()).unwrap();
        assert_eq!(parsed.get("backends_scraped"), Some(&Value::Number(2.0)), "{t}");
        let Some(Value::Array(rows)) = parsed.get("top") else { panic!("top member: {t}") };
        assert_eq!(rows.len(), 1, "one merged row for the one tenant: {t}");
        let row = &rows[0];
        assert_eq!(row.get("tenant"), Some(&Value::String("toy".into())));
        let merged_total = row.get("bytes_total").and_then(Value::as_u64).unwrap();
        assert!(merged_total > 0, "{t}");
        assert!(row.get("qps").and_then(Value::as_f64).is_some(), "{t}");
        assert!(
            row.get("slo_burn").and_then(Value::as_f64).unwrap() > 0.0,
            "a 0us threshold burns on whichever replica served traffic: {t}"
        );

        // The merged bytes are the sum over both replicas: ask one backend
        // directly and check the router's row is at least as large.
        let mut direct = Client::connect(b0.addr()).unwrap();
        let one = direct.roundtrip(r#"{"id":"d","verb":"top"}"#).unwrap();
        let one = parse_bytes(one.as_bytes()).unwrap();
        let Some(Value::Array(one_rows)) = one.get("top") else { panic!("{one:?}") };
        let one_total = one_rows[0].get("bytes_total").and_then(Value::as_u64).unwrap();
        assert!(
            one_total > 0 && merged_total > one_total,
            "sum over replicas: {merged_total} vs single-backend {one_total}"
        );

        // Reading the merged status sums windows and max-merges burn.
        let status = c.roundtrip(r#"{"id":"g","verb":"slo","name":"toy"}"#).unwrap();
        assert!(status.contains(r#""replicas":2"#) && status.contains(r#""burn":"#), "{status}");

        handle.shutdown();
        b0.shutdown();
        b1.shutdown();
    }

    #[test]
    fn end_to_end_over_two_backends() {
        let (b0, b1) = (backend(), backend());
        let handle = router_over(&[&b0, &b1]);
        let mut c = Client::connect(handle.addr()).unwrap();

        let pong = c.roundtrip(r#"{"id":"p","verb":"ping"}"#).unwrap();
        assert_eq!(pong, r#"{"id":"p","ok":true,"pong":true}"#);

        // The same queries a single server would get, same response bytes.
        let resp = c
            .roundtrip(
                r#"{"dataset":"toy","id":"q","cmd":"classify","metric":"hamming","point":[1,1,1]}"#,
            )
            .unwrap();
        assert_eq!(resp, r#"{"id":"q","ok":true,"route":"hamming-index","label":"+"}"#);

        // A query without an id gets the client's line number, not the
        // backend connection's.
        for _ in 0..3 {
            c.roundtrip(r#"{"verb":"list"}"#).unwrap(); // advance the line counter
        }
        let resp = c
            .roundtrip(r#"{"dataset":"toy","cmd":"classify","metric":"hamming","point":[0,0,0]}"#)
            .unwrap();
        assert!(resp.starts_with(r#"{"id":"6","#), "{resp}");

        let missing = c.roundtrip(r#"{"dataset":"nope","id":"m","cmd":"classify","point":[1]}"#);
        assert!(missing.unwrap().contains("no dataset named `nope`"));

        let list = c.roundtrip(r#"{"id":"ls","verb":"list"}"#).unwrap();
        assert!(list.contains(r#""name":"toy""#) && list.contains(r#""replicas":[0,1]"#), "{list}");

        let stats = c.roundtrip(r#"{"id":"st","verb":"stats"}"#).unwrap();
        assert!(stats.contains(r#""health":"ok""#), "{stats}");
        assert!(stats.contains(r#""answering":2"#), "{stats}");
        // The barrier makes the aggregated request counter deterministic:
        // both queries above are counted, on whichever replicas ran them.
        assert!(stats.contains(r#""requests":2"#), "{stats}");

        let un = c.roundtrip(r#"{"id":"u","verb":"unload","name":"toy"}"#).unwrap();
        assert!(un.contains(r#""unloaded":"toy""#), "{un}");
        let gone = c.roundtrip(r#"{"dataset":"toy","id":"g","cmd":"classify","point":[1]}"#);
        assert!(gone.unwrap().contains("no dataset named"), "tenant unloaded");

        let bye = c.roundtrip(r#"{"id":"q","verb":"quit"}"#).unwrap();
        assert!(bye.contains(r#""bye":true"#), "{bye}");
        assert_eq!(c.recv().unwrap(), None, "router closes after quit");

        handle.shutdown();
        b0.shutdown();
        b1.shutdown();
    }

    #[test]
    fn load_with_replication_hint_and_reload_replaces() {
        let (b0, b1) = (backend(), backend());
        let router = Router::bind("127.0.0.1:0", RouterConfig::default()).unwrap();
        router.attach(b0.addr());
        router.attach(b1.addr());
        let handle = router.spawn();
        let mut c = Client::connect(handle.addr()).unwrap();

        let one = c
            .roundtrip(&format!(
                r#"{{"id":"l","verb":"load","name":"solo","replicas":1,"text":{}}}"#,
                Value::String(BOOL.into()).to_json()
            ))
            .unwrap();
        assert!(one.contains(r#""ok":true"#), "{one}");
        let replicas: Vec<char> = one.chars().filter(|c| c.is_ascii_digit()).collect();
        assert_eq!(replicas.len(), 1, "one replica placed: {one}");

        // Queries work against a replication-1 tenant.
        let resp = c
            .roundtrip(
                r#"{"dataset":"solo","id":"q","cmd":"classify","metric":"hamming","point":[1,0,1]}"#,
            )
            .unwrap();
        assert!(resp.contains(r#""ok":true"#), "{resp}");

        // Re-loading the name atomically replaces the tenant cluster-wide:
        // the new (1-dimensional) dataset answers, the old one is gone.
        let again =
            c.roundtrip(r#"{"id":"l2","verb":"load","name":"solo","text":"+ 1\n- 0"}"#).unwrap();
        assert!(again.contains(r#""ok":true"#), "{again}");
        let resp = c
            .roundtrip(
                r#"{"dataset":"solo","id":"q2","cmd":"classify","metric":"hamming","point":[1]}"#,
            )
            .unwrap();
        assert_eq!(resp, r#"{"id":"q2","ok":true,"route":"hamming-index","label":"+"}"#);

        handle.shutdown();
        b0.shutdown();
        b1.shutdown();
    }

    #[test]
    fn malformed_lines_get_error_responses_and_the_connection_survives() {
        let b0 = backend();
        let handle = router_over(&[&b0]);
        let mut c = Client::connect(handle.addr()).unwrap();
        for bad in ["not json", "{\"verb\":\"fly\"}", "[]", "{\"cmd\":\"classify\"}"] {
            let resp = c.roundtrip(bad).unwrap();
            assert!(resp.contains(r#""ok":false"#), "{bad} -> {resp}");
        }
        let resp = c
            .roundtrip(r#"{"dataset":"toy","cmd":"classify","metric":"hamming","point":[0,0,0]}"#)
            .unwrap();
        assert!(resp.contains(r#""label":"-""#), "{resp}");
        handle.shutdown();
        b0.shutdown();
    }

    #[test]
    fn dead_replica_at_dispatch_time_fails_over_to_the_survivor() {
        let live = backend();
        // A backend that is gone before the first query: bind-then-drop.
        let dead = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);

        let router = Router::bind(
            "127.0.0.1:0",
            RouterConfig { probe_interval: Duration::ZERO, ..RouterConfig::default() },
        )
        .unwrap();
        router.attach(live.addr());
        router.attach(dead_addr);
        router.load("toy", LoadSource::Text(BOOL), None).unwrap();
        let handle = router.spawn();

        let mut c = Client::connect(handle.addr()).unwrap();
        // Round-robin would alternate replicas; every query must still be
        // answered (by the survivor), bytes intact.
        for i in 0..8 {
            let resp = c
                .roundtrip(&format!(
                    r#"{{"dataset":"toy","id":"q{i}","cmd":"classify","metric":"hamming","point":[1,1,{}]}}"#,
                    i % 2
                ))
                .unwrap();
            assert!(resp.starts_with(&format!("{{\"id\":\"q{i}\",\"ok\":true")), "{resp}");
        }
        handle.shutdown();
        live.shutdown();
    }

    #[test]
    fn spread_one_anchors_connections_but_still_fails_over() {
        let live = backend();
        let dead = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);

        let router = Router::bind(
            "127.0.0.1:0",
            RouterConfig { spread: 1, probe_interval: Duration::ZERO, ..RouterConfig::default() },
        )
        .unwrap();
        router.attach(dead_addr); // id 0: some connections anchor here
        router.attach(live.addr());
        router.load("toy", LoadSource::Text(BOOL), None).unwrap();
        let handle = router.spawn();

        // Several connections: whichever anchor each one gets, every query
        // must be answered correctly (dead-anchored connections fall back
        // beyond their window).
        for conn in 0..4 {
            let mut c = Client::connect(handle.addr()).unwrap();
            let resp = c
                .roundtrip(
                    r#"{"dataset":"toy","id":"q","cmd":"classify","metric":"hamming","point":[1,1,1]}"#,
                )
                .unwrap();
            assert_eq!(
                resp, r#"{"id":"q","ok":true,"route":"hamming-index","label":"+"}"#,
                "connection {conn}"
            );
        }
        handle.shutdown();
        live.shutdown();
    }

    #[test]
    fn load_records_only_acknowledging_replicas() {
        let live = backend();
        let dead = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap();
        drop(dead);

        let router = Router::bind(
            "127.0.0.1:0",
            RouterConfig { probe_interval: Duration::ZERO, ..RouterConfig::default() },
        )
        .unwrap();
        router.attach(live.addr()); // id 0
        router.attach(dead_addr); // id 1: never acks the load
        let replicas = router.load("toy", LoadSource::Text(BOOL), None).unwrap();
        assert_eq!(replicas, vec![0], "only the acking replica is placed");

        let handle = router.spawn();
        let mut c = Client::connect(handle.addr()).unwrap();
        let list = c.roundtrip(r#"{"id":"ls","verb":"list"}"#).unwrap();
        assert!(list.contains(r#""replicas":[0]"#), "{list}");
        // Queries never touch the backend that never loaded the data.
        let resp = c
            .roundtrip(
                r#"{"dataset":"toy","id":"q","cmd":"classify","metric":"hamming","point":[1,1,1]}"#,
            )
            .unwrap();
        assert_eq!(resp, r#"{"id":"q","ok":true,"route":"hamming-index","label":"+"}"#);

        handle.shutdown();
        live.shutdown();
    }

    #[test]
    fn amnesiac_replica_is_masked_and_reconciled() {
        let (b0, b1) = (backend(), backend());
        let router = Router::bind(
            "127.0.0.1:0",
            RouterConfig { probe_interval: Duration::from_millis(50), ..RouterConfig::default() },
        )
        .unwrap();
        router.attach(b0.addr());
        router.attach(b1.addr());
        router.load("toy", LoadSource::Text(BOOL), None).unwrap();
        let handle = router.spawn();

        // A replica loses the tenant behind the router's back (the shape of
        // a backend restarting with an empty registry).
        let mut direct = Client::connect(b1.addr()).unwrap();
        let un = direct.roundtrip(r#"{"verb":"unload","name":"toy"}"#).unwrap();
        assert!(un.contains(r#""ok":true"#), "{un}");

        // Response bytes stay oracle-identical throughout: the amnesiac
        // replica's "no dataset" answers are retried on the survivor.
        let mut c = Client::connect(handle.addr()).unwrap();
        for i in 0..12 {
            let resp = c
                .roundtrip(&format!(
                    r#"{{"dataset":"toy","id":"q{i}","cmd":"classify","metric":"hamming","point":[1,1,1]}}"#
                ))
                .unwrap();
            assert_eq!(
                resp,
                format!(r#"{{"id":"q{i}","ok":true,"route":"hamming-index","label":"+"}}"#)
            );
        }

        // The probe loop's reconciler re-loads the tenant onto the replica.
        let mut reloaded = false;
        for _ in 0..100 {
            let stats = direct.roundtrip(r#"{"verb":"stats"}"#).unwrap();
            if stats.contains(r#""name":"toy""#) {
                reloaded = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(reloaded, "probe loop never re-loaded the amnesiac replica");

        handle.shutdown();
        b0.shutdown();
        b1.shutdown();
    }

    /// The router's `metrics` verb merges the backends' expositions
    /// (request counts sum to exactly the queries sent — the bucket sets
    /// are identical, so the key-wise merge is exact) and appends its own
    /// `knn_router_*` series; `slow` drains every backend's ring into one
    /// slowest-first list tagged with backend ids.
    #[test]
    fn metrics_verb_merges_backends_and_adds_router_series() {
        let (b0, b1) = (backend(), backend());
        let handle = router_over(&[&b0, &b1]);
        let mut c = Client::connect(handle.addr()).unwrap();
        for i in 0..6 {
            // A counterfactual among them: multi-µs, so the slow rings are
            // deterministically non-empty below.
            let cmd = if i == 0 { "counterfactual" } else { "classify" };
            let resp = c
                .roundtrip(&format!(
                    r#"{{"dataset":"toy","id":"q{i}","cmd":"{cmd}","metric":"hamming","point":[1,1,{}]}}"#,
                    i % 2
                ))
                .unwrap();
            assert!(resp.contains(r#""ok":true"#), "{resp}");
        }

        let m = c.roundtrip(r#"{"id":"m","verb":"metrics"}"#).unwrap();
        let parsed = parse_bytes(m.as_bytes()).unwrap();
        let Some(Value::String(text)) = parsed.get("metrics") else {
            panic!("metrics member missing: {m}");
        };
        exposition::validate(text).unwrap();
        let samples = exposition::parse(text);
        let merged_count: f64 = samples
            .iter()
            .filter(|(k, _)| k.starts_with("knn_request_duration_us_count{"))
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(merged_count, 6.0, "merged request count covers every query:\n{text}");
        assert_eq!(
            samples.get("knn_router_dispatches_total").copied(),
            Some(6.0),
            "router-own series appended:\n{text}"
        );
        assert_eq!(
            samples.get("knn_router_backends_scraped").copied(),
            Some(2.0),
            "scrape coverage visible:\n{text}"
        );
        assert!(
            !samples.contains_key("knn_router_scrape_failures_total"),
            "no scrape failed here:\n{text}"
        );

        // The merged counts equal the bucket-wise sum of what the backends
        // report directly (the exposition is all cumulative counters, so
        // asking the backends afterwards sees the same totals).
        let mut direct = 0.0;
        for b in [&b0, &b1] {
            let mut bc = Client::connect(b.addr()).unwrap();
            let bm = bc.roundtrip(r#"{"id":"bm","verb":"metrics"}"#).unwrap();
            let bv = parse_bytes(bm.as_bytes()).unwrap();
            let Some(Value::String(btext)) = bv.get("metrics") else { panic!("{bm}") };
            direct += exposition::parse(btext)
                .iter()
                .filter(|(k, _)| k.starts_with("knn_request_duration_us_count{"))
                .map(|(_, v)| *v)
                .sum::<f64>();
        }
        assert_eq!(merged_count, direct, "merge equals the backend sum");

        let s = c.roundtrip(r#"{"id":"s","verb":"slow"}"#).unwrap();
        assert!(s.contains(r#""backend":"#) && s.contains(r#""total_us":"#), "{s}");

        handle.shutdown();
        b0.shutdown();
        b1.shutdown();
    }

    /// The distributed forensics plane: a traced query answers
    /// byte-identically to an untraced one, and `trace <id>` through the
    /// router returns ONE stitched tree — the router's `dispatch` span,
    /// tagged with the backend id, holding the backend's own `query` →
    /// `admission`/phase spans as children. `dump` merges every process's
    /// Chrome events under distinct pids.
    #[test]
    fn trace_verb_stitches_backend_spans_under_the_dispatch_span() {
        let (b0, b1) = (backend(), backend());
        let handle = router_over(&[&b0, &b1]);
        let mut c = Client::connect(handle.addr()).unwrap();

        let q = r#"{"dataset":"toy","id":"q","cmd":"counterfactual","metric":"hamming","point":[1,0,1]}"#;
        let traced = r#"{"dataset":"toy","id":"q","cmd":"counterfactual","metric":"hamming","point":[1,0,1],"trace":"t-x"}"#;
        let oracle = c.roundtrip(q).unwrap();
        assert_eq!(c.roundtrip(traced).unwrap(), oracle, "trace id never reaches response bytes");

        let t = c.roundtrip(r#"{"id":"t","verb":"trace","trace":"t-x"}"#).unwrap();
        let parsed = parse_bytes(t.as_bytes()).unwrap();
        let Some(Value::Array(roots)) = parsed.get("spans") else { panic!("{t}") };
        let dispatch = roots
            .iter()
            .find(|n| n.get("name").and_then(Value::as_str) == Some("dispatch"))
            .unwrap_or_else(|| panic!("no dispatch span in {t}"));
        let backend_id = dispatch.get("backend").and_then(Value::as_u64).expect("backend tag");
        assert!(backend_id <= 1, "{t}");
        let Some(Value::Array(children)) = dispatch.get("children") else { panic!("{t}") };
        let query = children
            .iter()
            .find(|n| n.get("name").and_then(Value::as_str) == Some("query"))
            .unwrap_or_else(|| panic!("backend query span not stitched: {t}"));
        let Some(Value::Array(phases)) = query.get("children") else { panic!("{t}") };
        let names: Vec<&str> =
            phases.iter().filter_map(|n| n.get("name").and_then(Value::as_str)).collect();
        assert!(names.contains(&"admission"), "cross-process tree has phases: {names:?}");

        let d = c.roundtrip(r#"{"id":"d","verb":"dump"}"#).unwrap();
        let parsed = parse_bytes(d.as_bytes()).unwrap();
        let Some(Value::String(chrome)) = parsed.get("chrome") else { panic!("{d}") };
        let Ok(Value::Array(events)) = parse_bytes(chrome.as_bytes()) else {
            panic!("chrome dump not a JSON array")
        };
        assert!(!events.is_empty());
        let pids: std::collections::BTreeSet<u64> =
            events.iter().filter_map(|e| e.get("pid").and_then(Value::as_u64)).collect();
        assert!(pids.iter().any(|&p| p >= 1), "backend events present under their pid: {pids:?}");

        handle.shutdown();
        b0.shutdown();
        b1.shutdown();
    }

    #[test]
    fn router_with_no_backends_refuses_load() {
        let router = Router::bind("127.0.0.1:0", RouterConfig::default()).unwrap();
        assert!(router.load("x", LoadSource::Text(BOOL), None).is_err());
    }

    /// Mutations fan out to every replica: after an insert through the
    /// router, both replicas answer the new bytes directly, versions agree,
    /// and the cluster stats expose them.
    #[test]
    fn mutations_reach_every_replica_and_versions_agree() {
        let (b0, b1) = (backend(), backend());
        let handle = router_over(&[&b0, &b1]);
        let mut c = Client::connect(handle.addr()).unwrap();

        let q = r#"{"dataset":"toy","id":"q","cmd":"classify","metric":"hamming","point":[0,0,1]}"#;
        assert!(c.roundtrip(q).unwrap().contains(r#""label":"-""#));
        let ins = c
            .roundtrip(r#"{"id":"i","verb":"insert","name":"toy","label":"+","point":[0,0,1]}"#)
            .unwrap();
        assert_eq!(ins, r#"{"id":"i","ok":true,"inserted":"toy","version":1,"replicas":[0,1]}"#);
        assert!(c.roundtrip(q).unwrap().contains(r#""label":"+""#));

        // Both replicas hold the mutation (ask them directly).
        for b in [&b0, &b1] {
            let mut direct = Client::connect(b.addr()).unwrap();
            let resp = direct
                .roundtrip(r#"{"dataset":"toy","id":"d","cmd":"classify","metric":"hamming","point":[0,0,1]}"#)
                .unwrap();
            assert!(resp.contains(r#""label":"+""#), "replica disagrees: {resp}");
            let stats = direct.roundtrip(r#"{"verb":"stats"}"#).unwrap();
            assert!(stats.contains(r#""version":1"#), "replica version: {stats}");
        }

        let stats = c.roundtrip(r#"{"id":"st","verb":"stats"}"#).unwrap();
        assert!(stats.contains(r#""version":1"#), "{stats}");
        assert!(stats.contains(r#""replica_versions":[1,1]"#), "{stats}");

        let rm = c.roundtrip(r#"{"id":"r","verb":"remove","name":"toy","index":4}"#).unwrap();
        assert_eq!(rm, r#"{"id":"r","ok":true,"removed":"toy","version":2,"replicas":[0,1]}"#);
        assert!(c.roundtrip(q).unwrap().contains(r#""label":"-""#), "mutation round-trip");

        handle.shutdown();
        b0.shutdown();
        b1.shutdown();
    }

    /// A replica that misses a mutation (amnesiac at fan-out time) is
    /// demoted before the client hears the ack: the active set shrinks to
    /// the acking replica, queries keep answering the post-mutation bytes,
    /// and the divergence is visible in the cluster stats (`null` in the
    /// demoted replica's version slot). Probing is off, so the demotion is
    /// observable deterministically.
    #[test]
    fn divergent_replica_is_demoted_and_visible_in_stats() {
        let (b0, b1) = (backend(), backend());
        let router = Router::bind(
            "127.0.0.1:0",
            RouterConfig { probe_interval: Duration::ZERO, ..RouterConfig::default() },
        )
        .unwrap();
        router.attach(b0.addr());
        router.attach(b1.addr());
        router.load("toy", LoadSource::Text(BOOL), None).unwrap();
        let handle = router.spawn();

        // Replica 1 loses the tenant behind the router's back (the shape of
        // a restart with an empty registry).
        let mut direct = Client::connect(b1.addr()).unwrap();
        direct.roundtrip(r#"{"verb":"unload","name":"toy"}"#).unwrap();

        // The mutation: replica 1 cannot ack it and is demoted on the spot.
        let mut c = Client::connect(handle.addr()).unwrap();
        let ins = c
            .roundtrip(r#"{"id":"i","verb":"insert","name":"toy","label":"+","point":[0,0,1]}"#)
            .unwrap();
        assert_eq!(ins, r#"{"id":"i","ok":true,"inserted":"toy","version":1,"replicas":[0]}"#);

        // Every query answers the post-mutation bytes (only the consistent
        // replica is active).
        let q = r#"{"dataset":"toy","id":"q","cmd":"classify","metric":"hamming","point":[0,0,1]}"#;
        for _ in 0..8 {
            assert!(c.roundtrip(q).unwrap().contains(r#""label":"+""#));
        }

        let stats = c.roundtrip(r#"{"id":"st","verb":"stats"}"#).unwrap();
        assert!(stats.contains(r#""replicas":[0]"#), "{stats}");
        assert!(stats.contains(r#""desired":[0,1]"#), "{stats}");
        assert!(stats.contains(r#""replica_versions":[1,null]"#), "divergence visible: {stats}");

        handle.shutdown();
        b0.shutdown();
        b1.shutdown();
    }

    /// With the probe loop on, a divergent replica is rebuilt from the
    /// retained seed + mutation log (one atomic load with `replay`) and
    /// re-admitted at the exact current version.
    #[test]
    fn divergent_replica_is_rebuilt_by_log_replay() {
        let (b0, b1) = (backend(), backend());
        let router = Router::bind(
            "127.0.0.1:0",
            RouterConfig { probe_interval: Duration::from_millis(50), ..RouterConfig::default() },
        )
        .unwrap();
        router.attach(b0.addr());
        router.attach(b1.addr());
        router.load("toy", LoadSource::Text(BOOL), None).unwrap();
        let handle = router.spawn();

        let mut direct = Client::connect(b1.addr()).unwrap();
        direct.roundtrip(r#"{"verb":"unload","name":"toy"}"#).unwrap();

        // The mutation lands on whichever replicas are consistent at that
        // moment (the reconciler may or may not have re-seeded replica 1
        // yet — either way the version advances to 1 cluster-wide).
        let mut c = Client::connect(handle.addr()).unwrap();
        let ins = c
            .roundtrip(r#"{"id":"i","verb":"insert","name":"toy","label":"+","point":[0,0,1]}"#)
            .unwrap();
        assert!(ins.contains(r#""version":1"#), "{ins}");
        let q = r#"{"dataset":"toy","id":"q","cmd":"classify","metric":"hamming","point":[0,0,1]}"#;
        for _ in 0..8 {
            assert!(c.roundtrip(q).unwrap().contains(r#""label":"+""#));
        }

        // The reconciler rebuilds replica 1 at version 1 and re-admits it.
        let mut converged = false;
        let mut stats = String::new();
        for _ in 0..100 {
            stats = c.roundtrip(r#"{"id":"st","verb":"stats"}"#).unwrap();
            if stats.contains(r#""replica_versions":[1,1]"#)
                && stats.contains(r#""replicas":[0,1]"#)
            {
                converged = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(converged, "replica never re-admitted at the current version: {stats}");
        // And it serves the mutated bytes directly.
        let resp = direct
            .roundtrip(
                r#"{"dataset":"toy","id":"d","cmd":"classify","metric":"hamming","point":[0,0,1]}"#,
            )
            .unwrap();
        assert!(resp.contains(r#""label":"+""#), "{resp}");

        handle.shutdown();
        b0.shutdown();
        b1.shutdown();
    }
}
