//! The backend pool: the `knn-server` processes the router fans out to.
//!
//! A backend is either **attached** (a server someone else runs, named by
//! address) or **spawned** (an `xknn serve` child process the router starts
//! on an ephemeral port and owns — it is shut down with the router). Each
//! backend carries:
//!
//! * a **health flag** — consulted at dispatch time. It is cleared the moment
//!   any router thread sees the backend's TCP fail (connect, send, or
//!   receive), and set again when a health probe gets a well-formed `stats`
//!   response. Placement never looks at it (see [`crate::placement`]);
//! * a **control connection** — a dedicated client the router uses for
//!   `load`/`unload` fan-out, `stats` aggregation, and probes, so control
//!   traffic never interleaves with a client's pipelined query stream;
//! * the **probe counters** the cluster `stats` verb reports.
//!
//! The probe loop runs on its own thread (started by the router) and is the
//! mark-*up* path: data-path errors only ever mark a backend down.

use knn_server::Client;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How patiently the router dials a backend (covers the spawn race where the
/// child announced its port but its accept loop isn't scheduled yet).
pub const CONNECT_ATTEMPTS: u32 = 5;
/// First retry backoff for backend dials (doubles per attempt, capped by
/// [`Client::connect_retry`]).
pub const CONNECT_BACKOFF: Duration = Duration::from_millis(20);

/// One backend server (see module docs).
pub struct Backend {
    /// Position in the pool — the id placement hashes over.
    pub id: usize,
    /// The backend's TCP address.
    pub addr: SocketAddr,
    healthy: AtomicBool,
    probes_ok: AtomicU64,
    probes_failed: AtomicU64,
    control: Mutex<Option<Client>>,
    child: Mutex<Option<Child>>,
}

/// A point-in-time snapshot of one backend (for the cluster `stats` verb).
#[derive(Clone, Debug)]
pub struct BackendSnapshot {
    /// Pool id.
    pub id: usize,
    /// Address.
    pub addr: SocketAddr,
    /// Dispatchable right now?
    pub healthy: bool,
    /// Probes answered.
    pub probes_ok: u64,
    /// Probes failed.
    pub probes_failed: u64,
    /// Was this backend spawned (and thus owned) by the router?
    pub spawned: bool,
}

impl Backend {
    fn new(id: usize, addr: SocketAddr, child: Option<Child>) -> Backend {
        Backend {
            id,
            addr,
            healthy: AtomicBool::new(true),
            probes_ok: AtomicU64::new(0),
            probes_failed: AtomicU64::new(0),
            control: Mutex::new(None),
            child: Mutex::new(child),
        }
    }

    /// Is this backend currently dispatchable?
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Relaxed)
    }

    /// Marks the backend down (any router thread that observes a TCP failure
    /// calls this; the probe loop marks it up again once it answers).
    pub fn mark_down(&self) {
        self.healthy.store(false, Ordering::Relaxed);
    }

    /// Marks the backend up (probe-loop only).
    pub fn mark_up(&self) {
        self.healthy.store(true, Ordering::Relaxed);
    }

    /// One request/response on the control connection, (re)dialing it if
    /// needed. Any failure drops the connection and marks the backend down,
    /// so the next caller redials.
    pub fn control_roundtrip(&self, line: &str) -> Result<String, String> {
        let mut guard = self.control.lock().unwrap();
        if guard.is_none() {
            match Client::connect_retry(self.addr, CONNECT_ATTEMPTS, CONNECT_BACKOFF) {
                Ok(c) => *guard = Some(c),
                Err(e) => {
                    self.mark_down();
                    return Err(format!("backend {} unreachable: {e}", self.addr));
                }
            }
        }
        let result = guard.as_mut().expect("dialed above").roundtrip(line);
        match result {
            Ok(resp) => Ok(resp),
            Err(e) => {
                *guard = None;
                self.mark_down();
                Err(format!("backend {} failed: {e}", self.addr))
            }
        }
    }

    /// Health probe: a `stats` roundtrip on the control connection. A
    /// well-formed `"ok":true` response marks the backend up; anything else
    /// marks it down. Returns the raw response for aggregation.
    pub fn probe(&self) -> Option<String> {
        let resp = self.control_roundtrip(r#"{"id":"probe","verb":"stats"}"#);
        let ok = resp
            .as_deref()
            .ok()
            .and_then(|line| knn_engine::json::parse(line).ok())
            .is_some_and(|v| matches!(v.get("ok"), Some(knn_engine::json::Value::Bool(true))));
        if ok {
            self.probes_ok.fetch_add(1, Ordering::Relaxed);
            self.mark_up();
            resp.ok()
        } else {
            self.probes_failed.fetch_add(1, Ordering::Relaxed);
            self.mark_down();
            None
        }
    }

    /// Snapshot for the cluster `stats` verb.
    pub fn snapshot(&self) -> BackendSnapshot {
        BackendSnapshot {
            id: self.id,
            addr: self.addr,
            healthy: self.is_healthy(),
            probes_ok: self.probes_ok.load(Ordering::Relaxed),
            probes_failed: self.probes_failed.load(Ordering::Relaxed),
            spawned: self.child.lock().unwrap().is_some(),
        }
    }
}

/// The router's fixed-at-serve-time set of backends.
#[derive(Default)]
pub struct BackendPool {
    backends: Mutex<Vec<Arc<Backend>>>,
}

impl BackendPool {
    /// An empty pool.
    pub fn new() -> BackendPool {
        BackendPool::default()
    }

    /// Registers an already-running server by address.
    pub fn attach(&self, addr: SocketAddr) -> Arc<Backend> {
        let mut backends = self.backends.lock().unwrap();
        let backend = Arc::new(Backend::new(backends.len(), addr, None));
        backends.push(backend.clone());
        backend
    }

    /// Spawns `xknn serve --addr 127.0.0.1:0 <extra_args>` as a child
    /// process, reads the `listening on <addr>` banner from its stdout, and
    /// registers it. The child is owned: [`BackendPool::shutdown_spawned`]
    /// stops it with the router.
    pub fn spawn(
        &self,
        xknn: &std::path::Path,
        extra_args: &[String],
    ) -> std::io::Result<Arc<Backend>> {
        let mut child = Command::new(xknn)
            .arg("serve")
            .args(["--addr", "127.0.0.1:0"])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()?;
        let mut banner = String::new();
        let read = {
            use std::io::BufRead;
            let stdout = child.stdout.take().expect("stdout is piped");
            std::io::BufReader::new(stdout).read_line(&mut banner)
        };
        let addr: Option<SocketAddr> = read
            .ok()
            .and_then(|_| banner.trim().strip_prefix("listening on "))
            .and_then(|a| a.parse().ok());
        let Some(addr) = addr else {
            // A child that crashed before binding (failed banner read) or
            // printed something unexpected must not be orphaned (kill) nor
            // left a zombie (wait reaps it).
            let _ = child.kill();
            let _ = child.wait();
            return Err(std::io::Error::other(format!("unexpected serve banner: {banner:?}")));
        };
        let mut backends = self.backends.lock().unwrap();
        let backend = Arc::new(Backend::new(backends.len(), addr, Some(child)));
        backends.push(backend.clone());
        Ok(backend)
    }

    /// Every backend, in id order.
    pub fn backends(&self) -> Vec<Arc<Backend>> {
        self.backends.lock().unwrap().clone()
    }

    /// Pool size.
    pub fn len(&self) -> usize {
        self.backends.lock().unwrap().len()
    }

    /// Is the pool empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The backend with pool id `id`.
    pub fn get(&self, id: usize) -> Option<Arc<Backend>> {
        self.backends.lock().unwrap().get(id).cloned()
    }

    /// Stops every spawned child: ask politely over the protocol, then make
    /// sure with a kill (covers a child wedged past its accept loop), then
    /// reap. Attached backends are left alone — the router does not own them.
    pub fn shutdown_spawned(&self) {
        for b in self.backends() {
            let mut child = b.child.lock().unwrap();
            if let Some(mut c) = child.take() {
                let _ = b.control_roundtrip(r#"{"id":"bye","verb":"shutdown"}"#);
                let _ = c.kill();
                let _ = c.wait();
            }
        }
    }
}

impl Drop for BackendPool {
    fn drop(&mut self) {
        self.shutdown_spawned();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_server::{Server, ServerConfig};

    #[test]
    fn attach_probe_and_mark_down_up() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
        let handle = server.spawn();
        let pool = BackendPool::new();
        let b = pool.attach(handle.addr());
        assert_eq!((b.id, pool.len()), (0, 1));
        assert!(b.is_healthy());
        assert!(b.probe().is_some(), "live server answers the probe");
        assert_eq!(b.snapshot().probes_ok, 1);

        b.mark_down();
        assert!(!b.is_healthy());
        assert!(b.probe().is_some(), "probe marks a live backend up again");
        assert!(b.is_healthy());
        handle.shutdown();
    }

    #[test]
    fn dead_backend_fails_probe_and_stays_down() {
        // Bind-then-drop: an address with nothing listening.
        let dead = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = dead.local_addr().unwrap();
        drop(dead);
        let pool = BackendPool::new();
        let b = pool.attach(addr);
        assert!(b.probe().is_none());
        assert!(!b.is_healthy());
        assert_eq!(b.snapshot().probes_failed, 1);
    }
}
