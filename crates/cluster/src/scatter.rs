//! Per-connection batch scatter-gather: partition a client's pipelined
//! stream across a tenant's replicas, merge the responses back in request
//! order, and fail over mid-stream without changing a single output byte.
//!
//! Every client connection gets its own [`Dispatcher`]: one lazily-dialed
//! channel per backend it touches, one receiver thread per channel, and one
//! writer thread that reorders `(seq, bytes)` completions back into request
//! order — the same merge the single server does, so the client cannot tell
//! a router from a server by looking at the bytes.
//!
//! Why request-level sharding is *sound*: every query's response is a pure
//! function of `(dataset, engine config, request)` — the engine's
//! determinism contract, pinned by its tests. Which replica executes a query
//! can change *when* the answer arrives, never what it is; the seq-merge
//! restores order. (Point-level sharding — splitting one dataset's points
//! across backends — would not have this property: k-NN is not decomposable
//! over point subsets without a distributed top-k merge.)
//!
//! **Failure model** (fail-stop): a backend that dies mid-stream takes its
//! channel down; every query still pending on that channel is redispatched
//! to another replica, where it recomputes to the identical bytes. A query
//! whose response was already merged is never re-run. Queries are
//! idempotent reads, so the at-least-once execution under failover is
//! invisible. Only when *every* replica of a tenant is gone does the client
//! see a router-authored error line. A backend that wedges (accepts bytes,
//! never answers) stalls its pending queries — fail-stop, not
//! byzantine-slow, is the contract, the same one the single server has with
//! its own worker pool.

use crate::placement::PlacementMap;
use crate::pool::{Backend, BackendPool, CONNECT_ATTEMPTS, CONNECT_BACKOFF};
use knn_server::proto;
use knn_telemetry::{SpanEvent, Telemetry};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One forwarded-but-unanswered query. Lives in exactly one place at any
/// time: a channel's pending queue, or the hands of the single failure
/// handler that drained it — that exclusivity is what makes at-least-once
/// redispatch produce exactly one response per seq.
pub(crate) struct PendingQuery {
    /// Slot in the client's response order.
    pub seq: u64,
    /// Response id (for router-authored error lines).
    pub id: String,
    /// Tenant, for re-placement on failover.
    pub tenant: String,
    /// The exact bytes forwarded to a backend, newline included.
    pub line: Vec<u8>,
    /// Dispatch attempts so far (caps the failover loop).
    pub attempts: usize,
    /// Trace id (client-sent or router-minted): the router records a
    /// `dispatch` span per traced completion, which the `trace` verb uses
    /// to stitch backend span trees under the right backend. `None` for
    /// untraced queries — they pay no clock read on the router.
    pub trace: Option<String>,
    /// Recorder timestamp at first dispatch (0 when untraced).
    pub start_us: u64,
    /// The query's cache-affinity key ([`knn_engine::cache::affinity_hash`])
    /// when affinity routing is on: equal-key queries prefer the same
    /// replica, so repeats land where the answer is already cached. `None`
    /// routes by the per-connection round-robin window.
    pub affinity: Option<u64>,
    /// The tenant's router-side version at dispatch time — the epoch label a
    /// cross-replica cache fill of this query's answer would carry. The fill
    /// worker re-checks it under the load lock before pushing, so an answer
    /// computed concurrently with a mutation fan-out can never be installed
    /// under the wrong epoch.
    pub version: u64,
}

/// Rendezvous score of `replica` for affinity key `key`: FNV-1a over the
/// key and replica-id bytes — the same process-stable hash (and the same
/// highest-score-wins scheme) tenant placement uses, so every connection on
/// every router ranks a tenant's replicas identically for a given key.
fn affinity_score(key: u64, replica: usize) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.to_le_bytes().into_iter().chain((replica as u64).to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The deterministic replica order for affinity key `key`: every replica,
/// ranked by rendezvous score descending (ties break on the id). The head
/// is the preferred replica; the tail is the failover order — also
/// deterministic, so after a replica dies, every connection agrees on
/// where the key's cache entries accumulate next.
pub(crate) fn affinity_order(key: u64, replicas: &[usize]) -> Vec<usize> {
    let mut scored: Vec<(u64, usize)> =
        replicas.iter().map(|&id| (affinity_score(key, id), id)).collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    scored.into_iter().map(|(_, id)| id).collect()
}

/// Records one router-side span for query `q`: a `dispatch` completion
/// (traced queries only) or a forced `failover` anomaly (any query a
/// failure path drained — those must survive for forensics even untraced).
/// Always forced: this is only called when traced or anomalous.
fn emit_query_span(
    disp: &Dispatcher,
    q: &PendingQuery,
    name: &'static str,
    backend_id: usize,
    anomaly: &'static str,
) {
    if q.trace.is_none() && anomaly.is_empty() {
        return;
    }
    let recorder = disp.telemetry.recorder();
    let end_us = recorder.now_us();
    let start_us = if q.start_us == 0 { end_us } else { q.start_us };
    recorder.push(
        SpanEvent {
            trace: q.trace.clone().unwrap_or_default(),
            seq: recorder.next_seq(),
            parent: 0,
            name,
            detail: format!("backend={backend_id}"),
            tenant: q.tenant.clone(),
            epoch: 0,
            start_us,
            dur_us: end_us.saturating_sub(start_us),
            anomaly,
        },
        true,
    );
}

/// Channel state: the write half and the in-order pending queue share one
/// mutex so a send and a channel death cannot race a query into limbo (or
/// into two places at once).
struct ChanState {
    stream: Option<TcpStream>,
    pending: VecDeque<PendingQuery>,
    dead: bool,
}

/// One backend channel of one client connection.
struct Chan {
    backend: Arc<Backend>,
    state: Mutex<ChanState>,
}

enum SendOutcome {
    /// Query is on the wire (and in the pending queue).
    Sent,
    /// Channel already dead; the query is handed back untouched.
    Rejected(PendingQuery),
    /// The send killed the channel: every pending query (the argument
    /// included) was drained and must be redispatched.
    Died(Vec<PendingQuery>),
}

impl Chan {
    fn send(&self, q: PendingQuery) -> SendOutcome {
        let mut st = self.state.lock().unwrap();
        if st.dead {
            return SendOutcome::Rejected(q);
        }
        // Write under the state lock, push on success: the receiver (which
        // pops under the same lock) cannot observe the query before it is
        // both on the wire and in the queue.
        match st.stream.as_mut().expect("live channel has a stream").write_all(&q.line) {
            Ok(()) => {
                st.pending.push_back(q);
                SendOutcome::Sent
            }
            Err(_) => {
                st.dead = true;
                if let Some(s) = st.stream.take() {
                    let _ = s.shutdown(Shutdown::Both);
                }
                let mut drained: Vec<PendingQuery> = st.pending.drain(..).collect();
                drained.push(q);
                SendOutcome::Died(drained)
            }
        }
    }

    /// Graceful close (connection teardown, after the completion barrier):
    /// no pending queries remain, so nothing is drained and the backend is
    /// not blamed for the EOF its receiver is about to see.
    fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.dead = true;
        if let Some(s) = st.stream.take() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

/// The per-connection scatter-gather state (see module docs).
pub(crate) struct Dispatcher {
    pool: Arc<BackendPool>,
    placement: Arc<PlacementMap>,
    out_tx: Sender<(u64, Vec<u8>)>,
    /// Final responses delivered (backend answers + router error lines).
    /// The control-verb barrier waits on `completed == dispatched`.
    completed: (Mutex<u64>, Condvar),
    chans: Mutex<HashMap<usize, Arc<Chan>>>,
    receivers: Mutex<Vec<JoinHandle<()>>>,
    /// Per-tenant round-robin cursor: consecutive queries for a hot tenant
    /// alternate over the replicas of this connection's window.
    rr: Mutex<HashMap<String, usize>>,
    /// This connection's starting offset into every replica list, so
    /// concurrent connections anchor on different replicas.
    anchor: usize,
    /// How many replicas one connection's batch scatters over (`0` = all).
    /// Small spreads trade per-client parallelism for fewer connections per
    /// backend — the right side of the trade once client count exceeds
    /// replica count. Failover ignores the window: every replica is a
    /// fallback candidate.
    spread: usize,
    /// Router-side counters: dispatches and failover redispatches (both
    /// out-of-band; never on the response path).
    telemetry: Arc<Telemetry>,
    /// Cross-replica cache-fill hub (`None` when affinity is off): every
    /// completed keyed response is offered for a best-effort push to the
    /// tenant's other replicas.
    fill: Option<Arc<crate::FillHub>>,
}

impl Dispatcher {
    pub fn new(
        pool: Arc<BackendPool>,
        placement: Arc<PlacementMap>,
        out_tx: Sender<(u64, Vec<u8>)>,
        anchor: usize,
        spread: usize,
        telemetry: Arc<Telemetry>,
        fill: Option<Arc<crate::FillHub>>,
    ) -> Arc<Dispatcher> {
        Arc::new(Dispatcher {
            pool,
            placement,
            out_tx,
            completed: (Mutex::new(0), Condvar::new()),
            chans: Mutex::new(HashMap::new()),
            receivers: Mutex::new(Vec::new()),
            rr: Mutex::new(HashMap::new()),
            anchor,
            spread,
            telemetry,
            fill,
        })
    }

    /// Delivers the final response bytes for a query slot. A failed send
    /// means the writer died with the client; the completion count must
    /// still advance or the barrier (and teardown) would hang.
    fn finish(&self, seq: u64, bytes: Vec<u8>) {
        let _ = self.out_tx.send((seq, bytes));
        let (count, cv) = &self.completed;
        *count.lock().unwrap() += 1;
        cv.notify_all();
    }

    /// Blocks until `dispatched` queries have final responses (the control
    /// barrier and the teardown barrier).
    pub fn wait_completed(&self, dispatched: u64) {
        let (count, cv) = &self.completed;
        let mut done = count.lock().unwrap();
        while *done < dispatched {
            done = cv.wait(done).unwrap();
        }
    }

    /// The channel to backend `id`, dialing it on first use. A failed dial
    /// registers a dead channel (so later queries skip the dial timeout) and
    /// marks the backend down. A dead channel whose backend the probe loop
    /// has since marked healthy is re-dialed and replaced — a long-lived
    /// client connection must not keep failing against a recovered backend.
    fn chan(self: &Arc<Self>, id: usize) -> Option<Arc<Chan>> {
        let backend = self.pool.get(id)?;
        if let Some(c) = self.chans.lock().unwrap().get(&id) {
            if !c.state.lock().unwrap().dead || !backend.is_healthy() {
                return Some(c.clone());
            }
            // Dead channel, recovered backend: fall through to re-dial.
        }
        let dialed = dial(&backend);
        // Between the check above and this insert another thread may have
        // dialed the same backend; keep its live channel and close ours.
        let mut chans = self.chans.lock().unwrap();
        if let Some(c) = chans.get(&id) {
            if !c.state.lock().unwrap().dead {
                if let Ok(s) = dialed {
                    let _ = s.shutdown(Shutdown::Both);
                }
                return Some(c.clone());
            }
        }
        let chan = match dialed {
            Ok(stream) => {
                let reader = match stream.try_clone() {
                    Ok(r) => r,
                    Err(_) => {
                        backend.mark_down();
                        return self.insert_dead(chans, id, backend);
                    }
                };
                let chan = Arc::new(Chan {
                    backend,
                    state: Mutex::new(ChanState {
                        stream: Some(stream),
                        pending: VecDeque::new(),
                        dead: false,
                    }),
                });
                let disp = self.clone();
                let rchan = chan.clone();
                let handle = std::thread::spawn(move || receiver_loop(disp, rchan, reader));
                let mut receivers = self.receivers.lock().unwrap();
                // Reap handles of receivers that already exited (dead
                // channels being re-dialed), so a flapping backend cannot
                // grow this list without bound over a long connection.
                receivers.retain(|h| !h.is_finished());
                receivers.push(handle);
                chan
            }
            Err(_) => {
                backend.mark_down();
                return self.insert_dead(chans, id, backend);
            }
        };
        chans.insert(id, chan.clone());
        Some(chan)
    }

    fn insert_dead(
        &self,
        mut chans: std::sync::MutexGuard<'_, HashMap<usize, Arc<Chan>>>,
        id: usize,
        backend: Arc<Backend>,
    ) -> Option<Arc<Chan>> {
        let chan = Arc::new(Chan {
            backend,
            state: Mutex::new(ChanState { stream: None, pending: VecDeque::new(), dead: true }),
        });
        chans.insert(id, chan.clone());
        Some(chan)
    }

    /// Routes one query to a replica of its tenant: healthy replicas first
    /// (rotated round-robin so a pipelined batch spreads over all of them),
    /// then marked-down ones as a last resort (the mark may be stale). Emits
    /// a router-authored error line only when every attempt is exhausted.
    pub fn dispatch(self: &Arc<Self>, mut q: PendingQuery) {
        let Some(replicas) = self.placement.get(&q.tenant) else {
            // Unloaded mid-stream (or a redispatch raced an unload).
            let msg = format!("no dataset named `{}` (try the load verb)", q.tenant);
            let line = proto::error_line(&q.id, &msg).into_bytes();
            return self.finish(q.seq, line);
        };
        if q.attempts > replicas.len() + 2 {
            let msg = format!("all replicas of `{}` are unavailable", q.tenant);
            let line = proto::error_line(&q.id, &msg).into_bytes();
            return self.finish(q.seq, line);
        }
        q.attempts += 1;

        // Candidate order. A keyed query (affinity routing on) ranks *all*
        // replicas by rendezvous score of its affinity key — the same order
        // on every connection, so a key's repeats always prefer the replica
        // that already cached its answer, and its failover order is equally
        // agreed-on. An unkeyed query keeps the window scheme: `spread`
        // replicas starting at this connection's anchor, round-robined by
        // the per-tenant cursor, with the remaining replicas as failover
        // fallback. Either way, health is snapshotted once per replica —
        // evaluating it twice could drop a replica flipping down→up from
        // both the healthy and unhealthy groups — then a stable partition
        // puts healthy ones first (a marked-down replica is still a last
        // resort: the mark may be stale).
        let n = replicas.len();
        let ordered: Vec<usize> = match q.affinity {
            Some(key) => affinity_order(key, &replicas),
            None => {
                let spread = if self.spread == 0 { n } else { self.spread.min(n) };
                // Read the cursor without advancing it: it moves only when
                // the send actually lands (below), so a dead replica in the
                // window cannot skew the round-robin toward its neighbors.
                let start =
                    self.rr.lock().unwrap().get(&q.tenant).copied().unwrap_or(0) % spread.max(1);
                (0..spread)
                    .map(|i| replicas[(self.anchor + (start + i) % spread) % n])
                    .chain((spread..n).map(|i| replicas[(self.anchor + i) % n]))
                    .collect()
            }
        };
        let mut candidates: Vec<(usize, bool)> = ordered
            .into_iter()
            .map(|id| (id, self.pool.get(id).map(|b| b.is_healthy()).unwrap_or(false)))
            .collect();
        candidates.sort_by_key(|&(_, healthy)| !healthy); // stable: order kept per group

        let rr_tenant = q.affinity.is_none().then(|| q.tenant.clone());
        for (id, _) in candidates {
            let Some(chan) = self.chan(id) else { continue };
            match chan.send(q) {
                SendOutcome::Sent => {
                    if let Some(tenant) = rr_tenant {
                        let mut rr = self.rr.lock().unwrap();
                        let c = rr.entry(tenant).or_insert(0);
                        *c = c.wrapping_add(1);
                    }
                    self.telemetry.add("knn_router_dispatches_total", 1);
                    return;
                }
                SendOutcome::Rejected(back) => q = back,
                SendOutcome::Died(drained) => {
                    chan.backend.mark_down();
                    self.telemetry.add("knn_router_failovers_total", drained.len() as u64);
                    // Everything the dead channel was holding — the query we
                    // just tried included — goes back through dispatch.
                    for p in drained {
                        emit_query_span(self, &p, "failover", id, "failover");
                        self.dispatch(p);
                    }
                    return;
                }
            }
        }
        let msg = format!("all replicas of `{}` are unavailable", q.tenant);
        let line = proto::error_line(&q.id, &msg).into_bytes();
        self.finish(q.seq, line);
    }

    /// Connection teardown. Callers must run the completion barrier first
    /// (`wait_completed(dispatched)`) so no channel still holds pending
    /// queries — then closing is graceful and the receivers drain out on
    /// EOF.
    pub fn close(&self) {
        for chan in self.chans.lock().unwrap().values() {
            chan.close();
        }
        for h in self.receivers.lock().unwrap().drain(..) {
            let _ = h.join();
        }
    }
}

/// Dials a backend's data channel with the same bounded-retry policy the
/// control path uses.
fn dial(backend: &Backend) -> std::io::Result<TcpStream> {
    knn_server::client::connect_stream_retry(backend.addr, CONNECT_ATTEMPTS, CONNECT_BACKOFF)
}

/// Reads response lines off one backend channel, matching them to pending
/// queries in FIFO order (the server answers a connection's queries in
/// request order, so the front of `pending` is always the line's owner).
///
/// Byte-total: the backend controls every byte here. A response line is
/// forwarded verbatim to the owning client — garbage from a backend can
/// garble *this* client's stream (it owns that backend choice's
/// consequences) but never another connection's, and never the router. A
/// line with no pending owner is dropped. EOF or a read error while queries
/// are pending is the failover path: drain and redispatch.
fn receiver_loop(disp: Arc<Dispatcher>, chan: Arc<Chan>, reader: TcpStream) {
    let mut reader = BufReader::new(reader);
    let mut buf: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                while buf.last() == Some(&b'\n') || buf.last() == Some(&b'\r') {
                    buf.pop();
                }
                let popped = chan.state.lock().unwrap().pending.pop_front();
                if let Some(q) = popped {
                    // A backend answering "no dataset named ..." for a tenant
                    // the router *placed on it* has lost the tenant (e.g. a
                    // restart emptied its registry). That answer would never
                    // come from the single-server oracle, so treat it as a
                    // failed attempt: retry on another replica while the
                    // probe loop's reconciler re-loads this one. The
                    // attempts cap still bounds the loop.
                    if is_not_loaded_error(&buf, &q) {
                        disp.telemetry.add("knn_router_failovers_total", 1);
                        emit_query_span(&disp, &q, "failover", chan.backend.id, "failover");
                        disp.dispatch(q);
                    } else {
                        emit_query_span(&disp, &q, "dispatch", chan.backend.id, "");
                        disp.finish(q.seq, buf.clone());
                        // After the client has its bytes: offer the answer
                        // to the fill hub, which pushes it (best-effort,
                        // deduplicated, epoch-checked) to the tenant's other
                        // replicas so a future repeat is warm anywhere.
                        if let (Some(key), Some(hub)) = (q.affinity, disp.fill.as_ref()) {
                            hub.offer(&q, key, chan.backend.id, &buf);
                        }
                    }
                }
            }
        }
    }
    // Channel is down. If that is news (not a graceful close), this thread
    // owns the drain: mark the backend down and redispatch everything the
    // channel still held.
    let drained = {
        let mut st = chan.state.lock().unwrap();
        if st.dead {
            Vec::new()
        } else {
            st.dead = true;
            if let Some(s) = st.stream.take() {
                let _ = s.shutdown(Shutdown::Both);
            }
            chan.backend.mark_down();
            st.pending.drain(..).collect()
        }
    };
    disp.telemetry.add("knn_router_failovers_total", drained.len() as u64);
    for q in drained {
        emit_query_span(&disp, &q, "failover", chan.backend.id, "failover");
        disp.dispatch(q);
    }
}

/// Is `line` exactly the backend's "no dataset named \`tenant\`" error for
/// this query? Byte-exact comparison against the server's known error
/// shape, with a cheap suffix pre-filter so the hot path pays one
/// `ends_with` per response.
fn is_not_loaded_error(line: &[u8], q: &PendingQuery) -> bool {
    if !line.ends_with(b"(try the load verb)\"}") {
        return false;
    }
    let expected =
        proto::error_line(&q.id, &format!("no dataset named `{}` (try the load verb)", q.tenant));
    line == expected.as_bytes()
}

/// The response writer: receives `(seq, bytes)` in completion order, emits
/// in request order, flushing each line as soon as its turn comes — the same
/// streamed, order-preserving merge the single server does.
pub(crate) fn writer_loop(stream: TcpStream, rx: Receiver<(u64, Vec<u8>)>) {
    let mut out = BufWriter::new(stream);
    let mut next = 0u64;
    let mut pending: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for (seq, line) in rx {
        pending.insert(seq, line);
        let mut wrote = false;
        while let Some(line) = pending.remove(&next) {
            if out.write_all(&line).and_then(|()| out.write_all(b"\n")).is_err() {
                return; // client gone; drop the rest
            }
            wrote = true;
            next += 1;
        }
        // One flush per drained burst, not per line: out-of-order arrival
        // (multi-replica scatter) releases several consecutive seqs at
        // once, and the client must not wait on a buffered tail.
        if wrote && out.flush().is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The order every connection derives for a key is a deterministic
        /// permutation of the replica set — no replica dropped, none
        /// invented, same answer every time it is computed.
        #[test]
        fn affinity_order_is_a_deterministic_permutation(
            key in any::<u64>(),
            n in 1usize..12,
        ) {
            let replicas: Vec<usize> = (0..n).collect();
            let order = affinity_order(key, &replicas);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, replicas.clone());
            prop_assert_eq!(affinity_order(key, &replicas), order);
        }

        /// The rendezvous property: removing one replica from the set
        /// removes exactly that entry from the order — every other key→
        /// replica preference survives a backend death, so caches built
        /// under the old membership stay where repeats will look for them.
        #[test]
        fn dropping_a_replica_preserves_the_survivors_order(
            key in any::<u64>(),
            n in 2usize..12,
            victim in 0usize..12,
        ) {
            let replicas: Vec<usize> = (0..n).collect();
            let victim = replicas[victim % n];
            let full = affinity_order(key, &replicas);
            let survivors: Vec<usize> =
                replicas.iter().copied().filter(|&r| r != victim).collect();
            let expected: Vec<usize> = full.into_iter().filter(|&r| r != victim).collect();
            prop_assert_eq!(affinity_order(key, &survivors), expected);
        }
    }

    /// Keys spread over replicas: a degenerate score would pile every key
    /// on one replica and re-create the warm-path pile-up this routing
    /// exists to fix.
    #[test]
    fn affinity_order_spreads_keys_over_replicas() {
        let replicas: Vec<usize> = (0..4).collect();
        let mut preferred = [0usize; 4];
        for key in 0..256u64 {
            preferred[affinity_order(key, &replicas)[0]] += 1;
        }
        for (id, &count) in preferred.iter().enumerate() {
            assert!(
                (16..=112).contains(&count),
                "replica {id} preferred by {count}/256 keys: {preferred:?}"
            );
        }
    }
}
