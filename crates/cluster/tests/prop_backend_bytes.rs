//! Robustness property, backend side: the router's framing must be total
//! over *backend* bytes, not just client bytes. A backend replying with
//! arbitrary garbage — invalid UTF-8, binary, embedded newlines, blank
//! lines — must never kill the router, never wedge the client connection it
//! belongs to, and never corrupt **another** connection's stream (channel
//! isolation is structural: each client connection has its own backend
//! channels).

use knn_cluster::{LoadSource, Router, RouterConfig};
use knn_server::{Client, Server, ServerConfig};
use proptest::prelude::*;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};

const BOOL: &str = "+ 1 1 1\n+ 1 1 0\n- 0 0 0\n- 0 0 1\n";

/// A protocol-shaped impostor: answers control verbs (`load`, `stats`) with
/// a well-formed ok line so placement and probes accept it, then replies to
/// each query line with the next scripted garbage chunk (newline appended —
/// embedded newlines deliberately split into extra frames).
fn fake_backend(script: Arc<Mutex<VecDeque<Vec<u8>>>>) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let script = script.clone();
            std::thread::spawn(move || {
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut out = stream;
                let mut line = Vec::new();
                loop {
                    line.clear();
                    match reader.read_until(b'\n', &mut line) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => {}
                    }
                    let is_control = line.windows(6).any(|w| w == b"\"verb\"");
                    let reply: Vec<u8> = if is_control {
                        b"{\"id\":\"x\",\"ok\":true}\n".to_vec()
                    } else {
                        match script.lock().unwrap().pop_front() {
                            Some(mut chunk) => {
                                chunk.push(b'\n');
                                chunk
                            }
                            None => b"{\"ok\":true}\n".to_vec(),
                        }
                    };
                    if out.write_all(&reply).is_err() {
                        break;
                    }
                }
            });
        }
    });
    addr
}

fn garbage_chunk() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..=255, 1..48)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn backend_garbage_never_kills_the_router_or_leaks_across_connections(
        chunks in prop::collection::vec(garbage_chunk(), 1..8)
    ) {
        let n_queries = chunks.len();
        let script = Arc::new(Mutex::new(chunks.into_iter().collect::<VecDeque<_>>()));
        let fake_addr = fake_backend(script);
        let real = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap().spawn();

        let router = Router::bind("127.0.0.1:0", RouterConfig::default()).unwrap();
        router.attach(fake_addr); // id 0
        router.attach(real.addr()); // id 1
        router.load_pinned("garb", LoadSource::Text(BOOL), vec![0]).unwrap();
        router.load_pinned("good", LoadSource::Text(BOOL), vec![1]).unwrap();
        let handle = router.spawn();
        let addr = handle.addr();

        // Connection A: queries against the impostor-backed tenant,
        // pipelined. Raw socket on the read side — the merged "responses"
        // are arbitrary bytes, including invalid UTF-8.
        let garb = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut w = stream;
            for i in 0..n_queries {
                writeln!(
                    w,
                    "{{\"dataset\":\"garb\",\"id\":\"g{i}\",\"cmd\":\"classify\",\"metric\":\"hamming\",\"point\":[1,1,1]}}"
                )
                .unwrap();
            }
            let mut frames = 0usize;
            let mut buf = Vec::new();
            while frames < n_queries {
                buf.clear();
                let n = reader.read_until(b'\n', &mut buf).unwrap();
                assert!(n > 0, "router closed after {frames} of {n_queries} frames");
                frames += 1;
            }
            frames
        });

        // Connection B, concurrently: the healthy tenant must be answered
        // with exactly the right bytes — garbage on A's channels cannot
        // bleed into B's stream.
        let mut good = Client::connect(addr).unwrap();
        for i in 0..4 {
            let resp = good
                .roundtrip(&format!(
                    r#"{{"dataset":"good","id":"ok{i}","cmd":"classify","metric":"hamming","point":[1,1,1]}}"#
                ))
                .unwrap();
            prop_assert_eq!(
                resp,
                format!(r#"{{"id":"ok{i}","ok":true,"route":"hamming-index","label":"+"}}"#)
            );
        }

        prop_assert_eq!(garb.join().unwrap(), n_queries, "one frame per query, however garbled");

        // The router itself never died.
        let mut probe = Client::connect(addr).unwrap();
        let pong = probe.roundtrip(r#"{"id":"p","verb":"ping"}"#).unwrap();
        prop_assert!(pong.contains(r#""pong":true"#), "{}", pong);

        handle.shutdown();
        real.shutdown();
    }
}
