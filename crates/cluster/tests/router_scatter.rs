//! The router's acceptance property: a shuffled pipelined batch scattered
//! over **two replicas of one tenant** merges back byte-identical to a
//! fresh single-threaded engine answering the same lines in the same order.
//! Which replica served which query, round-robin phase, channel interleaving
//! — none of it may show in the bytes.

use knn_cluster::{LoadSource, Router, RouterConfig};
use knn_engine::{textfmt, EngineConfig, ExplanationEngine, Request};
use knn_server::{Client, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BOOL: &str = "+ 1 1 1 0 0\n+ 1 1 0 0 0\n+ 1 0 1 0 0\n- 0 0 0 1 1\n- 0 0 1 1 1\n- 0 1 0 1 1\n";
const CONT: &str = "+ 2.0 2.0\n+ 3.0 1.5\n+ 1.0 2.5\n- -1.0 -1.0\n- 0.0 -2.0\n- -2.0 0.5\n";

/// Mixed request lines for one tenant; roughly one in four carries no `id`,
/// so the router's line-number injection is exercised alongside explicit
/// ids.
fn base_requests(tenant: &str) -> Vec<String> {
    let mut reqs = Vec::new();
    if tenant == "bool" {
        let points = ["[1,1,0,1,0]", "[0,0,0,0,0]", "[1,0,1,0,1]", "[0,1,1,0,1]"];
        for (pi, point) in points.iter().enumerate() {
            for k in [1, 3] {
                for (ci, cmd) in ["classify", "minimal-sr", "counterfactual"].iter().enumerate() {
                    if (pi + ci) % 4 == 0 {
                        reqs.push(format!(
                            r#"{{"dataset":"bool","cmd":"{cmd}","metric":"hamming","k":{k},"point":{point}}}"#
                        ));
                    } else {
                        reqs.push(format!(
                            r#"{{"dataset":"bool","id":"b{pi}-{k}-{cmd}","cmd":"{cmd}","metric":"hamming","k":{k},"point":{point}}}"#
                        ));
                    }
                }
            }
        }
    } else {
        let points = ["[1.5,1.0]", "[-0.5,0.25]", "[0.0,0.0]", "[2.5,-1.0]"];
        for (pi, point) in points.iter().enumerate() {
            for k in [1, 3] {
                for cmd in ["classify", "minimal-sr", "counterfactual"] {
                    reqs.push(format!(
                        r#"{{"dataset":"cont","id":"c{pi}-{k}-{cmd}","cmd":"{cmd}","metric":"l2","k":{k},"point":{point}}}"#
                    ));
                }
            }
            // A refused Table-1 cell: error responses must be deterministic
            // through the router too.
            reqs.push(format!(
                r#"{{"dataset":"cont","cmd":"minimal-sr","metric":"l1","k":3,"point":{point}}}"#
            ));
        }
    }
    reqs
}

fn shuffled(base: &[String], seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<String> = base.to_vec();
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        v.swap(i, j);
    }
    v
}

/// The oracle: a fresh single-threaded engine, requests in the client's
/// order, default ids from the 1-based line number — exactly the single
/// server's semantics.
fn sequential_oracle(dataset_text: &str, lines: &[String]) -> Vec<String> {
    let engine = ExplanationEngine::new(
        textfmt::parse_dataset(dataset_text).unwrap(),
        EngineConfig::default(),
    );
    lines
        .iter()
        .enumerate()
        .map(|(i, line)| {
            let req = Request::from_json_line(line, &(i + 1).to_string()).unwrap();
            engine.run(&req).to_json_line()
        })
        .collect()
}

#[test]
fn shuffled_batches_over_two_replicas_match_the_sequential_oracle() {
    // Two backends with deliberately different worker budgets: scheduling
    // differences must not reach the bytes.
    let b0 = Server::bind(
        "127.0.0.1:0",
        ServerConfig { worker_budget: 1, conn_inflight: 2, engine: EngineConfig::default() },
    )
    .unwrap()
    .spawn();
    let b1 = Server::bind(
        "127.0.0.1:0",
        ServerConfig { worker_budget: 4, conn_inflight: 4, engine: EngineConfig::default() },
    )
    .unwrap()
    .spawn();

    let router = Router::bind("127.0.0.1:0", RouterConfig::default()).unwrap();
    router.attach(b0.addr());
    router.attach(b1.addr());
    // Both tenants on both backends: every query has two candidate replicas.
    router.load("bool", LoadSource::Text(BOOL), None).unwrap();
    router.load("cont", LoadSource::Text(CONT), None).unwrap();
    let handle = router.spawn();
    let addr = handle.addr();

    let bool_base = base_requests("bool");
    let cont_base = base_requests("cont");

    let mut threads = Vec::new();
    for client_id in 0..6u64 {
        let (text, base) =
            if client_id % 2 == 0 { (BOOL, bool_base.clone()) } else { (CONT, cont_base.clone()) };
        threads.push(std::thread::spawn(move || {
            let lines = shuffled(&base, 0xD15C0 ^ client_id);
            let expected = sequential_oracle(text, &lines);
            let mut client = Client::connect(addr).unwrap();
            let got = client.run_stream(&lines.join("\n")).unwrap();
            (client_id, expected, got)
        }));
    }
    for t in threads {
        let (client_id, expected, got) = t.join().unwrap();
        assert_eq!(expected.len(), got.len(), "client {client_id}: response count mismatch");
        for (slot, (want, have)) in expected.iter().zip(&got).enumerate() {
            assert_eq!(
                want, have,
                "client {client_id}, slot {slot}: router bytes diverge from the oracle"
            );
        }
    }

    handle.shutdown();
    b0.shutdown();
    b1.shutdown();
}

#[test]
fn router_responses_match_a_real_single_server_line_for_line() {
    // Stronger than the engine oracle: stand up an actual single `Server`
    // and diff the router's whole response stream against it, malformed
    // lines and line-number defaults included.
    let lines = concat!(
        "{\"dataset\":\"bool\",\"cmd\":\"classify\",\"metric\":\"hamming\",\"point\":[1,1,0,1,0]}\n",
        "not json at all\n",
        "\n",
        "{\"dataset\":\"bool\",\"id\":7,\"cmd\":\"minimal-sr\",\"metric\":\"hamming\",\"point\":[0,0,1,1,1]}\n",
        "{\"dataset\":\"missing\",\"cmd\":\"classify\",\"point\":[1]}\n",
        "{\"dataset\":\"bool\",\"cmd\":\"counterfactual\",\"metric\":\"hamming\",\"k\":3,\"point\":[1,0,1,0,1]}\n",
        "{\"cmd\":\"classify\",\"point\":[1]}\n",
    );

    let single = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    single.registry().load("bool", BOOL).unwrap();
    let single = single.spawn();
    let mut c = Client::connect(single.addr()).unwrap();
    let want = c.run_stream(lines).unwrap();
    single.shutdown();

    let b0 = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap().spawn();
    let b1 = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap().spawn();
    let router = Router::bind("127.0.0.1:0", RouterConfig::default()).unwrap();
    router.attach(b0.addr());
    router.attach(b1.addr());
    router.load("bool", LoadSource::Text(BOOL), None).unwrap();
    let handle = router.spawn();
    let mut c = Client::connect(handle.addr()).unwrap();
    let got = c.run_stream(lines).unwrap();

    assert_eq!(want, got, "router stream must be byte-identical to a single server");

    handle.shutdown();
    b0.shutdown();
    b1.shutdown();
}
