//! Repro bundles are **canonical**, pinned as a property: for any bundle —
//! arbitrary tenant names, engine configs, seed texts, replay logs, and
//! captured entries whose request/response strings mix quotes, escapes,
//! control characters and non-ASCII — `to_json` → `from_json` → `to_json`
//! is byte-identical, and the parsed bundle equals the original. This is
//! what makes a bundle a stable forensic artifact: exporting, shipping
//! through the JSON envelope of the `repro` verb, and re-saving it can
//! never silently alter the bytes it will be replayed against.

use knn_engine::bundle::{BundleEntry, ReproBundle};
use knn_engine::{EngineConfig, Mutation};
use knn_space::Label;
use proptest::prelude::*;

/// Strings that stress the JSON escaper: embedded quotes, backslashes,
/// newlines, tabs, non-ASCII, and JSON-looking fragments.
fn text_strategy() -> impl Strategy<Value = String> {
    let fragment = prop::sample::select(vec![
        r#"{"id":"q","cmd":"classify","point":[1,0.5]}"#,
        "plain",
        "\"",
        "\\",
        "line\nbreak",
        "tab\there",
        "π≠∅",
        "+ 1 0\n- 0 1\n",
        "",
    ]);
    prop::collection::vec(fragment, 0..=4).prop_map(|parts| parts.concat())
}

fn config_strategy() -> impl Strategy<Value = EngineConfig> {
    (0..4usize, 0..5000usize, prop::option::of(0..100u64), any::<bool>()).prop_map(
        |(workers, cache_capacity, effort_budget, eager_l2_regions)| EngineConfig {
            workers,
            cache_capacity,
            effort_budget,
            eager_l2_regions,
        },
    )
}

fn mutation_strategy() -> impl Strategy<Value = Mutation> {
    // Coordinates cover the number writer's branches: integral (printed as
    // integers, including -0.0 -> 0), fractional shortest-roundtrip, and
    // values only a shortest-roundtrip printer survives (0.1 + 0.2).
    let coord =
        prop::sample::select(vec![0.0, -0.0, 1.0, -3.0, 0.5, 0.30000000000000004, 1e-7, 9.0e14]);
    (any::<bool>(), prop::collection::vec(coord, 1..=4), any::<bool>(), 0..64usize).prop_map(
        |(is_insert, point, positive, id)| {
            if is_insert {
                let label = if positive { Label::Positive } else { Label::Negative };
                Mutation::Insert { point, label }
            } else {
                Mutation::Remove { id }
            }
        },
    )
}

fn entry_strategy() -> impl Strategy<Value = BundleEntry> {
    (
        (0..1_000_000u64, 0..1_000_000u64, prop::option::of(0..64u64), 0..1_000u64),
        prop::option::of(text_strategy()),
        text_strategy(),
        text_strategy(),
    )
        .prop_map(|((conn, seq, backend, epoch), trace, request, response)| BundleEntry {
            conn,
            seq,
            backend,
            epoch,
            trace,
            request,
            response,
        })
}

fn bundle_strategy() -> impl Strategy<Value = ReproBundle> {
    (
        prop::sample::select(vec!["toy", "hot", "t-0", "π"]),
        config_strategy(),
        text_strategy(),
        prop::collection::vec(mutation_strategy(), 0..=6),
        prop::collection::vec(entry_strategy(), 0..=6),
    )
        .prop_map(|(tenant, config, seed, replay, entries)| ReproBundle {
            tenant: tenant.to_string(),
            config,
            seed,
            replay,
            entries,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    fn serialize_parse_serialize_is_byte_identical(bundle in bundle_strategy()) {
        let first = bundle.to_json();
        let parsed = ReproBundle::from_json(&first)
            .map_err(|e| TestCaseError::Fail(format!("own output rejected: {e}")))?;
        prop_assert_eq!(&parsed, &bundle, "parse loses information");
        let second = parsed.to_json();
        prop_assert_eq!(&first, &second, "re-serialization changed bytes");
    }
}
