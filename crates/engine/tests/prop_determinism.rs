//! The engine's central guarantee, pinned as a property test: for a fixed
//! dataset and config, `run_batch` output is **byte-identical** per request
//! across worker counts (1/2/8), request permutations, cache states, and
//! repeated runs — equal to the fresh sequential oracle. The concurrent
//! engines run with **telemetry enabled** — plus an aggressive SLO
//! objective, and resource/work accounting scraped mid-stream — while the
//! oracle runs with everything disabled, pinning the observability plane's
//! out-of-band contract: tracing, phase timing, the slow-query ring,
//! byte/work gauges, and burn-rate evaluation never change a byte.

use knn_engine::{EngineConfig, EngineData, ExplanationEngine, Request};
use knn_space::ContinuousDataset;
use knn_telemetry::{SloObjective, SpanCtx, Telemetry};
use proptest::prelude::*;
use std::collections::HashMap;

/// A small 0/1 dataset (both views exist, so every metric is servable).
fn dataset(pos_bits: &[u8], neg_bits: &[u8], dim: usize) -> ContinuousDataset<f64> {
    let decode = |bits: &[u8]| -> Vec<Vec<f64>> {
        bits.iter().map(|&b| (0..dim).map(|j| f64::from((b >> j) & 1)).collect()).collect()
    };
    ContinuousDataset::from_sets(decode(pos_bits), decode(neg_bits))
}

#[derive(Clone, Debug)]
struct BatchSpec {
    dim: usize,
    pos: Vec<u8>,
    neg: Vec<u8>,
    requests: Vec<String>,
    /// Permutation seeds: how the shuffled copies reorder the batch.
    shuffle: Vec<usize>,
}

fn batch_strategy() -> impl Strategy<Value = BatchSpec> {
    (2..=4usize).prop_flat_map(|dim| {
        let point_bits = 0..(1u8 << dim);
        (
            prop::collection::vec(point_bits.clone(), 2..=4),
            prop::collection::vec(point_bits.clone(), 2..=4),
            prop::collection::vec(
                (
                    prop::sample::select(vec![
                        "classify",
                        "minimal-sr",
                        "minimum-sr",
                        "check-sr",
                        "counterfactual",
                    ]),
                    prop::sample::select(vec!["l2", "l1", "hamming", "lp:3"]),
                    prop::sample::select(vec![1u32, 3]),
                    point_bits,
                    any::<bool>(),
                ),
                1..=10,
            ),
            prop::collection::vec(0..1000usize, 8),
        )
            .prop_map(move |(pos, neg, reqs, shuffle)| {
                let requests = reqs
                    .iter()
                    .enumerate()
                    .map(|(i, (cmd, metric, k, bits, dup))| {
                        // Duplicate some payloads (ignoring `dup` ids) so the
                        // cache sees same-batch hits.
                        let bits = if *dup { bits & 1 } else { *bits };
                        let point: Vec<String> = (0..dim)
                            .map(|j| f64::from((bits >> j) & 1).to_string())
                            .collect();
                        let features = if *cmd == "check-sr" {
                            format!(",\"features\":[{}]", (bits as usize) % dim)
                        } else {
                            String::new()
                        };
                        format!(
                            r#"{{"id":"q{i}","cmd":"{cmd}","metric":"{metric}","k":{k},"point":[{}]{features}}}"#,
                            point.join(",")
                        )
                    })
                    .collect();
                BatchSpec { dim, pos, neg, requests, shuffle }
            })
    })
}

fn parse_batch(lines: &[String]) -> Vec<Request> {
    lines
        .iter()
        .enumerate()
        .map(|(i, l)| Request::from_json_line(l, &i.to_string()).unwrap())
        .collect()
}

/// `id → serialized response` for comparison across permutations.
fn by_id(responses: &[knn_engine::Response]) -> HashMap<String, String> {
    responses.iter().map(|r| (r.id.clone(), r.to_json_line())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    fn run_batch_is_worker_count_and_order_invariant(spec in batch_strategy()) {
        let requests = parse_batch(&spec.requests);

        // The oracle: a fresh single-worker engine, cold cache, telemetry
        // disabled (the construction default).
        let oracle_engine = ExplanationEngine::new(
            EngineData::from_continuous(dataset(&spec.pos, &spec.neg, spec.dim)),
            EngineConfig { workers: 1, ..EngineConfig::default() },
        );
        let oracle = by_id(&oracle_engine.run_batch(&requests));

        for workers in [1usize, 2, 8] {
            // Telemetry ON for every concurrent engine: recording must be
            // invisible in the response bytes.
            let telemetry = Telemetry::new();
            telemetry.set_enabled(true);
            let engine = ExplanationEngine::with_telemetry(
                EngineData::from_continuous(dataset(&spec.pos, &spec.neg, spec.dim)),
                EngineConfig { workers, ..EngineConfig::default() },
                telemetry,
                "prop",
            );
            // An SLO objective that every query violates (threshold 0µs):
            // burn-rate evaluation and forced violation spans are accounting
            // work and must stay out-of-band.
            engine
                .telemetry()
                .slo()
                .set("prop", SloObjective { quantile: 0.5, threshold_us: 0, windows: 2 })
                .unwrap();

            // Straight order, twice: the second pass runs against a warm
            // cache and must not change a byte. Resource/work accounting is
            // scraped between and during passes, like a live `top` poller.
            for pass in 0..2 {
                let got = engine.run_batch(&requests);
                let stats = engine.stats();
                prop_assert!(stats.resources.dataset_bytes > 0);
                prop_assert!(!engine.work_stats().is_empty());
                engine.telemetry().observe_slo("prop");
                prop_assert_eq!(got.len(), requests.len());
                for (req, resp) in requests.iter().zip(&got) {
                    prop_assert_eq!(&resp.id, &req.id);
                    prop_assert_eq!(
                        &resp.to_json_line(),
                        &oracle[&req.id],
                        "workers={} pass={} id={}", workers, pass, req.id
                    );
                }
            }

            // A shuffled copy of the batch: same responses, permuted.
            let mut shuffled = requests.clone();
            for (i, s) in spec.shuffle.iter().enumerate() {
                let j = i % shuffled.len();
                let l = s % shuffled.len();
                shuffled.swap(j, l);
            }
            let got = engine.run_batch(&shuffled);
            for (req, resp) in shuffled.iter().zip(&got) {
                prop_assert_eq!(&resp.id, &req.id, "shuffled batch stays aligned");
                prop_assert_eq!(
                    &resp.to_json_line(),
                    &oracle[&req.id],
                    "shuffled, workers={} id={}", workers, req.id
                );
            }

            // A traced pass: every query runs with a forced span context —
            // the flight recorder captures a full span family per request
            // (forced path, not the sampler) and must not change a byte.
            let recorder = engine.telemetry().recorder();
            for req in &requests {
                let ctx =
                    SpanCtx { trace: format!("t-{}", req.id), parent: recorder.next_seq() };
                let (resp, _) = engine.run_traced(req, Some(&ctx));
                prop_assert_eq!(
                    &resp.to_json_line(),
                    &oracle[&req.id],
                    "traced, workers={} id={}", workers, req.id
                );
                prop_assert!(
                    !recorder.spans_for(&ctx.trace).is_empty(),
                    "forced trace {} captured no spans", ctx.trace
                );
            }
        }
    }
}

/// The same invariant for the JSON-lines entry point, including malformed
/// lines (which must produce error lines in place, deterministically).
#[test]
fn jsonl_batches_are_deterministic_across_workers() {
    let ds = dataset(&[0b011, 0b110], &[0b000, 0b101], 3);
    let input = concat!(
        "{\"id\":\"a\",\"cmd\":\"classify\",\"metric\":\"hamming\",\"point\":[1,1,0]}\n",
        "garbage line\n",
        "{\"id\":\"b\",\"cmd\":\"counterfactual\",\"metric\":\"l2\",\"point\":[0.2,0.8,0.5]}\n",
        "{\"id\":\"c\",\"cmd\":\"minimum-sr\",\"metric\":\"hamming\",\"k\":3,\"point\":[1,0,1]}\n",
        "{\"id\":\"b2\",\"cmd\":\"counterfactual\",\"metric\":\"l2\",\"point\":[0.2,0.8,0.5]}\n",
    );
    let mut outputs = Vec::new();
    for workers in [1usize, 2, 8] {
        let engine = ExplanationEngine::new(
            EngineData::from_continuous(ds.clone()),
            EngineConfig { workers, ..EngineConfig::default() },
        );
        let (out, stats) = engine.run_jsonl(input);
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.errors, 1);
        outputs.push(out);
    }
    assert_eq!(outputs[0], outputs[1], "1 vs 2 workers");
    assert_eq!(outputs[0], outputs[2], "1 vs 8 workers");
    // b and b2 carry identical payloads: identical bodies modulo the id.
    let lines: Vec<&str> = outputs[0].lines().collect();
    assert_eq!(
        lines[2].replace("\"id\":\"b\"", ""),
        lines[4].replace("\"id\":\"b2\"", ""),
        "duplicate payloads produce identical bodies (cache-hit transparency)"
    );
}
