//! The mutation layer's governing contract, pinned as a property test:
//! after **any** interleaving of inserts, removals, and query batches, every
//! batch's responses — at 1, 2, and 8 workers — are byte-identical to a
//! **fresh engine loaded with the dataset as it stood at that batch's
//! epoch** (the fresh-load sequential oracle). This covers at once:
//!
//! * point-order preservation under mutation (the oracle parses the mutated
//!   engine's own serialized text);
//! * selective artifact invalidation (a wrongly retained index would answer
//!   stale bytes);
//! * epoch-keyed caching and single-flight (same keys recur across epochs);
//! * guard revalidation soundness (revalidated classify hits must equal
//!   what the oracle computes from scratch — an unsound guard is exactly a
//!   byte difference here).

use knn_engine::{textfmt, EngineConfig, EngineData, ExplanationEngine, Mutation, Request};
use knn_space::{ContinuousDataset, Label};
use proptest::prelude::*;

/// A small 0/1 dataset (both views exist, so every metric is servable).
/// Mutations insert 0/1 points, so the boolean view survives every epoch.
fn dataset(pos_bits: &[u8], neg_bits: &[u8], dim: usize) -> ContinuousDataset<f64> {
    let decode = |bits: &[u8]| -> Vec<Vec<f64>> {
        bits.iter().map(|&b| (0..dim).map(|j| f64::from((b >> j) & 1)).collect()).collect()
    };
    ContinuousDataset::from_sets(decode(pos_bits), decode(neg_bits))
}

#[derive(Clone, Debug)]
enum OpSpec {
    Insert { bits: u8, positive: bool },
    Remove { seed: usize },
    Batch { requests: Vec<String> },
}

#[derive(Clone, Debug)]
struct StreamSpec {
    dim: usize,
    pos: Vec<u8>,
    neg: Vec<u8>,
    ops: Vec<OpSpec>,
}

fn op_strategy(dim: usize) -> impl Strategy<Value = OpSpec> {
    let point_bits = 0..(1u8 << dim);
    let request = (
        prop::sample::select(vec!["classify", "minimal-sr", "check-sr", "counterfactual"]),
        prop::sample::select(vec!["l2", "l1", "hamming"]),
        prop::sample::select(vec![1u32, 3]),
        point_bits.clone(),
    )
        .prop_map(move |(cmd, metric, k, bits)| {
            let point: Vec<String> =
                (0..dim).map(|j| f64::from((bits >> j) & 1).to_string()).collect();
            let features = if cmd == "check-sr" {
                format!(",\"features\":[{}]", (bits as usize) % dim)
            } else {
                String::new()
            };
            format!(
                r#"{{"cmd":"{cmd}","metric":"{metric}","k":{k},"point":[{}]{features}}}"#,
                point.join(",")
            )
        });
    // No `prop_oneof` in the offline proptest stand-in: draw every variant's
    // raw material plus a weighted selector and map down.
    (0..6u8, point_bits, any::<bool>(), 0..1000usize, prop::collection::vec(request, 1..=6))
        .prop_map(|(kind, bits, positive, seed, requests)| match kind {
            0 | 1 => OpSpec::Insert { bits, positive },
            2 => OpSpec::Remove { seed },
            _ => OpSpec::Batch { requests },
        })
}

fn stream_strategy() -> impl Strategy<Value = StreamSpec> {
    (2..=3usize).prop_flat_map(|dim| {
        let point_bits = 0..(1u8 << dim);
        (
            prop::collection::vec(point_bits.clone(), 2..=3),
            prop::collection::vec(point_bits, 2..=3),
            prop::collection::vec(op_strategy(dim), 2..=7),
        )
            .prop_map(move |(pos, neg, ops)| StreamSpec { dim, pos, neg, ops })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    fn mutated_batches_equal_the_fresh_load_oracle(spec in stream_strategy()) {
        for workers in [1usize, 2, 8] {
            let engine = ExplanationEngine::new(
                EngineData::from_continuous(dataset(&spec.pos, &spec.neg, spec.dim)),
                EngineConfig { workers, ..EngineConfig::default() },
            );
            for (step, op) in spec.ops.iter().enumerate() {
                match op {
                    OpSpec::Insert { bits, positive } => {
                        let point: Vec<f64> =
                            (0..spec.dim).map(|j| f64::from((bits >> j) & 1)).collect();
                        let label = if *positive { Label::Positive } else { Label::Negative };
                        engine.apply(Mutation::Insert { point, label }).unwrap();
                    }
                    OpSpec::Remove { seed } => {
                        let len = engine.data().continuous.len();
                        // The last point may not be removed (the engine
                        // rejects emptying the dataset); skipping keeps the
                        // op stream identical across worker counts.
                        if len > 1 {
                            engine.apply(Mutation::Remove { id: seed % len }).unwrap();
                        }
                    }
                    OpSpec::Batch { requests } => {
                        let reqs: Vec<Request> = requests
                            .iter()
                            .enumerate()
                            .map(|(i, l)| Request::from_json_line(l, &i.to_string()).unwrap())
                            .collect();
                        let got = engine.run_batch(&reqs);
                        // The oracle: a fresh, cold, sequential engine over
                        // the dataset as it stands at this epoch.
                        let oracle_engine = ExplanationEngine::new(
                            textfmt::parse_dataset(&engine.dataset_text()).unwrap(),
                            EngineConfig { workers: 1, ..EngineConfig::default() },
                        );
                        for (req, resp) in reqs.iter().zip(&got) {
                            prop_assert_eq!(
                                resp.to_json_line(),
                                oracle_engine.run(req).to_json_line(),
                                "workers={} step={} epoch={} req={}",
                                workers, step, engine.epoch(), req.to_json_line()
                            );
                        }
                    }
                }
            }
        }
    }
}

/// A directed regression: the same classify keys queried at every epoch of
/// an insert/remove ping-pong — the maximal stress on guard revalidation
/// (entries repeatedly cross epochs, sometimes surviving, sometimes not) —
/// stay oracle-identical throughout, and at least one hit actually crosses
/// an epoch (the optimization is exercised, not just vacuously sound).
#[test]
fn classify_keys_requeried_across_epoch_pingpong_stay_oracle_identical() {
    let ds = dataset(&[0b011, 0b110], &[0b000, 0b101], 3);
    let engine = ExplanationEngine::new(EngineData::from_continuous(ds), EngineConfig::default());
    let queries: Vec<Request> = (0..8u8)
        .map(|bits| {
            let point: Vec<String> = (0..3).map(|j| ((bits >> j) & 1).to_string()).collect();
            Request::from_json_line(
                &format!(
                    r#"{{"id":"q{bits}","cmd":"classify","metric":"l2","k":1,"point":[{}]}}"#,
                    point.join(",")
                ),
                "0",
            )
            .unwrap()
        })
        .collect();

    let mutations = [
        Mutation::Insert { point: vec![1.0, 1.0, 1.0], label: Label::Positive },
        Mutation::Remove { id: 4 },
        Mutation::Insert { point: vec![0.0, 0.0, 1.0], label: Label::Negative },
        Mutation::Insert { point: vec![1.0, 0.0, 0.0], label: Label::Positive },
        Mutation::Remove { id: 0 },
    ];
    engine.run_batch(&queries); // warm every key at epoch 0
    for m in mutations {
        engine.apply(m).unwrap();
        let oracle = ExplanationEngine::new(
            textfmt::parse_dataset(&engine.dataset_text()).unwrap(),
            EngineConfig::default(),
        );
        for q in &queries {
            assert_eq!(
                engine.run(q).to_json_line(),
                oracle.run(q).to_json_line(),
                "epoch {} id {}",
                engine.epoch(),
                q.id
            );
        }
    }
    let s = engine.stats();
    assert!(s.revalidated > 0, "no classify entry ever crossed an epoch: {s:?}");
}
