//! Totality of the wire parsers: `json::parse_bytes` and
//! `Request::from_json_bytes` must return `Ok`/`Err` — never panic — for
//! *any* byte input, including invalid UTF-8. Network peers control every
//! byte; a panicking parse would let one line kill a worker.

use knn_engine::json::parse_bytes;
use knn_engine::Request;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn parse_bytes_is_total(bytes in prop::collection::vec(0u8..=255, 0..120)) {
        // Returning at all is the property (a panic fails the test).
        let _ = parse_bytes(&bytes);
    }

    #[test]
    fn request_parse_is_total(bytes in prop::collection::vec(0u8..=255, 0..120)) {
        let _ = Request::from_json_bytes(&bytes, "p");
    }

    #[test]
    fn request_parse_is_total_on_near_valid_json(
        point in prop::collection::vec(-1.0e9..1.0e9f64, 0..4),
        k in any::<u32>(),
        cmd in prop::sample::select(vec!["classify", "minimum-sr", "fly", ""]),
        at_byte in 0..200usize,
    ) {
        // Valid-ish requests with one byte clobbered: exercises the deep
        // paths (numbers, arrays, escapes) rather than failing at byte 0.
        let line = format!(
            r#"{{"cmd":"{cmd}","k":{k},"point":{point:?},"features":[0,1]}}"#
        );
        let mut bytes = line.into_bytes();
        if !bytes.is_empty() {
            let i = at_byte % bytes.len();
            bytes[i] = bytes[i].wrapping_add(0x9b);
        }
        let _ = Request::from_json_bytes(&bytes, "p");
    }
}
