//! Executes one planned request against the shared dataset and artifacts.
//!
//! Everything here is deterministic: the SAT, MILP, LP, QP and greedy engines
//! below contain no randomness, and the only "budget" the executor honors is
//! the engine's *logical* effort budget (CDCL conflicts, greedy hitting
//! sets), so a response depends solely on `(dataset, config, request)` — not
//! on the worker that ran it, the batch it arrived in, or the cache state.

use crate::artifacts::{ArtifactStore, EngineData};
use crate::plan::{plan, Plan, Route};
use crate::request::{Outcome, QueryKind, Request, Response};
use knn_core::abductive::hamming::HammingAbductive;
use knn_core::abductive::l1::L1Abductive;
use knn_core::abductive::l2::L2Abductive;
use knn_core::abductive::minimum::HittingSetMode;
use knn_core::counterfactual::hamming as hamming_cf;
use knn_core::counterfactual::l1::L1Counterfactual;
use knn_core::counterfactual::l2::L2Counterfactual;
use knn_core::counterfactual::lp_general::LpGeneralCounterfactual;
use knn_core::SrCheck;
use knn_delta::{ClassifyGuard, GuardMetric};
use knn_space::{BitVec, Label, LpMetric, OddK};

/// Runs `req` to completion. `effort_budget` is the engine-level logical
/// budget (`None` = exact everywhere). The ℓ2 region routes run on the lazy,
/// pruned enumerator; [`execute_opts`] exposes the eager oracle mode.
pub fn execute(
    data: &EngineData,
    artifacts: &ArtifactStore,
    req: &Request,
    effort_budget: Option<u64>,
) -> Response {
    execute_opts(data, artifacts, req, effort_budget, false)
}

/// [`execute`] with an explicit region-path selector. `eager_l2_regions`
/// materializes the full Prop 1 decomposition up front ([`RegionCache`]-
/// backed `*_in` paths) instead of streaming it; the two paths are
/// byte-identical by construction (same ordering, same pruning), which is
/// exactly what the oracle tests pin down. Serving should always pass
/// `false`: eager is `O(n^k)` memory before the first answer.
pub fn execute_opts(
    data: &EngineData,
    artifacts: &ArtifactStore,
    req: &Request,
    effort_budget: Option<u64>,
    eager_l2_regions: bool,
) -> Response {
    execute_traced(data, artifacts, req, effort_budget, eager_l2_regions).0
}

/// [`execute_opts`], also returning the cache-survival guard for answers
/// that have one (successful `classify` responses carry the per-class
/// majority order statistics their label was decided by — see
/// [`knn_delta::guard`]). The engine's cache stores the guard next to the
/// response so a later epoch can revalidate instead of recomputing.
pub fn execute_traced(
    data: &EngineData,
    artifacts: &ArtifactStore,
    req: &Request,
    effort_budget: Option<u64>,
    eager_l2_regions: bool,
) -> (Response, Option<ClassifyGuard>) {
    let (resp, guard, _) =
        execute_phased(data, artifacts, req, effort_budget, eager_l2_regions, false);
    (resp, guard)
}

/// Where one execution's time went, as measured by [`execute_phased`].
/// Purely observational — the response is byte-identical whether or not
/// the clock ran.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Time inside the planner, µs.
    pub plan_us: u64,
    /// Time inside the routed algorithm (artifact builds it triggered
    /// included — the engine subtracts those out via the store's build
    /// accounting), µs.
    pub solve_us: u64,
    /// The planner's demotion verdict: did the effort budget demote this
    /// request's route to its greedy/anytime variant? A plan property,
    /// filled whether or not the clock ran.
    pub demoted: bool,
}

/// [`execute_traced`] with the phase clock: when `timed`, the returned
/// [`PhaseTimes`] carries the planner and solver wall times (zeros
/// otherwise — the untimed path never reads the clock, keeping disabled
/// telemetry free).
pub fn execute_phased(
    data: &EngineData,
    artifacts: &ArtifactStore,
    req: &Request,
    effort_budget: Option<u64>,
    eager_l2_regions: bool,
    timed: bool,
) -> (Response, Option<ClassifyGuard>, PhaseTimes) {
    let mut phases = PhaseTimes::default();
    let plan_started = timed.then(std::time::Instant::now);
    let planned = match plan(req, effort_budget.is_some()) {
        Ok(p) => p,
        Err(e) => return (error_response(req, e), None, phases),
    };
    if let Some(t0) = plan_started {
        phases.plan_us = t0.elapsed().as_micros() as u64;
    }
    phases.demoted = planned.budgeted;
    let mut guard = None;
    let solve_started = timed.then(std::time::Instant::now);
    let outcome = execute_planned(
        data,
        artifacts,
        req,
        &planned,
        effort_budget,
        eager_l2_regions,
        &mut guard,
    );
    if let Some(t0) = solve_started {
        phases.solve_us = t0.elapsed().as_micros() as u64;
    }
    match outcome {
        Ok(outcome) => (
            Response { id: req.id.clone(), route: planned.tag.to_string(), result: Ok(outcome) },
            guard,
            phases,
        ),
        Err(e) => (error_response(req, e), None, phases),
    }
}

fn error_response(req: &Request, msg: String) -> Response {
    Response { id: req.id.clone(), route: "error".to_string(), result: Err(msg) }
}

fn execute_planned(
    data: &EngineData,
    artifacts: &ArtifactStore,
    req: &Request,
    planned: &Plan,
    effort_budget: Option<u64>,
    eager_l2_regions: bool,
    guard: &mut Option<ClassifyGuard>,
) -> Result<Outcome, String> {
    let dim = data.continuous.dim();
    if req.point.len() != dim {
        return Err(format!(
            "point dimension {} does not match dataset dimension {dim}",
            req.point.len()
        ));
    }
    if let Some(f) = &req.features {
        if let Some(&max) = f.iter().max() {
            if max >= dim {
                return Err(format!("feature index {max} out of range (dimension {dim})"));
            }
        }
    }
    if req.kind == QueryKind::CheckSr && req.features.is_none() {
        return Err("check-sr needs `features`".into());
    }
    let k = OddK::new(req.k).ok_or_else(|| format!("k must be odd, got {}", req.k))?;
    if data.continuous.len() < k.get() as usize {
        return Err(format!(
            "dataset has {} points, fewer than k = {}",
            data.continuous.len(),
            req.k
        ));
    }
    let x = &req.point;
    let fixed: &[usize] = req.features.as_deref().unwrap_or(&[]);

    // Boolean-view accessors for the Hamming routes.
    let need_bool = || -> Result<(&knn_space::BooleanDataset, BitVec), String> {
        let ds =
            data.boolean.as_ref().ok_or("the hamming metric needs a 0/1 dataset".to_string())?;
        if x.iter().any(|&v| v != 0.0 && v != 1.0) {
            return Err("the hamming metric needs a 0/1 query point".into());
        }
        Ok((ds, BitVec::from_bools(&x.iter().map(|&v| v == 1.0).collect::<Vec<_>>())))
    };

    match planned.route {
        Route::ClassifyHamming => {
            let (_, bx) = need_bool()?;
            let (label, pos, neg) = classify_hamming_indexed(data, artifacts, &bx, k);
            *guard = Some(ClassifyGuard {
                point: x.clone(),
                metric: GuardMetric::Hamming,
                k: req.k,
                pos: pos.map(|d| d as f64),
                neg: neg.map(|d| d as f64),
            });
            Ok(Outcome::Label(label))
        }
        Route::ClassifyContinuous => {
            let p = req.metric.lp_exponent().expect("hamming routed to ClassifyHamming");
            let (label, pos, neg) = classify_continuous_indexed(data, artifacts, x, p, k);
            *guard = Some(ClassifyGuard {
                point: x.clone(),
                metric: GuardMetric::LpPow(p),
                k: req.k,
                pos,
                neg,
            });
            Ok(Outcome::Label(label))
        }

        Route::L2Check => {
            let ab = L2Abductive::new(&data.continuous, k);
            let check = if eager_l2_regions {
                ab.check_in(x, fixed, &artifacts.l2_regions(data, k))
            } else {
                ab.check_lazy(x, fixed, &artifacts.l2_lazy_regions(data, k))
            };
            Ok(check_outcome(check))
        }
        Route::L2Minimal => {
            let ab = L2Abductive::new(&data.continuous, k);
            let features = if eager_l2_regions {
                ab.minimal_in(x, &artifacts.l2_regions(data, k))
            } else {
                ab.minimal_lazy(x, &artifacts.l2_lazy_regions(data, k))
            };
            Ok(Outcome::Reason { features, optimal: true })
        }
        Route::L2Minimum => {
            let ab = L2Abductive::new(&data.continuous, k);
            let mode = ihs_mode(planned);
            let features = if eager_l2_regions {
                ab.minimum_in(x, mode, &artifacts.l2_regions(data, k))
            } else {
                ab.minimum_lazy(x, mode, &artifacts.l2_lazy_regions(data, k))
            };
            Ok(Outcome::Reason { features, optimal: mode == HittingSetMode::Exact })
        }
        Route::L2Cf => {
            let cf = L2Counterfactual::new(&data.continuous, k);
            let (eager, lazy) = if eager_l2_regions {
                (Some(artifacts.l2_regions(data, k)), None)
            } else {
                (None, Some(artifacts.l2_lazy_regions(data, k)))
            };
            let infimum = |x: &[f64]| match &lazy {
                Some(regions) => cf.infimum_lazy(x, regions),
                None => cf.infimum_in(x, eager.as_ref().expect("eager path selected")),
            };
            let within = |x: &[f64], r: &f64| match &lazy {
                Some(regions) => cf.within_lazy(x, r, regions),
                None => cf.within_in(x, r, eager.as_ref().expect("eager path selected")),
            };
            match infimum(x) {
                None => Ok(Outcome::NoCounterfactual),
                Some(inf) => {
                    let dist = inf.dist_sq.sqrt();
                    // Step just past an unattained infimum (Thm 2's closure
                    // argument); factor and slack match the CLI's single-query
                    // path, and the additive slack must clear the f64 field's
                    // 1e-9 comparison tolerance for boundary queries.
                    let radius = inf.dist_sq * 1.0001 + 1e-6;
                    let point = within(x, &radius)
                        .ok_or("internal: witness missing just past the infimum")?;
                    Ok(Outcome::Counterfactual { point, dist, proven: true })
                }
            }
        }

        Route::L1Check => {
            let ab = L1Abductive::new(&data.continuous);
            Ok(check_outcome(ab.check(x, fixed)))
        }
        Route::L1Minimal => {
            let ab = L1Abductive::new(&data.continuous);
            Ok(Outcome::Reason { features: ab.minimal(x), optimal: true })
        }
        Route::L1Minimum => {
            let ab = L1Abductive::new(&data.continuous);
            let mode = ihs_mode(planned);
            Ok(Outcome::Reason {
                features: ab.minimum_with(x, mode),
                optimal: mode == HittingSetMode::Exact,
            })
        }
        Route::L1CfMilp => match L1Counterfactual::new(&data.continuous).closest(x) {
            None => Ok(Outcome::NoCounterfactual),
            Some((point, dist)) => Ok(Outcome::Counterfactual { point, dist, proven: true }),
        },

        Route::HammingCheckK1 | Route::HammingCheckSat => {
            let (ds, bx) = need_bool()?;
            let ab = HammingAbductive::new(ds, k);
            Ok(match ab.check(&bx, fixed) {
                SrCheck::Sufficient => Outcome::Check { sufficient: true, witness: None },
                SrCheck::NotSufficient { witness } => {
                    Outcome::Check { sufficient: false, witness: Some(bits_to_f64(&witness)) }
                }
            })
        }
        Route::HammingMinimal => {
            let (ds, bx) = need_bool()?;
            Ok(Outcome::Reason {
                features: HammingAbductive::new(ds, k).minimal(&bx),
                optimal: true,
            })
        }
        Route::HammingMinimum => {
            let (ds, bx) = need_bool()?;
            let mode = ihs_mode(planned);
            Ok(Outcome::Reason {
                features: HammingAbductive::new(ds, k).minimum_with(&bx, mode),
                optimal: mode == HittingSetMode::Exact,
            })
        }
        Route::HammingCf => {
            let (ds, bx) = need_bool()?;
            match effort_budget {
                None => match hamming_cf::closest_sat(ds, k, &bx) {
                    None => Ok(Outcome::NoCounterfactual),
                    Some((point, d)) => Ok(Outcome::Counterfactual {
                        point: bits_to_f64(&point),
                        dist: d as f64,
                        proven: true,
                    }),
                },
                Some(budget) => match hamming_cf::closest_sat_budgeted(ds, k, &bx, budget) {
                    None => Ok(Outcome::NoCounterfactual),
                    Some((point, d, proven)) => Ok(Outcome::Counterfactual {
                        point: bits_to_f64(&point),
                        dist: d as f64,
                        proven,
                    }),
                },
            }
        }

        Route::LpHeuristicCf => {
            let p = req.metric.lp_exponent().expect("heuristic CF routes only from ℓ1/ℓp");
            let engine = LpGeneralCounterfactual::new(&data.continuous, LpMetric::new(p), k);
            match engine.closest(x) {
                None => Ok(Outcome::NoCounterfactual),
                Some(w) => {
                    Ok(Outcome::Counterfactual { point: w.point, dist: w.dist, proven: false })
                }
            }
        }
    }
}

fn ihs_mode(planned: &Plan) -> HittingSetMode {
    if planned.budgeted {
        HittingSetMode::Greedy
    } else {
        HittingSetMode::Exact
    }
}

fn check_outcome(check: SrCheck<Vec<f64>>) -> Outcome {
    match check {
        SrCheck::Sufficient => Outcome::Check { sufficient: true, witness: None },
        SrCheck::NotSufficient { witness } => {
            Outcome::Check { sufficient: false, witness: Some(witness) }
        }
    }
}

fn bits_to_f64(bits: &BitVec) -> Vec<f64> {
    bits.iter().map(|b| if b { 1.0 } else { 0.0 }).collect()
}

/// The optimistic rule via per-class maj-NN probes: positive wins iff its
/// maj-th order statistic is ≤ the negative one (ties positive, §2). The
/// statistics are returned with the label — they are exactly the survival
/// certificate the cache's [`ClassifyGuard`] revalidates against.
fn classify_hamming_indexed(
    data: &EngineData,
    artifacts: &ArtifactStore,
    bx: &BitVec,
    k: OddK,
) -> (Label, Option<usize>, Option<usize>) {
    let maj = k.majority();
    let ds = data.boolean.as_ref().expect("checked by caller");
    let pos_stat = (ds.count_of(Label::Positive) >= maj)
        .then(|| artifacts.hamming_class_index(data, Label::Positive).knn(bx, maj)[maj - 1].1);
    let neg_stat = (ds.count_of(Label::Negative) >= maj)
        .then(|| artifacts.hamming_class_index(data, Label::Negative).knn(bx, maj)[maj - 1].1);
    (optimistic_from_stats(pos_stat, neg_stat), pos_stat, neg_stat)
}

/// Continuous analogue of [`classify_hamming_indexed`], comparing p-th-power
/// distance keys from the per-class KD-trees.
fn classify_continuous_indexed(
    data: &EngineData,
    artifacts: &ArtifactStore,
    x: &[f64],
    p: u32,
    k: OddK,
) -> (Label, Option<f64>, Option<f64>) {
    let maj = k.majority();
    let pos_stat = (data.continuous.count_of(Label::Positive) >= maj)
        .then(|| artifacts.kd_class_index(data, p, Label::Positive).knn(x, maj)[maj - 1].1);
    let neg_stat = (data.continuous.count_of(Label::Negative) >= maj)
        .then(|| artifacts.kd_class_index(data, p, Label::Negative).knn(x, maj)[maj - 1].1);
    (optimistic_from_stats(pos_stat, neg_stat), pos_stat, neg_stat)
}

fn optimistic_from_stats<D: PartialOrd>(pos: Option<D>, neg: Option<D>) -> Label {
    match (pos, neg) {
        (Some(rp), Some(rn)) => {
            if rp.partial_cmp(&rn) != Some(std::cmp::Ordering::Greater) {
                Label::Positive
            } else {
                Label::Negative
            }
        }
        (Some(_), None) => Label::Positive,
        (None, Some(_)) => Label::Negative,
        (None, None) => unreachable!("dataset at least k ≥ 2·maj − 1 points"),
    }
}
