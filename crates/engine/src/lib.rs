//! # knn-engine — concurrent batch explanation serving
//!
//! The paper's algorithms (knn-core) answer one explanation query at a time;
//! real explanation workloads arrive in batches over one immutable dataset.
//! This crate adds the serving layer:
//!
//! * an [`ExplanationEngine`] owning the dataset plus lazily-built shared
//!   artifacts (per-class neighbor indexes, the Prop 1 ℓ2 region
//!   decomposition) — see [`artifacts`];
//! * a **query planner** routing each `(query, metric, k)` to the correct
//!   algorithm per the paper's Table 1, refusing intractable cells and
//!   demoting exponential tails to anytime/greedy variants under a
//!   deterministic effort budget — see [`plan`];
//! * a **worker pool** (std threads, no extra dependencies) executing
//!   batches concurrently with byte-deterministic, order-preserving output —
//!   [`ExplanationEngine::run_batch`];
//! * a **memoization layer**: the artifact store above plus an LRU cache of
//!   completed explanations keyed by the canonicalized query — see [`cache`];
//! * a JSON-lines wire format for the `xknn batch` subcommand — see
//!   [`request`] and [`json`].
//!
//! ## Determinism contract
//!
//! For a fixed dataset and [`EngineConfig`], the response *line* for a request
//! is a pure function of the request payload. Worker count, batch order,
//! scheduling, and cache hits cannot change a single output byte — the
//! property the engine's tests pin down. This is why effort budgets are
//! logical (CDCL conflicts, greedy hitting sets), never wall-clock.
//!
//! ```
//! use knn_engine::{EngineConfig, EngineData, ExplanationEngine, Request};
//! use knn_space::ContinuousDataset;
//!
//! let ds = ContinuousDataset::from_sets(
//!     vec![vec![2.0, 2.0], vec![3.0, 1.5]],
//!     vec![vec![-1.0, -1.0], vec![0.0, -2.0]],
//! );
//! let engine = ExplanationEngine::new(EngineData::from_continuous(ds), EngineConfig::default());
//!
//! let batch: Vec<Request> = [
//!     r#"{"id":"a","cmd":"classify","point":[1.0,1.0]}"#,
//!     r#"{"id":"b","cmd":"counterfactual","metric":"l2","point":[1.0,1.0]}"#,
//! ]
//! .iter()
//! .enumerate()
//! .map(|(i, line)| Request::from_json_line(line, &i.to_string()).unwrap())
//! .collect();
//!
//! let responses = engine.run_batch(&batch);
//! assert_eq!(responses[0].to_json_line(), r#"{"id":"a","ok":true,"route":"kdtree-class-index","label":"+"}"#);
//! assert!(responses[1].to_json_line().contains("\"proven\":true"));
//! ```

#![warn(missing_docs)]

pub mod artifacts;
pub mod cache;
pub mod exec;
pub mod json;
pub mod plan;
pub mod request;
pub mod textfmt;

pub use artifacts::{ArtifactStore, EngineData};
pub use cache::CacheStats;
pub use plan::{plan, Complexity, Plan, Route};
pub use request::{CacheKey, Metric, Outcome, QueryKind, Request, Response};

use cache::LruCache;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Engine-level configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads for batches (`0` = all available cores).
    pub workers: usize,
    /// Capacity of the completed-explanation LRU (`0` disables it).
    pub cache_capacity: usize,
    /// Deterministic effort budget for the exponential routes (CDCL conflicts
    /// for the SAT counterfactual; greedy hitting sets for minimum-SR).
    /// `None` runs everything exact. Never wall-clock: see the crate docs.
    pub effort_budget: Option<u64>,
    /// Serve the ℓ2 region routes from the eagerly materialized
    /// [`knn_core::regions::RegionCache`] instead of the lazy, pruned
    /// enumerator. The two paths are byte-identical by construction; this
    /// exists so the oracle tests can pin that down. Eager is `O(n^k)` time
    /// and memory before the first answer — never enable it for serving.
    pub eager_l2_regions: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 0,
            cache_capacity: 4096,
            effort_budget: None,
            eager_l2_regions: false,
        }
    }
}

/// Aggregate statistics of one [`ExplanationEngine::run_batch_with_stats`] call.
#[derive(Clone, Debug)]
pub struct BatchStats {
    /// Requests in the batch.
    pub requests: usize,
    /// Responses served from the explanation cache.
    pub cache_hits: usize,
    /// Responses that are errors (refused routes, malformed payloads).
    pub errors: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the batch.
    pub wall: Duration,
}

type CachedResult = (String, Result<Outcome, String>);

/// Lifetime counters of one [`ExplanationEngine`] (see
/// [`ExplanationEngine::stats`]) — the numbers the network server's `stats`
/// verb reports per tenant.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Explanation-LRU hit/miss/eviction counters.
    pub cache: CacheStats,
    /// Requests that joined another worker's in-flight computation of the
    /// same key (single-flight coalescing) instead of computing or hitting
    /// the LRU themselves.
    pub coalesced: u64,
    /// Keys currently being computed (size of the single-flight table).
    pub inflight: usize,
    /// Shared artifacts (per-class indexes, region caches) built so far —
    /// how "warm" this engine's one-time costs are.
    pub artifacts_built: usize,
}

/// The batch explanation server. See the crate docs for the architecture.
pub struct ExplanationEngine {
    config: EngineConfig,
    data: EngineData,
    artifacts: ArtifactStore,
    cache: Mutex<LruCache<CacheKey, CachedResult>>,
    coalesced: AtomicU64,
    /// Single-flight table: identical requests racing in one batch coalesce
    /// onto the first worker's computation instead of each paying the full
    /// (possibly exponential) route cost before the LRU is populated.
    inflight: Mutex<HashMap<CacheKey, Arc<Mutex<Option<CachedResult>>>>>,
}

impl ExplanationEngine {
    /// Builds an engine over `data`.
    pub fn new(data: EngineData, config: EngineConfig) -> Self {
        let cache = Mutex::new(LruCache::new(config.cache_capacity));
        ExplanationEngine {
            config,
            data,
            artifacts: ArtifactStore::new(),
            cache,
            coalesced: AtomicU64::new(0),
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Lifetime cache / single-flight counters. Observability only: reading
    /// them never changes a response byte.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cache: self.cache.lock().unwrap().stats(),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            inflight: self.inflight.lock().unwrap().len(),
            artifacts_built: self.artifacts.built_count(),
        }
    }

    /// The dataset this engine serves.
    pub fn data(&self) -> &EngineData {
        &self.data
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Answers one request (through the cache).
    pub fn run(&self, req: &Request) -> Response {
        self.run_one(req).0
    }

    /// Runs the executor with panic isolation: a panicking route (degenerate
    /// geometry tripping an internal solver assert) becomes an error
    /// *response* for that request instead of killing the whole batch — the
    /// same per-request isolation malformed and refused requests get. The
    /// panic message is itself deterministic for a given input, so the
    /// determinism contract holds for these lines too.
    fn execute_guarded(&self, req: &Request) -> Response {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec::execute_opts(
                &self.data,
                &self.artifacts,
                req,
                self.config.effort_budget,
                self.config.eager_l2_regions,
            )
        }));
        match outcome {
            Ok(resp) => resp,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_string());
                Response {
                    id: req.id.clone(),
                    route: "error".to_string(),
                    result: Err(format!("internal panic: {msg}")),
                }
            }
        }
    }

    /// `run` plus whether the response came from the cache (or was coalesced
    /// onto another worker's in-flight computation).
    fn run_one(&self, req: &Request) -> (Response, bool) {
        if self.config.cache_capacity == 0 {
            return (self.execute_guarded(req), false);
        }
        let key = req.cache_key();
        if let Some((route, result)) = self.cache.lock().unwrap().get(&key) {
            return (
                Response { id: req.id.clone(), route: route.clone(), result: result.clone() },
                true,
            );
        }
        // Cache miss: claim or join the in-flight slot for this key. The
        // claimant locks its slot *before* publishing it to the table, so a
        // joiner can never observe an unlocked-but-empty slot and recompute.
        let own_slot = Arc::new(Mutex::new(None));
        let mut own_guard = own_slot.lock().unwrap();
        let joined = match self.inflight.lock().unwrap().entry(key.clone()) {
            Entry::Occupied(e) => Some(e.get().clone()),
            Entry::Vacant(v) => {
                v.insert(own_slot.clone());
                None
            }
        };
        if let Some(theirs) = joined {
            drop(own_guard);
            // Blocks until the computing worker releases the slot. Caching is
            // transparent (responses are pure functions of the request), so
            // this changes cost, never bytes.
            let guard = theirs.lock().unwrap();
            if let Some((route, result)) = guard.as_ref() {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                return (
                    Response { id: req.id.clone(), route: route.clone(), result: result.clone() },
                    true,
                );
            }
            // Unreachable unless the computing worker died without
            // publishing; compute independently as a last resort.
            drop(guard);
            return (self.execute_guarded(req), false);
        }
        let resp = self.execute_guarded(req);
        *own_guard = Some((resp.route.clone(), resp.result.clone()));
        self.cache.lock().unwrap().insert(key.clone(), (resp.route.clone(), resp.result.clone()));
        drop(own_guard);
        self.inflight.lock().unwrap().remove(&key);
        (resp, false)
    }

    /// Executes a batch concurrently. The returned vector is index-aligned
    /// with `requests`, and its contents are byte-identical for every worker
    /// count and for any permutation of a batch (modulo the matching
    /// permutation of the output).
    pub fn run_batch(&self, requests: &[Request]) -> Vec<Response> {
        self.run_batch_with_stats(requests).0
    }

    /// [`ExplanationEngine::run_batch`] with aggregate statistics.
    pub fn run_batch_with_stats(&self, requests: &[Request]) -> (Vec<Response>, BatchStats) {
        let started = Instant::now();
        let workers = self.effective_workers(requests.len());
        let hits = AtomicUsize::new(0);
        let mut responses: Vec<Option<Response>> = Vec::with_capacity(requests.len());
        responses.resize_with(requests.len(), || None);

        if workers <= 1 {
            for (i, req) in requests.iter().enumerate() {
                let (resp, hit) = self.run_one(req);
                if hit {
                    hits.fetch_add(1, Ordering::Relaxed);
                }
                responses[i] = Some(resp);
            }
        } else {
            let next = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel::<(usize, Response, bool)>();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let next = &next;
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= requests.len() {
                            break;
                        }
                        let (resp, hit) = self.run_one(&requests[i]);
                        if tx.send((i, resp, hit)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                for (i, resp, hit) in rx {
                    if hit {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                    responses[i] = Some(resp);
                }
            });
        }

        let responses: Vec<Response> =
            responses.into_iter().map(|r| r.expect("every index answered")).collect();
        let stats = BatchStats {
            requests: requests.len(),
            cache_hits: hits.load(Ordering::Relaxed),
            errors: responses.iter().filter(|r| r.result.is_err()).count(),
            workers,
            wall: started.elapsed(),
        };
        (responses, stats)
    }

    /// Parses a JSON-lines batch (blank lines skipped; a malformed line
    /// becomes an error *response* in place, so the output stream stays
    /// aligned with the input), runs it, and returns the response lines plus
    /// stats.
    pub fn run_jsonl(&self, input: &str) -> (String, BatchStats) {
        // Requests and parse failures both carry (output slot, 1-based input
        // line number); id-less requests and error lines are identified by
        // the line number, matching the `line N:` prefix of parse errors.
        let mut requests: Vec<(usize, Request)> = Vec::new();
        let mut parse_errors: Vec<(usize, usize, String)> = Vec::new();
        for (lineno, line) in input.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let slot = requests.len() + parse_errors.len();
            match Request::from_json_line(line, &(lineno + 1).to_string()) {
                Ok(r) => requests.push((slot, r)),
                Err(e) => {
                    parse_errors.push((slot, lineno + 1, format!("line {}: {e}", lineno + 1)))
                }
            }
        }
        let reqs: Vec<Request> = requests.iter().map(|(_, r)| r.clone()).collect();
        let (resps, stats) = self.run_batch_with_stats(&reqs);

        let total = requests.len() + parse_errors.len();
        let mut lines: Vec<Option<String>> = vec![None; total];
        for ((slot, _), resp) in requests.iter().zip(&resps) {
            lines[*slot] = Some(resp.to_json_line());
        }
        for (slot, lineno, err) in &parse_errors {
            let resp = Response {
                id: lineno.to_string(),
                route: "error".to_string(),
                result: Err(err.clone()),
            };
            lines[*slot] = Some(resp.to_json_line());
        }
        let mut out = String::new();
        for line in lines.into_iter().flatten() {
            out.push_str(&line);
            out.push('\n');
        }
        let stats =
            BatchStats { requests: total, errors: stats.errors + parse_errors.len(), ..stats };
        (out, stats)
    }

    fn effective_workers(&self, batch_len: usize) -> usize {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let configured = if self.config.workers == 0 { hw } else { self.config.workers };
        configured.clamp(1, batch_len.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_space::ContinuousDataset;

    fn engine(config: EngineConfig) -> ExplanationEngine {
        // 0/1 dataset → both the continuous and the boolean views exist, so
        // every metric is servable.
        let ds = ContinuousDataset::from_sets(
            vec![vec![1.0, 1.0, 1.0], vec![1.0, 1.0, 0.0], vec![1.0, 0.0, 1.0]],
            vec![vec![0.0, 0.0, 0.0], vec![0.0, 0.0, 1.0], vec![0.0, 1.0, 0.0]],
        );
        ExplanationEngine::new(EngineData::from_continuous(ds), config)
    }

    fn req(line: &str) -> Request {
        Request::from_json_line(line, "0").unwrap()
    }

    #[test]
    fn classify_matches_reference_classifier() {
        let e = engine(EngineConfig::default());
        for (metric, point) in
            [("l2", "[0.9,0.2,0.4]"), ("l1", "[0.1,0.9,0.2]"), ("hamming", "[1,0,0]")]
        {
            for k in [1u32, 3] {
                let r = req(&format!(
                    r#"{{"cmd":"classify","metric":"{metric}","k":{k},"point":{point}}}"#
                ));
                let resp = e.run(&r);
                let Ok(Outcome::Label(fast)) = resp.result else {
                    panic!("classify failed: {resp:?}")
                };
                // Reference: the O(n·d) scan classifier.
                let expected = match r.metric {
                    Metric::Hamming => {
                        let ds = e.data().boolean.as_ref().unwrap();
                        let bx = knn_space::BitVec::from_bools(
                            &r.point.iter().map(|&v| v == 1.0).collect::<Vec<_>>(),
                        );
                        knn_core::BooleanKnn::new(ds, knn_space::OddK::of(k)).classify(&bx)
                    }
                    m => {
                        let p = m.lp_exponent().unwrap();
                        knn_core::ContinuousKnn::new(
                            &e.data().continuous,
                            knn_space::LpMetric::new(p),
                            knn_space::OddK::of(k),
                        )
                        .classify(&r.point)
                    }
                };
                assert_eq!(fast, expected, "metric {metric} k {k}");
            }
        }
    }

    #[test]
    fn cache_serves_identical_bytes() {
        let e = engine(EngineConfig::default());
        let r = req(r#"{"id":"x","cmd":"counterfactual","metric":"hamming","point":[1,0,0]}"#);
        let (first, hit1) = e.run_one(&r);
        let (second, hit2) = e.run_one(&r);
        assert!(!hit1);
        assert!(hit2, "second identical query must hit the cache");
        assert_eq!(first.to_json_line(), second.to_json_line());
    }

    #[test]
    fn batch_output_is_order_preserving_and_id_stable() {
        let e = engine(EngineConfig { workers: 4, ..EngineConfig::default() });
        let reqs: Vec<Request> = (0..40)
            .map(|i| {
                req(&format!(
                    r#"{{"id":"q{i}","cmd":"classify","metric":"l2","point":[{},0.5,0.25]}}"#,
                    (i as f64) / 7.0 - 2.0
                ))
            })
            .collect();
        let resps = e.run_batch(&reqs);
        assert_eq!(resps.len(), 40);
        for (i, r) in resps.iter().enumerate() {
            assert_eq!(r.id, format!("q{i}"), "output stays index-aligned");
        }
    }

    #[test]
    fn jsonl_stream_keeps_malformed_lines_aligned() {
        let e = engine(EngineConfig::default());
        let input = "\n{\"cmd\":\"classify\",\"point\":[1,1,1]}\nnot json\n{\"cmd\":\"fly\",\"point\":[1,1,1]}\n";
        let (out, stats) = e.run_jsonl(input);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"ok\":true"), "{}", lines[0]);
        assert!(lines[1].contains("\"ok\":false"), "{}", lines[1]);
        assert!(lines[2].contains("unknown cmd"), "{}", lines[2]);
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.errors, 2);
    }

    #[test]
    fn executor_panics_become_error_responses() {
        // A deliberately inconsistent EngineData (boolean view of a different
        // dimension) makes the Hamming route panic inside knn-core; the
        // engine must convert that into an error response for the one
        // request and keep serving the rest of the batch.
        let continuous = ContinuousDataset::from_sets(vec![vec![1.0, 1.0]], vec![vec![0.0, 0.0]]);
        let mut boolean = knn_space::BooleanDataset::new(3);
        boolean.push(knn_space::BitVec::from_bits(&[1, 1, 1]), knn_space::Label::Positive);
        boolean.push(knn_space::BitVec::from_bits(&[0, 0, 0]), knn_space::Label::Negative);
        let e = ExplanationEngine::new(
            EngineData::new(continuous, Some(boolean)),
            EngineConfig { workers: 2, ..EngineConfig::default() },
        );
        let batch = [
            req(r#"{"id":"bad","cmd":"classify","metric":"hamming","point":[1,0]}"#),
            req(r#"{"id":"good","cmd":"classify","metric":"l2","point":[1.0,0.0]}"#),
        ];
        let resps = e.run_batch(&batch);
        let err = resps[0].result.as_ref().unwrap_err();
        assert!(err.contains("internal panic"), "{err}");
        assert!(resps[1].result.is_ok(), "other requests keep being served");
    }

    #[test]
    fn budget_demotes_and_flags() {
        let exact = engine(EngineConfig::default());
        let budgeted =
            engine(EngineConfig { effort_budget: Some(1_000_000), ..EngineConfig::default() });
        let r = req(r#"{"cmd":"minimum-sr","metric":"hamming","k":3,"point":[1,0,0]}"#);
        let Ok(Outcome::Reason { features: exact_sr, optimal: true }) = exact.run(&r).result else {
            panic!("exact run failed")
        };
        let Ok(Outcome::Reason { features: greedy_sr, optimal: false }) = budgeted.run(&r).result
        else {
            panic!("budgeted run must flag optimal=false")
        };
        assert!(greedy_sr.len() >= exact_sr.len(), "greedy upper-bounds the minimum");
    }
}
