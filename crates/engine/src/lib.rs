//! # knn-engine — concurrent batch explanation serving
//!
//! The paper's algorithms (knn-core) answer one explanation query at a time;
//! real explanation workloads arrive in batches over one immutable dataset.
//! This crate adds the serving layer:
//!
//! * an [`ExplanationEngine`] owning the dataset plus lazily-built shared
//!   artifacts (per-class neighbor indexes, the Prop 1 ℓ2 region
//!   decomposition) — see [`artifacts`];
//! * a **query planner** routing each `(query, metric, k)` to the correct
//!   algorithm per the paper's Table 1, refusing intractable cells and
//!   demoting exponential tails to anytime/greedy variants under a
//!   deterministic effort budget — see [`plan`];
//! * a **worker pool** (std threads, no extra dependencies) executing
//!   batches concurrently with byte-deterministic, order-preserving output —
//!   [`ExplanationEngine::run_batch`];
//! * a **memoization layer**: the artifact store above plus an LRU cache of
//!   completed explanations keyed by the canonicalized query — see [`cache`];
//! * a JSON-lines wire format for the `xknn batch` subcommand — see
//!   [`request`] and [`json`].
//!
//! ## Determinism contract
//!
//! For a fixed dataset and [`EngineConfig`], the response *line* for a request
//! is a pure function of the request payload. Worker count, batch order,
//! scheduling, and cache hits cannot change a single output byte — the
//! property the engine's tests pin down. This is why effort budgets are
//! logical (CDCL conflicts, greedy hitting sets), never wall-clock.
//!
//! ## Live mutation
//!
//! The dataset is **versioned**, not frozen: [`ExplanationEngine::apply`]
//! inserts or removes one point, bumping a monotone *epoch* (the length of
//! the tenant's append-only [`knn_delta::MutationLog`]). The determinism
//! contract generalizes: a response is a pure function of `(dataset at the
//! query's epoch, config, request)`. Epochs are assigned at a **barrier**:
//! each `run_batch` snapshots `(epoch, data, artifacts)` once, so a
//! mutation racing a batch lands entirely before or entirely after it —
//! queries in one batch all see the same epoch, and batch output stays
//! byte-deterministic. After any mutation sequence, every response is
//! byte-identical to a fresh engine loaded with the final dataset (the
//! differential contract `prop_mutation.rs` pins), because mutations
//! preserve point order and invalidation is conservative:
//!
//! * per-class neighbor indexes are carried across the epoch for the class
//!   the mutation did not touch ([`ArtifactStore::carry_over`]);
//! * region artifacts drop on any mutation (they mix both classes);
//! * cached explanations are epoch-tagged and lazily evicted; cached
//!   `classify` answers carry a [`knn_delta::ClassifyGuard`] and are
//!   *revalidated* — promoted to the new epoch — when every logged
//!   mutation provably left their per-class order statistics unchanged.
//!
//! ```
//! use knn_engine::{EngineConfig, EngineData, ExplanationEngine, Request};
//! use knn_space::ContinuousDataset;
//!
//! let ds = ContinuousDataset::from_sets(
//!     vec![vec![2.0, 2.0], vec![3.0, 1.5]],
//!     vec![vec![-1.0, -1.0], vec![0.0, -2.0]],
//! );
//! let engine = ExplanationEngine::new(EngineData::from_continuous(ds), EngineConfig::default());
//!
//! let batch: Vec<Request> = [
//!     r#"{"id":"a","cmd":"classify","point":[1.0,1.0]}"#,
//!     r#"{"id":"b","cmd":"counterfactual","metric":"l2","point":[1.0,1.0]}"#,
//! ]
//! .iter()
//! .enumerate()
//! .map(|(i, line)| Request::from_json_line(line, &i.to_string()).unwrap())
//! .collect();
//!
//! let responses = engine.run_batch(&batch);
//! assert_eq!(responses[0].to_json_line(), r#"{"id":"a","ok":true,"route":"kdtree-class-index","label":"+"}"#);
//! assert!(responses[1].to_json_line().contains("\"proven\":true"));
//! ```

#![warn(missing_docs)]

pub mod artifacts;
pub mod bundle;
pub mod cache;
pub mod exec;
pub mod json;
pub mod plan;
pub mod request;
pub mod textfmt;

pub use artifacts::{ArtifactResources, ArtifactStore, EngineData};
pub use bundle::{BundleEntry, ReplayDivergence, ReplayReport, ReproBundle};
pub use cache::CacheStats;
pub use plan::{plan, Complexity, Plan, Route};
pub use request::{CacheKey, Metric, Outcome, QueryKind, Request, Response};

pub use knn_delta::Mutation;

use cache::LruCache;
use knn_delta::{AppliedMutation, ClassifyGuard, MutationLog};
use knn_telemetry::{Histogram, QueryTrace, SpanCtx, SpanEvent, Telemetry};
use std::cell::Cell;
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Sampling period for cache-probe phase timing: 1 in this many probes is
/// wall-clock timed. Probing a warm cache is a sub-µs operation, so reading
/// the clock around every probe would cost more than the probe itself.
const CACHE_PROBE_SAMPLE: u64 = 16;

/// Whether this query's cache probe should be wall-clock timed. Deterministic
/// per-thread round-robin: the **first** probe on every thread is sampled (so
/// the phase series exists as soon as any traffic flows), then 1 in
/// [`CACHE_PROBE_SAMPLE`]. Unsampled queries leave `QueryTrace::cache_us` at
/// zero; the phase histogram stays representative because warm probes are
/// tightly clustered.
fn sample_cache_probe() -> bool {
    thread_local! {
        static TICK: Cell<u64> = const { Cell::new(0) };
    }
    TICK.with(|t| {
        let v = t.get();
        t.set(v.wrapping_add(1));
        v % CACHE_PROBE_SAMPLE == 0
    })
}

/// Engine-level configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineConfig {
    /// Worker threads for batches (`0` = all available cores).
    pub workers: usize,
    /// Capacity of the completed-explanation LRU (`0` disables it).
    pub cache_capacity: usize,
    /// Deterministic effort budget for the exponential routes (CDCL conflicts
    /// for the SAT counterfactual; greedy hitting sets for minimum-SR).
    /// `None` runs everything exact. Never wall-clock: see the crate docs.
    pub effort_budget: Option<u64>,
    /// Serve the ℓ2 region routes from the eagerly materialized
    /// [`knn_core::regions::RegionCache`] instead of the lazy, pruned
    /// enumerator. The two paths are byte-identical by construction; this
    /// exists so the oracle tests can pin that down. Eager is `O(n^k)` time
    /// and memory before the first answer — never enable it for serving.
    pub eager_l2_regions: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: 0,
            cache_capacity: 4096,
            effort_budget: None,
            eager_l2_regions: false,
        }
    }
}

/// Aggregate statistics of one [`ExplanationEngine::run_batch_with_stats`] call.
#[derive(Clone, Debug)]
pub struct BatchStats {
    /// Requests in the batch.
    pub requests: usize,
    /// Responses served from the explanation cache.
    pub cache_hits: usize,
    /// Responses that are errors (refused routes, malformed payloads).
    pub errors: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock time of the batch.
    pub wall: Duration,
}

type CachedResult = (String, Result<Outcome, String>);

/// One epoch-tagged explanation-cache entry. `guard` (classify only) is the
/// survival certificate that lets a later epoch revalidate the entry
/// instead of recomputing it.
struct CachedEntry {
    epoch: u64,
    route: String,
    result: Result<Outcome, String>,
    guard: Option<ClassifyGuard>,
}

/// Estimated bytes one cache entry pins (key + value, inline structs plus
/// owned heap). Accounting only — the weight never influences eviction.
fn entry_bytes(key: &CacheKey, entry: &CachedEntry) -> u64 {
    let guard_bytes = entry
        .guard
        .as_ref()
        .map_or(0, |g| std::mem::size_of::<ClassifyGuard>() + g.point.len() * 8);
    let result_bytes = match &entry.result {
        Ok(o) => o.approx_bytes(),
        Err(e) => e.len(),
    };
    (key.approx_bytes()
        + std::mem::size_of::<CachedEntry>()
        + entry.route.len()
        + result_bytes
        + guard_bytes) as u64
}

/// How far back a cache entry may lag the current epoch and still be
/// considered for guard revalidation. Beyond this, replaying the mutation
/// window costs more than it saves; the entry just misses.
const REVALIDATE_WINDOW: u64 = 64;

/// One epoch's immutable serving view. `run_batch` snapshots this once, so
/// a mutation racing a batch lands entirely before or after it. Together
/// `data` + `log` are the engine's versioned dataset (the standalone form
/// is [`knn_delta::VersionedDataset`]; holding the views directly avoids
/// storing the point set twice). The log is compacted to the revalidation
/// window — its only reader — so memory stays bounded under sustained
/// mutation streams.
struct EpochState {
    /// The epoch's engine view (continuous + boolean), mutated by
    /// structural `with_insert`/`with_remove` clones.
    data: Arc<EngineData>,
    /// The mutation history; `log.epoch()` is the current epoch.
    log: MutationLog,
    /// The epoch's artifact store (survivors carried over on mutation).
    artifacts: Arc<ArtifactStore>,
}

/// A cheap clone of the serving view a batch runs against.
struct Snapshot {
    epoch: u64,
    data: Arc<EngineData>,
    artifacts: Arc<ArtifactStore>,
}

/// What one shadow-audit re-execution found
/// (see [`ExplanationEngine::audit_replay`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditOutcome {
    /// The recomputed bytes equal the served bytes.
    Match,
    /// The recomputed bytes differ — a determinism violation.
    Diverged {
        /// The line the re-execution produced.
        got: String,
    },
    /// The engine moved past the served epoch before the audit ran; the
    /// comparison would be meaningless, so nothing was checked.
    Stale,
}

/// What [`ExplanationEngine::apply`] reports about an applied mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MutationReceipt {
    /// The epoch the engine is now at.
    pub epoch: u64,
    /// Points in the dataset now.
    pub points: usize,
    /// Positive points now.
    pub positives: usize,
    /// Negative points now.
    pub negatives: usize,
}

/// Estimated memory footprint of one engine's long-lived structures, by
/// component (see [`ExplanationEngine::stats`]). All figures are coarse
/// estimates — element payloads plus container headers, not allocator
/// truth — good enough to rank tenants and watch growth. The components
/// are disjoint: `dataset` is the live epoch's views, `log` the retained
/// mutation entries, `artifact` the completed index/region artifacts
/// (minus the lazy views' memos), `memo` those memos against their cap,
/// `cache` the explanation LRU's keys and payloads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceStats {
    /// The live dataset (continuous + boolean views).
    pub dataset_bytes: u64,
    /// Retained mutation-log entries.
    pub log_bytes: u64,
    /// Retained (uncompacted) mutation-log length.
    pub log_len: u64,
    /// Completed artifacts, excluding region memos.
    pub artifact_bytes: u64,
    /// Region memos of the lazy views.
    pub memo_bytes: u64,
    /// Region-memo entries held.
    pub memo_len: u64,
    /// Region-memo insert bound (fill-gauge denominator).
    pub memo_cap: u64,
    /// Explanation-LRU keys + payloads.
    pub cache_bytes: u64,
}

impl ResourceStats {
    /// Every component summed — the `bytes_total` a `top` row ranks by.
    pub fn total_bytes(&self) -> u64 {
        self.dataset_bytes
            + self.log_bytes
            + self.artifact_bytes
            + self.memo_bytes
            + self.cache_bytes
    }
}

/// Monotonic work counters for one `(engine, route)` pair (see
/// [`ExplanationEngine::work_stats`]). Deltas of the solver layers'
/// thread-local tallies, attributed to the route that ran — exact, because
/// one query executes entirely on one worker thread.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouteWorkSnapshot {
    /// The planner route tag (the response's `route` member).
    pub route: String,
    /// Queries that computed (cache misses / uncached) under this route.
    pub computes: u64,
    /// Simplex LP solves (feasibility probes included).
    pub lp_solves: u64,
    /// QP projections onto Prop 1 polyhedra.
    pub qp_solves: u64,
    /// KD-tree nodes visited.
    pub kd_visits: u64,
    /// Region polyhedra yielded by the lazy enumerator.
    pub region_yields: u64,
    /// Cumulative solver wall time, µs (0 unless telemetry is enabled —
    /// the engine never reads the clock on untimed paths).
    pub solve_us: u64,
}

/// Shared atomics behind one route's [`RouteWorkSnapshot`].
#[derive(Debug, Default)]
struct RouteWork {
    computes: AtomicU64,
    lp_solves: AtomicU64,
    qp_solves: AtomicU64,
    kd_visits: AtomicU64,
    region_yields: AtomicU64,
    solve_us: AtomicU64,
}

/// A point-in-time reading of the solver layers' thread-local work tallies
/// (taken before and after a compute; the difference is the query's work).
#[derive(Clone, Copy)]
struct WorkSample {
    lp: u64,
    qp: u64,
    kd: u64,
    regions: u64,
}

impl WorkSample {
    fn take() -> WorkSample {
        WorkSample {
            lp: knn_lp::tally::lp_solves(),
            qp: knn_qp::tally::qp_solves(),
            kd: knn_index::tally::kd_node_visits(),
            regions: knn_core::tally::region_yields(),
        }
    }
}

/// Lifetime counters of one [`ExplanationEngine`] (see
/// [`ExplanationEngine::stats`]) — the numbers the network server's `stats`
/// verb reports per tenant.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineStats {
    /// Explanation-LRU hit/miss/eviction counters.
    pub cache: CacheStats,
    /// Requests that joined another worker's in-flight computation of the
    /// same key (single-flight coalescing) instead of computing or hitting
    /// the LRU themselves.
    pub coalesced: u64,
    /// Keys currently being computed (size of the single-flight table).
    pub inflight: usize,
    /// Shared artifacts (per-class indexes, region caches) built so far —
    /// how "warm" this engine's one-time costs are.
    pub artifacts_built: usize,
    /// The current epoch (mutations applied since load).
    pub epoch: u64,
    /// Points inserted since load.
    pub inserts: u64,
    /// Points removed since load.
    pub removes: u64,
    /// Cache hits that crossed an epoch boundary: stale entries whose guard
    /// proved the answer unchanged, promoted instead of recomputed.
    pub revalidated: u64,
    /// Guard revalidations that failed: the entry's statistics could have
    /// moved, so the query recomputed.
    pub revalidation_failed: u64,
    /// Cache entries installed by [`ExplanationEngine::insert_external`] —
    /// answers computed by a *peer* replica and pushed in by the router's
    /// cross-replica fill. Kept separate from hits/misses so cluster-wide
    /// hit-rate math stays honest once an entry exists on several replicas.
    pub filled: u64,
    /// Lazy region-enumeration activity: yields and per-rule prune counts,
    /// engine-lifetime (see [`knn_core::regions::RegionCounters`]).
    pub regions: knn_core::regions::RegionCountersSnapshot,
    /// Total wall time spent building shared artifacts, µs
    /// (engine-lifetime — rebuilds after mutations included).
    pub artifact_build_us: u64,
    /// Artifact cells built over the engine's lifetime (contrast with the
    /// live `artifacts_built`).
    pub artifacts_built_total: u64,
    /// Completed artifact cells carried across mutations instead of
    /// rebuilt.
    pub artifacts_carried: u64,
    /// Served queries re-executed by the shadow audit
    /// (see [`ExplanationEngine::audit_replay`]).
    pub audit_checked: u64,
    /// Audit re-executions whose bytes differed from the served response —
    /// nonzero means the determinism invariant was violated somewhere.
    pub audit_diverged: u64,
    /// Estimated memory footprint by component (see [`ResourceStats`]).
    pub resources: ResourceStats,
}

/// The batch explanation server. See the crate docs for the architecture.
pub struct ExplanationEngine {
    config: EngineConfig,
    state: Mutex<EpochState>,
    cache: Mutex<LruCache<CacheKey, CachedEntry>>,
    coalesced: AtomicU64,
    revalidated: AtomicU64,
    revalidation_failed: AtomicU64,
    filled: AtomicU64,
    inserts: AtomicU64,
    removes: AtomicU64,
    audit_checked: AtomicU64,
    audit_diverged: AtomicU64,
    /// Single-flight table: identical requests racing in one batch coalesce
    /// onto the first worker's computation instead of each paying the full
    /// (possibly exponential) route cost before the LRU is populated. Keyed
    /// by `(epoch, request key)`: the same request at different epochs is
    /// different work and must never coalesce.
    inflight: Mutex<HashMap<(u64, CacheKey), Arc<Mutex<Option<CachedResult>>>>>,
    /// Out-of-band telemetry (disabled by default; the server enables it).
    /// Phase histogram handles are resolved once here so the hot path
    /// never touches the registry's maps.
    telemetry: Arc<Telemetry>,
    /// Tenant label span events carry (the `with_telemetry` label).
    tenant: String,
    /// Per-route monotonic work counters (LP/QP solves, KD node visits,
    /// region yields, solve µs). Always on: the per-compute cost is four
    /// thread-local reads and a handful of relaxed adds, paid only on the
    /// compute path — warm cache hits never touch it.
    work: RwLock<BTreeMap<String, Arc<RouteWork>>>,
    phase_cache: Arc<Histogram>,
    phase_plan: Arc<Histogram>,
    phase_solve: Arc<Histogram>,
    phase_artifact: Arc<Histogram>,
    phase_apply: Arc<Histogram>,
}

impl ExplanationEngine {
    /// Builds an engine over `data` (epoch 0, empty mutation log) with its
    /// own disabled telemetry registry — the standalone (`xknn batch`)
    /// configuration, paying one atomic load per query for the plumbing.
    pub fn new(data: EngineData, config: EngineConfig) -> Self {
        Self::with_telemetry(data, config, Telemetry::new(), "_local")
    }

    /// [`ExplanationEngine::new`] recording into a shared [`Telemetry`]
    /// under the tenant label `label` — the server wires every tenant's
    /// engine to one process-wide registry so a single `metrics` scrape
    /// covers them all. Telemetry never changes a response byte: it is
    /// recorded strictly out-of-band (see the determinism contract above).
    pub fn with_telemetry(
        data: EngineData,
        config: EngineConfig,
        telemetry: Arc<Telemetry>,
        label: &str,
    ) -> Self {
        let cache = Mutex::new(LruCache::new(config.cache_capacity));
        let state = EpochState {
            data: Arc::new(data),
            log: MutationLog::new(),
            artifacts: Arc::new(ArtifactStore::new()),
        };
        let phase_cache = telemetry.phase_histogram(label, "cache");
        let phase_plan = telemetry.phase_histogram(label, "plan");
        let phase_solve = telemetry.phase_histogram(label, "solve");
        let phase_artifact = telemetry.phase_histogram(label, "artifact_build");
        let phase_apply = telemetry.phase_histogram(label, "mutation_apply");
        ExplanationEngine {
            config,
            state: Mutex::new(state),
            cache,
            coalesced: AtomicU64::new(0),
            revalidated: AtomicU64::new(0),
            revalidation_failed: AtomicU64::new(0),
            filled: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            removes: AtomicU64::new(0),
            audit_checked: AtomicU64::new(0),
            audit_diverged: AtomicU64::new(0),
            inflight: Mutex::new(HashMap::new()),
            telemetry,
            tenant: label.to_string(),
            work: RwLock::new(BTreeMap::new()),
            phase_cache,
            phase_plan,
            phase_solve,
            phase_artifact,
            phase_apply,
        }
    }

    /// The telemetry registry this engine records into (the server's
    /// shared one, or this engine's own disabled instance).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Lifetime cache / single-flight / mutation counters plus the
    /// per-component memory estimate. Observability only: reading them
    /// never changes a response byte.
    pub fn stats(&self) -> EngineStats {
        let (epoch, artifacts_built, regions, store, mut resources) = {
            let st = self.state.lock().unwrap();
            let art = st.artifacts.resources();
            let resources = ResourceStats {
                dataset_bytes: (st.data.continuous.approx_bytes()
                    + st.data.boolean.as_ref().map_or(0, |b| b.approx_bytes()))
                    as u64,
                log_bytes: st.log.approx_bytes() as u64,
                log_len: st.log.retained() as u64,
                artifact_bytes: art.artifact_bytes as u64,
                memo_bytes: art.memo_bytes as u64,
                memo_len: art.memo_len as u64,
                memo_cap: art.memo_cap as u64,
                cache_bytes: 0,
            };
            (
                st.log.epoch(),
                st.artifacts.built_count(),
                st.artifacts.region_counters().snapshot(),
                st.artifacts.metrics().snapshot(),
                resources,
            )
        };
        let cache = self.cache.lock().unwrap().stats();
        resources.cache_bytes = cache.bytes;
        EngineStats {
            cache,
            coalesced: self.coalesced.load(Ordering::Relaxed),
            inflight: self.inflight.lock().unwrap().len(),
            artifacts_built,
            epoch,
            inserts: self.inserts.load(Ordering::Relaxed),
            removes: self.removes.load(Ordering::Relaxed),
            revalidated: self.revalidated.load(Ordering::Relaxed),
            revalidation_failed: self.revalidation_failed.load(Ordering::Relaxed),
            filled: self.filled.load(Ordering::Relaxed),
            regions,
            artifact_build_us: store.build_us,
            artifacts_built_total: store.built,
            artifacts_carried: store.carried,
            audit_checked: self.audit_checked.load(Ordering::Relaxed),
            audit_diverged: self.audit_diverged.load(Ordering::Relaxed),
            resources,
        }
    }

    /// Per-route monotonic work counters, sorted by route. Observability
    /// only — reading or recording them never changes a response byte.
    pub fn work_stats(&self) -> Vec<RouteWorkSnapshot> {
        self.work
            .read()
            .unwrap()
            .iter()
            .map(|(route, w)| RouteWorkSnapshot {
                route: route.clone(),
                computes: w.computes.load(Ordering::Relaxed),
                lp_solves: w.lp_solves.load(Ordering::Relaxed),
                qp_solves: w.qp_solves.load(Ordering::Relaxed),
                kd_visits: w.kd_visits.load(Ordering::Relaxed),
                region_yields: w.region_yields.load(Ordering::Relaxed),
                solve_us: w.solve_us.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// The shared counters for `route`, creating them on first use (the
    /// same double-checked read/write pattern as the telemetry registry's
    /// labeled histograms).
    fn route_work(&self, route: &str) -> Arc<RouteWork> {
        if let Some(w) = self.work.read().unwrap().get(route) {
            return w.clone();
        }
        self.work.write().unwrap().entry(route.to_string()).or_default().clone()
    }

    /// Attributes the work done since `w0` to `route`. One query runs on one
    /// worker thread, so the thread-local tally deltas are exact; wrapping
    /// subtraction keeps the attribution correct even across tally overflow.
    fn record_work(&self, route: &str, w0: &WorkSample, solve_us: u64) {
        let w1 = WorkSample::take();
        let w = self.route_work(route);
        w.computes.fetch_add(1, Ordering::Relaxed);
        w.lp_solves.fetch_add(w1.lp.wrapping_sub(w0.lp), Ordering::Relaxed);
        w.qp_solves.fetch_add(w1.qp.wrapping_sub(w0.qp), Ordering::Relaxed);
        w.kd_visits.fetch_add(w1.kd.wrapping_sub(w0.kd), Ordering::Relaxed);
        w.region_yields.fetch_add(w1.regions.wrapping_sub(w0.regions), Ordering::Relaxed);
        w.solve_us.fetch_add(solve_us, Ordering::Relaxed);
    }

    /// The dataset at the current epoch (a snapshot — a concurrent
    /// mutation does not change the returned view).
    pub fn data(&self) -> Arc<EngineData> {
        self.state.lock().unwrap().data.clone()
    }

    /// The current epoch: the number of mutations applied since load.
    pub fn epoch(&self) -> u64 {
        self.state.lock().unwrap().log.epoch()
    }

    /// The current dataset serialized in the `+/-` text format. Loading
    /// this text into a fresh engine yields a byte-identical oracle for
    /// every query — the differential contract of the mutation layer.
    pub fn dataset_text(&self) -> String {
        knn_delta::dataset_text(&self.state.lock().unwrap().data.continuous)
    }

    /// Applies one mutation, bumping the epoch. Acts as a barrier against
    /// batches: a batch snapshots its serving view once, so it sees this
    /// mutation entirely or not at all. Invalidation is selective — the
    /// untouched class's neighbor indexes carry over; region artifacts
    /// drop; epoch-tagged cache entries revalidate or lazily evict.
    pub fn apply(&self, m: Mutation) -> Result<MutationReceipt, String> {
        let apply_started = self.telemetry.is_enabled().then(Instant::now);
        let mut st = self.state.lock().unwrap();
        m.validate(&st.data.continuous)?;
        // Incremental epoch-view derivation (O(n) clone + O(d) update) —
        // `with_*` semantics are pinned to `from_continuous` re-derivation.
        // Removals capture the departing point *before* the view swings: the
        // log (and through it guard revalidation) needs it afterwards.
        let (data, applied) = match m {
            Mutation::Insert { point, label } => {
                self.inserts.fetch_add(1, Ordering::Relaxed);
                (st.data.with_insert(&point, label), AppliedMutation::Insert { point, label })
            }
            Mutation::Remove { id } => {
                self.removes.fetch_add(1, Ordering::Relaxed);
                let point = st.data.continuous.point(id).to_vec();
                let label = st.data.continuous.label(id);
                (st.data.with_remove(id), AppliedMutation::Remove { id, point, label })
            }
        };
        let data = Arc::new(data);
        st.artifacts = Arc::new(st.artifacts.carry_over(applied.label()));
        st.data = data.clone();
        st.log.push(applied);
        // Nothing reads farther back than the revalidation window; dropping
        // older entries bounds the log under sustained mutation streams.
        let keep_from = st.log.epoch().saturating_sub(REVALIDATE_WINDOW);
        st.log.compact_before(keep_from);
        let apply_us = apply_started.map(|t0| t0.elapsed().as_micros() as u64).unwrap_or(0);
        if apply_started.is_some() {
            self.phase_apply.record(apply_us);
        }
        // Epoch transitions are rare and forensically load-bearing (they
        // explain artifact rebuilds and cache misses around them), so they
        // are always force-captured.
        let recorder = self.telemetry.recorder();
        let end_us = recorder.now_us();
        recorder.push(
            SpanEvent {
                seq: recorder.next_seq(),
                name: "apply",
                detail: format!("epoch={}", st.log.epoch()),
                tenant: self.tenant.clone(),
                epoch: st.log.epoch(),
                start_us: end_us.saturating_sub(apply_us),
                dur_us: apply_us,
                ..SpanEvent::default()
            },
            true,
        );
        Ok(MutationReceipt {
            epoch: st.log.epoch(),
            points: data.continuous.len(),
            positives: data.continuous.count_of(knn_space::Label::Positive),
            negatives: data.continuous.count_of(knn_space::Label::Negative),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Installs an explanation computed by a *peer* replica — the receiving
    /// half of the cluster's cross-replica cache fill. Returns whether the
    /// entry was actually installed.
    ///
    /// Safety argument (why a pushed entry can never change a response
    /// byte): entries are immutable values keyed by `(epoch, CacheKey)`,
    /// and every replica of a tenant at the same epoch holds a
    /// byte-identical dataset, so a peer's answer at this epoch is the
    /// *same pure function value* this engine would compute. The epoch is
    /// checked under the state lock — a fill for any other epoch than the
    /// current one is dropped (stale fills race mutations; future ones
    /// can't be verified) — and an existing entry at the same or a newer
    /// epoch is never evicted or overwritten, so a locally computed (or
    /// guard-revalidated) entry always wins over a late push. Fills bump
    /// the `filled` counter only, never hits/misses: a pushed entry is
    /// neither a lookup nor a compute.
    pub fn insert_external(
        &self,
        epoch: u64,
        req: &Request,
        route: String,
        result: Result<Outcome, String>,
    ) -> bool {
        if self.config.cache_capacity == 0 {
            return false;
        }
        // Hold the state lock across the insert so a racing `apply` orders
        // entirely before (fill dropped) or after (entry stale-tagged and
        // lazily evicted) — never half-way. State → cache is the existing
        // lock order (`stats`); the reverse nesting never occurs.
        let st = self.state.lock().unwrap();
        if st.log.epoch() != epoch {
            return false;
        }
        let key = req.cache_key();
        let mut cache = self.cache.lock().unwrap();
        if let Some(e) = cache.lookup(&key) {
            if e.epoch >= epoch {
                return false;
            }
        }
        let entry = CachedEntry { epoch, route, result, guard: None };
        let weight = entry_bytes(&key, &entry);
        cache.insert_weighted(key, entry, weight);
        drop(cache);
        drop(st);
        self.filled.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Re-executes an already-served query against the current snapshot and
    /// byte-diffs the result against the served response line — the engine
    /// half of the continuous shadow audit.
    ///
    /// The re-execution deliberately bypasses the explanation cache, the
    /// single-flight table, and the per-route work counters
    /// ([`execute_guarded`](Self::execute_guarded) alone): the audit wants
    /// an independent recomputation, and auditing must never perturb the
    /// serving stats it sits next to. Only when the snapshot still sits at
    /// `epoch` is the comparison meaningful (the invariant fixes the answer
    /// per epoch); a mutation that raced the audit yields
    /// [`AuditOutcome::Stale`], which callers count as skipped, not checked.
    pub fn audit_replay(&self, req: &Request, epoch: u64, expected: &str) -> AuditOutcome {
        let snap = self.snapshot();
        if snap.epoch != epoch {
            return AuditOutcome::Stale;
        }
        let (resp, _, _) = self.execute_guarded(&snap, req, false);
        self.audit_checked.fetch_add(1, Ordering::Relaxed);
        let got = resp.to_json_line();
        if got == expected {
            AuditOutcome::Match
        } else {
            self.audit_diverged.fetch_add(1, Ordering::Relaxed);
            AuditOutcome::Diverged { got }
        }
    }

    /// Answers one request (through the cache) at the current epoch.
    pub fn run(&self, req: &Request) -> Response {
        self.run_with_trace(req).0
    }

    /// [`ExplanationEngine::run`], also returning the query's out-of-band
    /// [`QueryTrace`] (cache outcome, epoch, phase breakdown). The server
    /// layer combines it with admission wait and end-to-end time for the
    /// slow-query ring; phase timings are zero when telemetry is disabled.
    pub fn run_with_trace(&self, req: &Request) -> (Response, QueryTrace) {
        self.run_traced(req, None)
    }

    /// [`ExplanationEngine::run_with_trace`] under an explicit flight-
    /// recorder capture context. With `Some(ctx)` the engine emits
    /// plan/artifact/cache/solve span events parented under `ctx` (the
    /// serving layer's root span); with `None` the engine's own sampler
    /// elects 1-in-N queries for a self-contained sampled span. Span
    /// emission is strictly out-of-band: the response bytes are identical
    /// with or without a context — the determinism proptest pins this.
    pub fn run_traced(&self, req: &Request, ctx: Option<&SpanCtx>) -> (Response, QueryTrace) {
        let mut trace = QueryTrace::default();
        let resp = self.run_one_at(&self.snapshot(), req, &mut trace, ctx).0;
        (resp, trace)
    }

    /// The serving view queries run against: one cheap clone of the
    /// epoch's `(epoch, data, artifacts)` triple.
    fn snapshot(&self) -> Snapshot {
        let st = self.state.lock().unwrap();
        Snapshot { epoch: st.log.epoch(), data: st.data.clone(), artifacts: st.artifacts.clone() }
    }

    /// Runs the executor with panic isolation: a panicking route (degenerate
    /// geometry tripping an internal solver assert) becomes an error
    /// *response* for that request instead of killing the whole batch — the
    /// same per-request isolation malformed and refused requests get. The
    /// panic message is itself deterministic for a given input, so the
    /// determinism contract holds for these lines too.
    fn execute_guarded(
        &self,
        snap: &Snapshot,
        req: &Request,
        timed: bool,
    ) -> (Response, Option<ClassifyGuard>, exec::PhaseTimes) {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec::execute_phased(
                &snap.data,
                &snap.artifacts,
                req,
                self.config.effort_budget,
                self.config.eager_l2_regions,
                timed,
            )
        }));
        match outcome {
            Ok(traced) => traced,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "unknown panic".to_string());
                let resp = Response {
                    id: req.id.clone(),
                    route: "error".to_string(),
                    result: Err(format!("internal panic: {msg}")),
                };
                (resp, None, exec::PhaseTimes::default())
            }
        }
    }

    /// Tries to serve `key` from the cache at `snap.epoch`: a same-epoch
    /// entry is a plain hit; an older entry with a guard is revalidated
    /// against the mutation window and promoted on success. Returns the
    /// response body on a hit, plus whether the hit crossed an epoch
    /// (a revalidation rather than a plain hit). A failed guard
    /// revalidation is reported through `trace.guard_failed` — to the
    /// caller it is a miss, but the flight recorder treats it as an
    /// anomaly worth forced capture.
    fn cache_probe(
        &self,
        snap: &Snapshot,
        key: &CacheKey,
        trace: &mut QueryTrace,
    ) -> Option<(CachedResult, bool)> {
        enum Probe {
            Hit(CachedResult),
            Stale(u64, ClassifyGuard, CachedResult),
            Miss,
        }
        let probe = {
            let mut cache = self.cache.lock().unwrap();
            let probe = match cache.lookup(key) {
                Some(e) if e.epoch == snap.epoch => Probe::Hit((e.route.clone(), e.result.clone())),
                Some(e) if e.epoch < snap.epoch && snap.epoch - e.epoch <= REVALIDATE_WINDOW => {
                    match &e.guard {
                        Some(g) => {
                            Probe::Stale(e.epoch, g.clone(), (e.route.clone(), e.result.clone()))
                        }
                        None => Probe::Miss,
                    }
                }
                // Absent, stale beyond the window, or from a *newer* epoch
                // than this batch's snapshot (a mutation raced us): compute.
                _ => Probe::Miss,
            };
            match &probe {
                Probe::Hit(_) => cache.record(true),
                Probe::Miss => cache.record(false),
                Probe::Stale(..) => {} // recorded once revalidation decides
            }
            probe
        };
        match probe {
            Probe::Hit(body) => Some((body, false)),
            Probe::Miss => None,
            Probe::Stale(entry_epoch, guard, body) => {
                // Replay the mutation window (bounded) outside the cache
                // lock. `range` ends at the snapshot epoch, so mutations
                // racing past our snapshot are not replayed; a window that
                // predates the log's compaction base comes back `None` and
                // is a plain miss — replaying a partial window would be
                // unsound.
                let window: Option<Vec<AppliedMutation>> = {
                    let st = self.state.lock().unwrap();
                    st.log.range(entry_epoch, snap.epoch).map(|w| w.to_vec())
                };
                let survives =
                    window.is_some_and(|w| guard.survives(&w, snap.data.continuous.len()));
                let mut cache = self.cache.lock().unwrap();
                cache.record(survives);
                if !survives {
                    self.revalidation_failed.fetch_add(1, Ordering::Relaxed);
                    trace.guard_failed = true;
                    return None;
                }
                if let Some(e) = cache.lookup(key) {
                    if e.epoch == entry_epoch {
                        e.epoch = snap.epoch;
                    }
                }
                self.revalidated.fetch_add(1, Ordering::Relaxed);
                Some((body, true))
            }
        }
    }

    /// Computes a response (no cache involvement), recording plan/solve
    /// phase timings and the artifact build time attributable to this query
    /// when telemetry is enabled. The attribution is a delta of the store's
    /// build-time counter around the call: exact when builds don't race,
    /// approximate when they do.
    fn compute_timed(
        &self,
        snap: &Snapshot,
        req: &Request,
        enabled: bool,
        trace: &mut QueryTrace,
    ) -> (Response, Option<ClassifyGuard>) {
        let build0 = enabled.then(|| snap.artifacts.metrics().build_nanos());
        let w0 = WorkSample::take();
        let (resp, guard, phases) = self.execute_guarded(snap, req, enabled);
        self.record_work(&resp.route, &w0, phases.solve_us);
        trace.demoted = phases.demoted;
        if enabled {
            trace.plan_us = phases.plan_us;
            trace.solve_us = phases.solve_us;
            self.phase_plan.record(phases.plan_us);
            self.phase_solve.record(phases.solve_us);
            if let Some(b0) = build0 {
                let delta_us = snap.artifacts.metrics().build_nanos().saturating_sub(b0) / 1_000;
                trace.artifact_us = delta_us;
                if delta_us > 0 {
                    self.phase_artifact.record(delta_us);
                }
            }
        }
        (resp, guard)
    }

    /// [`run_one_inner`](ExplanationEngine::run_one_inner) plus flight-
    /// recorder span emission. The capture decision is made up front — an
    /// explicit context from the serving layer, or the recorder's own
    /// 1-in-N sampler for context-free callers (batch, bench) — so the
    /// region-counter delta brackets the run. Unelected queries pay one
    /// thread-local counter bump and nothing else.
    fn run_one_at(
        &self,
        snap: &Snapshot,
        req: &Request,
        trace: &mut QueryTrace,
        ctx: Option<&SpanCtx>,
    ) -> (Response, bool) {
        let recorder = self.telemetry.recorder();
        let capture = ctx.is_some() || recorder.sample();
        let regions0 = capture.then(|| snap.artifacts.region_counters().snapshot());
        let (resp, hit) = self.run_one_inner(snap, req, trace);
        if let Some(r0) = regions0 {
            self.emit_spans(snap, trace, ctx, &resp, &r0);
        }
        (resp, hit)
    }

    /// Records this query's span events (see [`ExplanationEngine::run_traced`]).
    /// One clock read per captured query: phase starts are reconstructed
    /// backward from the measured durations (cache → plan → artifact →
    /// solve ran sequentially), an approximation documented in DESIGN §7b.
    fn emit_spans(
        &self,
        snap: &Snapshot,
        trace: &QueryTrace,
        ctx: Option<&SpanCtx>,
        resp: &Response,
        regions0: &knn_core::regions::RegionCountersSnapshot,
    ) {
        let recorder = self.telemetry.recorder();
        let end_us = recorder.now_us();
        let base = SpanEvent {
            trace: ctx.map(|c| c.trace.clone()).unwrap_or_default(),
            tenant: self.tenant.clone(),
            epoch: trace.epoch,
            ..SpanEvent::default()
        };
        let push = |ev: SpanEvent| {
            let forced = !ev.trace.is_empty() || !ev.anomaly.is_empty();
            recorder.push(ev, forced);
        };
        let computed = matches!(trace.cache, "miss" | "uncached");
        let err = resp.result.is_err();
        let Some(ctx) = ctx else {
            // Context-free (sampler-elected): one self-contained span.
            let dur = trace.cache_us + trace.plan_us + trace.artifact_us + trace.solve_us;
            let anomaly = if err {
                "error"
            } else if trace.guard_failed {
                "guard_failed"
            } else if trace.demoted {
                "demoted"
            } else {
                ""
            };
            push(SpanEvent {
                seq: recorder.next_seq(),
                name: "query",
                detail: format!("route={} cache={}", resp.route, trace.cache),
                start_us: end_us.saturating_sub(dur),
                dur_us: dur,
                anomaly,
                ..base
            });
            return;
        };
        // Phase children under the serving layer's root span.
        let total = trace.cache_us
            + if computed { trace.plan_us + trace.artifact_us + trace.solve_us } else { 0 };
        let mut t = end_us.saturating_sub(total);
        if trace.cache != "uncached" {
            push(SpanEvent {
                seq: recorder.next_seq(),
                parent: ctx.parent,
                name: "cache",
                detail: format!("outcome={}", trace.cache),
                start_us: t,
                dur_us: trace.cache_us,
                anomaly: if trace.guard_failed { "guard_failed" } else { "" },
                ..base.clone()
            });
            t += trace.cache_us;
        }
        if computed {
            push(SpanEvent {
                seq: recorder.next_seq(),
                parent: ctx.parent,
                name: "plan",
                detail: format!("route={} demoted={}", resp.route, trace.demoted),
                start_us: t,
                dur_us: trace.plan_us,
                anomaly: if trace.demoted { "demoted" } else { "" },
                ..base.clone()
            });
            t += trace.plan_us;
            if trace.artifact_us > 0 {
                push(SpanEvent {
                    seq: recorder.next_seq(),
                    parent: ctx.parent,
                    name: "artifact",
                    detail: "build".to_string(),
                    start_us: t,
                    dur_us: trace.artifact_us,
                    ..base.clone()
                });
                t += trace.artifact_us;
            }
            let r1 = snap.artifacts.region_counters().snapshot();
            let pruned = (r1.pruned_empty + r1.pruned_dominated + r1.memo_pruned).saturating_sub(
                regions0.pruned_empty + regions0.pruned_dominated + regions0.memo_pruned,
            );
            push(SpanEvent {
                seq: recorder.next_seq(),
                parent: ctx.parent,
                name: "solve",
                detail: format!(
                    "region_yields={} region_pruned={}",
                    r1.yields.saturating_sub(regions0.yields),
                    pruned
                ),
                start_us: t,
                dur_us: trace.solve_us,
                anomaly: if err { "error" } else { "" },
                ..base
            });
        } else if err {
            // A cached error response (possible: errors cache too) still
            // surfaces as an anomaly marker.
            push(SpanEvent {
                seq: recorder.next_seq(),
                parent: ctx.parent,
                name: "solve",
                detail: "cached".to_string(),
                start_us: t,
                dur_us: 0,
                anomaly: "error",
                ..base
            });
        }
    }

    /// `run` plus whether the response came from the cache (directly,
    /// revalidated across epochs, or coalesced onto another worker's
    /// in-flight computation). Fills `trace` with the query's phase
    /// breakdown; tracing is out-of-band and never alters the response.
    ///
    /// The cache-probe phase is timed on a 1-in-[`CACHE_PROBE_SAMPLE`]
    /// basis (see [`sample_cache_probe`]); all other phases run only on
    /// compute paths, where their cost is amortised over the solve, and
    /// are timed on every query.
    fn run_one_inner(
        &self,
        snap: &Snapshot,
        req: &Request,
        trace: &mut QueryTrace,
    ) -> (Response, bool) {
        trace.epoch = snap.epoch;
        let enabled = self.telemetry.is_enabled();
        if self.config.cache_capacity == 0 {
            trace.cache = "uncached";
            return (self.compute_timed(snap, req, enabled, trace).0, false);
        }
        let key = req.cache_key();
        let probe_started = (enabled && sample_cache_probe()).then(Instant::now);
        let probed = self.cache_probe(snap, &key, trace);
        if let Some(t0) = probe_started {
            let us = t0.elapsed().as_micros() as u64;
            trace.cache_us = us;
            self.phase_cache.record(us);
        }
        if let Some(((route, result), revalidated)) = probed {
            trace.cache = if revalidated { "revalidated" } else { "hit" };
            return (Response { id: req.id.clone(), route, result }, true);
        }
        // Cache miss: claim or join the in-flight slot for this key at this
        // epoch. The claimant locks its slot *before* publishing it to the
        // table, so a joiner can never observe an unlocked-but-empty slot
        // and recompute.
        let flight_key = (snap.epoch, key.clone());
        let own_slot = Arc::new(Mutex::new(None));
        let mut own_guard = own_slot.lock().unwrap();
        let joined = match self.inflight.lock().unwrap().entry(flight_key.clone()) {
            Entry::Occupied(e) => Some(e.get().clone()),
            Entry::Vacant(v) => {
                v.insert(own_slot.clone());
                None
            }
        };
        if let Some(theirs) = joined {
            drop(own_guard);
            // Blocks until the computing worker releases the slot. Caching is
            // transparent (responses are pure functions of the request), so
            // this changes cost, never bytes.
            let slot = theirs.lock().unwrap();
            if let Some((route, result)) = slot.as_ref() {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                trace.cache = "coalesced";
                return (
                    Response { id: req.id.clone(), route: route.clone(), result: result.clone() },
                    true,
                );
            }
            // Unreachable unless the computing worker died without
            // publishing; compute independently as a last resort.
            drop(slot);
            trace.cache = "miss";
            return (self.compute_timed(snap, req, enabled, trace).0, false);
        }
        trace.cache = "miss";
        let (resp, guard) = self.compute_timed(snap, req, enabled, trace);
        *own_guard = Some((resp.route.clone(), resp.result.clone()));
        let entry = CachedEntry {
            epoch: snap.epoch,
            route: resp.route.clone(),
            result: resp.result.clone(),
            guard,
        };
        let weight = entry_bytes(&key, &entry);
        self.cache.lock().unwrap().insert_weighted(key, entry, weight);
        drop(own_guard);
        self.inflight.lock().unwrap().remove(&flight_key);
        (resp, false)
    }

    /// Executes a batch concurrently. The returned vector is index-aligned
    /// with `requests`, and its contents are byte-identical for every worker
    /// count and for any permutation of a batch (modulo the matching
    /// permutation of the output).
    pub fn run_batch(&self, requests: &[Request]) -> Vec<Response> {
        self.run_batch_with_stats(requests).0
    }

    /// [`ExplanationEngine::run_batch`] with aggregate statistics.
    pub fn run_batch_with_stats(&self, requests: &[Request]) -> (Vec<Response>, BatchStats) {
        let started = Instant::now();
        let workers = self.effective_workers(requests.len());
        let hits = AtomicUsize::new(0);
        let mut responses: Vec<Option<Response>> = Vec::with_capacity(requests.len());
        responses.resize_with(requests.len(), || None);

        // The mutation/query barrier: one snapshot for the whole batch.
        // Every query in this batch sees the same epoch, so a concurrent
        // `apply` orders entirely before or after the batch and the output
        // stays byte-deterministic.
        let snap = self.snapshot();

        if workers <= 1 {
            for (i, req) in requests.iter().enumerate() {
                let (resp, hit) = self.run_one_at(&snap, req, &mut QueryTrace::default(), None);
                if hit {
                    hits.fetch_add(1, Ordering::Relaxed);
                }
                responses[i] = Some(resp);
            }
        } else {
            let next = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel::<(usize, Response, bool)>();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let next = &next;
                    let snap = &snap;
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= requests.len() {
                            break;
                        }
                        let (resp, hit) =
                            self.run_one_at(snap, &requests[i], &mut QueryTrace::default(), None);
                        if tx.send((i, resp, hit)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                for (i, resp, hit) in rx {
                    if hit {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                    responses[i] = Some(resp);
                }
            });
        }

        let responses: Vec<Response> =
            responses.into_iter().map(|r| r.expect("every index answered")).collect();
        let stats = BatchStats {
            requests: requests.len(),
            cache_hits: hits.load(Ordering::Relaxed),
            errors: responses.iter().filter(|r| r.result.is_err()).count(),
            workers,
            wall: started.elapsed(),
        };
        (responses, stats)
    }

    /// Parses a JSON-lines batch (blank lines skipped; a malformed line
    /// becomes an error *response* in place, so the output stream stays
    /// aligned with the input), runs it, and returns the response lines plus
    /// stats.
    pub fn run_jsonl(&self, input: &str) -> (String, BatchStats) {
        // Requests and parse failures both carry (output slot, 1-based input
        // line number); id-less requests and error lines are identified by
        // the line number, matching the `line N:` prefix of parse errors.
        let mut requests: Vec<(usize, Request)> = Vec::new();
        let mut parse_errors: Vec<(usize, usize, String)> = Vec::new();
        for (lineno, line) in input.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let slot = requests.len() + parse_errors.len();
            match Request::from_json_line(line, &(lineno + 1).to_string()) {
                Ok(r) => requests.push((slot, r)),
                Err(e) => {
                    parse_errors.push((slot, lineno + 1, format!("line {}: {e}", lineno + 1)))
                }
            }
        }
        let reqs: Vec<Request> = requests.iter().map(|(_, r)| r.clone()).collect();
        let (resps, stats) = self.run_batch_with_stats(&reqs);

        let total = requests.len() + parse_errors.len();
        let mut lines: Vec<Option<String>> = vec![None; total];
        for ((slot, _), resp) in requests.iter().zip(&resps) {
            lines[*slot] = Some(resp.to_json_line());
        }
        for (slot, lineno, err) in &parse_errors {
            let resp = Response {
                id: lineno.to_string(),
                route: "error".to_string(),
                result: Err(err.clone()),
            };
            lines[*slot] = Some(resp.to_json_line());
        }
        let mut out = String::new();
        for line in lines.into_iter().flatten() {
            out.push_str(&line);
            out.push('\n');
        }
        let stats =
            BatchStats { requests: total, errors: stats.errors + parse_errors.len(), ..stats };
        (out, stats)
    }

    fn effective_workers(&self, batch_len: usize) -> usize {
        let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let configured = if self.config.workers == 0 { hw } else { self.config.workers };
        configured.clamp(1, batch_len.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_space::ContinuousDataset;

    fn engine(config: EngineConfig) -> ExplanationEngine {
        // 0/1 dataset → both the continuous and the boolean views exist, so
        // every metric is servable.
        let ds = ContinuousDataset::from_sets(
            vec![vec![1.0, 1.0, 1.0], vec![1.0, 1.0, 0.0], vec![1.0, 0.0, 1.0]],
            vec![vec![0.0, 0.0, 0.0], vec![0.0, 0.0, 1.0], vec![0.0, 1.0, 0.0]],
        );
        ExplanationEngine::new(EngineData::from_continuous(ds), config)
    }

    fn req(line: &str) -> Request {
        Request::from_json_line(line, "0").unwrap()
    }

    #[test]
    fn classify_matches_reference_classifier() {
        let e = engine(EngineConfig::default());
        let data = e.data();
        for (metric, point) in
            [("l2", "[0.9,0.2,0.4]"), ("l1", "[0.1,0.9,0.2]"), ("hamming", "[1,0,0]")]
        {
            for k in [1u32, 3] {
                let r = req(&format!(
                    r#"{{"cmd":"classify","metric":"{metric}","k":{k},"point":{point}}}"#
                ));
                let resp = e.run(&r);
                let Ok(Outcome::Label(fast)) = resp.result else {
                    panic!("classify failed: {resp:?}")
                };
                // Reference: the O(n·d) scan classifier.
                let expected = match r.metric {
                    Metric::Hamming => {
                        let ds = data.boolean.as_ref().unwrap();
                        let bx = knn_space::BitVec::from_bools(
                            &r.point.iter().map(|&v| v == 1.0).collect::<Vec<_>>(),
                        );
                        knn_core::BooleanKnn::new(ds, knn_space::OddK::of(k)).classify(&bx)
                    }
                    m => {
                        let p = m.lp_exponent().unwrap();
                        knn_core::ContinuousKnn::new(
                            &data.continuous,
                            knn_space::LpMetric::new(p),
                            knn_space::OddK::of(k),
                        )
                        .classify(&r.point)
                    }
                };
                assert_eq!(fast, expected, "metric {metric} k {k}");
            }
        }
    }

    #[test]
    fn cache_serves_identical_bytes() {
        let e = engine(EngineConfig::default());
        let r = req(r#"{"id":"x","cmd":"counterfactual","metric":"hamming","point":[1,0,0]}"#);
        let snap = e.snapshot();
        let mut t1 = QueryTrace::default();
        let mut t2 = QueryTrace::default();
        let (first, hit1) = e.run_one_at(&snap, &r, &mut t1, None);
        let (second, hit2) = e.run_one_at(&snap, &r, &mut t2, None);
        assert!(!hit1);
        assert!(hit2, "second identical query must hit the cache");
        assert_eq!(first.to_json_line(), second.to_json_line());
    }

    #[test]
    fn batch_output_is_order_preserving_and_id_stable() {
        let e = engine(EngineConfig { workers: 4, ..EngineConfig::default() });
        let reqs: Vec<Request> = (0..40)
            .map(|i| {
                req(&format!(
                    r#"{{"id":"q{i}","cmd":"classify","metric":"l2","point":[{},0.5,0.25]}}"#,
                    (i as f64) / 7.0 - 2.0
                ))
            })
            .collect();
        let resps = e.run_batch(&reqs);
        assert_eq!(resps.len(), 40);
        for (i, r) in resps.iter().enumerate() {
            assert_eq!(r.id, format!("q{i}"), "output stays index-aligned");
        }
    }

    #[test]
    fn jsonl_stream_keeps_malformed_lines_aligned() {
        let e = engine(EngineConfig::default());
        let input = "\n{\"cmd\":\"classify\",\"point\":[1,1,1]}\nnot json\n{\"cmd\":\"fly\",\"point\":[1,1,1]}\n";
        let (out, stats) = e.run_jsonl(input);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"ok\":true"), "{}", lines[0]);
        assert!(lines[1].contains("\"ok\":false"), "{}", lines[1]);
        assert!(lines[2].contains("unknown cmd"), "{}", lines[2]);
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.errors, 2);
    }

    #[test]
    fn executor_panics_become_error_responses() {
        // A deliberately inconsistent EngineData (boolean view of a different
        // dimension) makes the Hamming route panic inside knn-core; the
        // engine must convert that into an error response for the one
        // request and keep serving the rest of the batch.
        let continuous = ContinuousDataset::from_sets(vec![vec![1.0, 1.0]], vec![vec![0.0, 0.0]]);
        let mut boolean = knn_space::BooleanDataset::new(3);
        boolean.push(knn_space::BitVec::from_bits(&[1, 1, 1]), knn_space::Label::Positive);
        boolean.push(knn_space::BitVec::from_bits(&[0, 0, 0]), knn_space::Label::Negative);
        let e = ExplanationEngine::new(
            EngineData::new(continuous, Some(boolean)),
            EngineConfig { workers: 2, ..EngineConfig::default() },
        );
        let batch = [
            req(r#"{"id":"bad","cmd":"classify","metric":"hamming","point":[1,0]}"#),
            req(r#"{"id":"good","cmd":"classify","metric":"l2","point":[1.0,0.0]}"#),
        ];
        let resps = e.run_batch(&batch);
        let err = resps[0].result.as_ref().unwrap_err();
        assert!(err.contains("internal panic"), "{err}");
        assert!(resps[1].result.is_ok(), "other requests keep being served");
    }

    #[test]
    fn budget_demotes_and_flags() {
        let exact = engine(EngineConfig::default());
        let budgeted =
            engine(EngineConfig { effort_budget: Some(1_000_000), ..EngineConfig::default() });
        let r = req(r#"{"cmd":"minimum-sr","metric":"hamming","k":3,"point":[1,0,0]}"#);
        let Ok(Outcome::Reason { features: exact_sr, optimal: true }) = exact.run(&r).result else {
            panic!("exact run failed")
        };
        let Ok(Outcome::Reason { features: greedy_sr, optimal: false }) = budgeted.run(&r).result
        else {
            panic!("budgeted run must flag optimal=false")
        };
        assert!(greedy_sr.len() >= exact_sr.len(), "greedy upper-bounds the minimum");
    }

    /// The differential contract in miniature: after every mutation, every
    /// query answers byte-identically to a fresh engine loaded from the
    /// mutated engine's serialized dataset. (The full property lives in
    /// `tests/prop_mutation.rs`.)
    #[test]
    fn mutated_engine_matches_fresh_load_oracle() {
        let e = engine(EngineConfig::default());
        let queries: Vec<Request> = ["l2", "l1", "hamming"]
            .iter()
            .flat_map(|metric| {
                [("classify", 1u32), ("classify", 3), ("minimal-sr", 1), ("counterfactual", 1)]
                    .iter()
                    .map(|(cmd, k)| {
                        req(&format!(
                            r#"{{"id":"{cmd}-{metric}-{k}","cmd":"{cmd}","metric":"{metric}","k":{k},"point":[1,0,0]}}"#
                        ))
                    })
                    .collect::<Vec<_>>()
            })
            .collect();

        use knn_space::Label;
        let mutations = [
            Mutation::Insert { point: vec![1.0, 0.0, 0.0], label: Label::Positive },
            Mutation::Remove { id: 0 },
            Mutation::Insert { point: vec![0.0, 1.0, 1.0], label: Label::Negative },
            Mutation::Remove { id: 4 },
        ];
        for (step, m) in mutations.into_iter().enumerate() {
            let receipt = e.apply(m).unwrap();
            assert_eq!(receipt.epoch, step as u64 + 1);
            let oracle = ExplanationEngine::new(
                textfmt::parse_dataset(&e.dataset_text()).unwrap(),
                EngineConfig::default(),
            );
            for q in &queries {
                assert_eq!(
                    e.run(q).to_json_line(),
                    oracle.run(q).to_json_line(),
                    "step {step} id {}",
                    q.id
                );
            }
        }
        let s = e.stats();
        assert_eq!((s.epoch, s.inserts, s.removes), (4, 2, 2));
    }

    /// Selective invalidation: mutating one class never rebuilds the other
    /// class's neighbor indexes — pinned via the `artifacts_built` counter.
    #[test]
    fn mutation_invalidates_only_the_touched_class_indexes() {
        // Cache off: a revalidated classify hit would (correctly) dodge the
        // index rebuild this test wants to observe.
        let e = engine(EngineConfig { cache_capacity: 0, ..EngineConfig::default() });
        e.run(&req(r#"{"cmd":"classify","metric":"l2","point":[0.9,0.2,0.4]}"#));
        e.run(&req(r#"{"cmd":"classify","metric":"hamming","point":[1,0,0]}"#));
        assert_eq!(e.stats().artifacts_built, 4, "both classes' KD + Hamming indexes warm");

        e.apply(Mutation::Insert { point: vec![1.0, 1.0, 1.0], label: knn_space::Label::Positive })
            .unwrap();
        assert_eq!(
            e.stats().artifacts_built,
            2,
            "the negative class's indexes survive the positive-class insert"
        );
        e.run(&req(r#"{"cmd":"classify","metric":"l2","point":[0.9,0.2,0.4]}"#));
        e.run(&req(r#"{"cmd":"classify","metric":"hamming","point":[1,0,0]}"#));
        assert_eq!(e.stats().artifacts_built, 4, "only the positive-class indexes rebuilt");
    }

    /// Guarded classify entries cross benign epochs as cache hits; entries
    /// whose statistics a mutation could have moved recompute.
    #[test]
    fn classify_cache_revalidates_across_benign_mutations() {
        use knn_space::Label;
        let ds = ContinuousDataset::from_sets(
            vec![vec![5.0, 5.0, 5.0], vec![5.0, 5.0, 4.0]],
            vec![vec![0.0, 0.0, 0.0], vec![0.0, 0.0, 1.0]],
        );
        let e = ExplanationEngine::new(EngineData::from_continuous(ds), EngineConfig::default());
        let far = req(r#"{"id":"far","cmd":"classify","metric":"l2","point":[5,5,6]}"#);
        let near = req(r#"{"id":"near","cmd":"classify","metric":"l2","point":[0,1,0]}"#);
        let (far_cold, near_cold) = (e.run(&far), e.run(&near));
        assert_eq!(e.stats().cache.misses, 2);

        // A negative insert right on top of `near`: provably irrelevant to
        // `far` (distance ≥ its negative-class statistic), fatal to `near`.
        e.apply(Mutation::Insert { point: vec![0.0, 1.0, 0.0], label: Label::Negative }).unwrap();

        let far_warm = e.run(&far);
        assert_eq!(far_warm.to_json_line(), far_cold.to_json_line());
        let s = e.stats();
        assert_eq!(s.revalidated, 1, "far entry promoted across the epoch, not recomputed");
        assert_eq!(s.cache.hits, 1);

        let near_warm = e.run(&near);
        let s = e.stats();
        assert_eq!(s.revalidated, 1, "near entry must not revalidate");
        assert_eq!(s.cache.misses, 3, "near re-misses at the new epoch");
        // Both answers still match the fresh-load oracle.
        let oracle = ExplanationEngine::new(
            textfmt::parse_dataset(&e.dataset_text()).unwrap(),
            EngineConfig::default(),
        );
        assert_eq!(near_warm.to_json_line(), oracle.run(&near).to_json_line());
        assert_eq!(far_warm.to_json_line(), oracle.run(&far).to_json_line());
        let _ = near_cold;
    }

    /// Invalid mutations are rejected atomically: no epoch bump, no
    /// invalidation.
    #[test]
    fn invalid_mutations_leave_the_engine_untouched() {
        use knn_space::Label;
        let e = engine(EngineConfig::default());
        assert!(e.apply(Mutation::Insert { point: vec![1.0], label: Label::Positive }).is_err());
        assert!(e.apply(Mutation::Remove { id: 99 }).is_err());
        assert_eq!(e.epoch(), 0);
        let s = e.stats();
        assert_eq!((s.inserts, s.removes), (0, 0));
    }

    /// A fill at the current epoch serves later queries byte-identically to
    /// a local compute; a fill for a stale epoch is dropped; a fill never
    /// overwrites an entry the engine already holds at that epoch.
    #[test]
    fn external_fill_is_epoch_checked_and_never_clobbers() {
        let computing = engine(EngineConfig::default());
        let receiving = engine(EngineConfig::default());
        let r = req(r#"{"id":"x","cmd":"counterfactual","metric":"hamming","point":[1,0,0]}"#);
        let computed = computing.run(&r);

        assert!(receiving.insert_external(0, &r, computed.route.clone(), computed.result.clone()));
        let served = receiving.run(&r);
        assert_eq!(served.to_json_line(), computed.to_json_line());
        let s = receiving.stats();
        assert_eq!((s.filled, s.cache.hits, s.cache.misses), (1, 1, 0), "fill then pure hit");

        // Stale epoch: the receiving engine moves to epoch 1; a fill still
        // labeled epoch 0 must be dropped, and the key recomputes.
        receiving
            .apply(Mutation::Insert {
                point: vec![1.0, 1.0, 0.0],
                label: knn_space::Label::Positive,
            })
            .unwrap();
        let q2 = req(r#"{"id":"y","cmd":"classify","metric":"l2","point":[0.2,0.2,0.9]}"#);
        assert!(
            !receiving.insert_external(0, &q2, "kdtree".into(), computed.result.clone()),
            "stale-epoch fill must be dropped"
        );
        assert_eq!(receiving.stats().filled, 1);

        // Never clobber: compute locally at epoch 1, then push a garbage
        // fill for the same key at the same epoch — the local entry wins.
        let local = receiving.run(&q2);
        assert!(!receiving.insert_external(1, &q2, "error".into(), Err("poison".into())));
        assert_eq!(receiving.run(&q2).to_json_line(), local.to_json_line());
    }

    /// The resource gauges and per-route work counters populate as the
    /// engine serves, and cache hits never count as computes.
    #[test]
    fn resource_and_work_accounting_populate() {
        let e = engine(EngineConfig::default());
        let s0 = e.stats().resources;
        assert!(s0.dataset_bytes > 0, "dataset bytes report before any query");
        assert_eq!(s0.cache_bytes, 0);
        assert!(e.work_stats().is_empty());

        let r = req(r#"{"cmd":"counterfactual","metric":"l2","point":[0.4,0.6,0.5]}"#);
        assert!(e.run(&r).result.is_ok());
        assert!(e.run(&r).result.is_ok()); // cache hit: no second compute

        let s = e.stats().resources;
        assert!(s.cache_bytes > 0, "cached entry weighs in");
        assert!(s.artifact_bytes > 0, "built KD artifacts weigh in");
        assert!(s.total_bytes() >= s.dataset_bytes + s.cache_bytes);
        let work = e.work_stats();
        assert_eq!(work.len(), 1, "one route exercised: {work:?}");
        assert_eq!(work[0].computes, 1, "the hit must not re-count");
        let solver_work =
            work[0].lp_solves + work[0].qp_solves + work[0].kd_visits + work[0].region_yields;
        assert!(solver_work > 0, "a counterfactual does solver-layer work: {work:?}");
    }
}
