//! The query planner: Table 1 of the paper, as a routing function.
//!
//! Every `(query kind, metric, k)` cell of Table 1 is either polynomial,
//! NP-hard-but-solvable (SAT / MILP / implicit hitting set), Σ₂ᵖ-complete, or
//! open. The planner maps each request onto the concrete algorithm the
//! workspace implements for that cell, refuses combinations with no sound
//! engine (mirroring the CLI's stance: surface the tractability boundary, do
//! not silently approximate), and — when the engine is configured with a
//! deterministic effort budget — swaps the exponential-tail routes for their
//! anytime/greedy counterparts, flagging the response as unproven.
//!
//! Budgets are expressed in *logical* units (CDCL conflicts for the SAT
//! paths, greedy relaxation of the hitting-set loop) rather than wall-clock
//! time: the batch engine guarantees byte-identical output for any worker
//! count and schedule, and a wall-clock cutoff would make results depend on
//! machine load.

use crate::request::{Metric, QueryKind, Request};

/// A concrete algorithm choice for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// Optimistic label via the per-class Hamming indexes.
    ClassifyHamming,
    /// Optimistic label via the per-class KD-trees (any ℓp).
    ClassifyContinuous,
    /// Check-SR(ℝ, ℓ2): LP feasibility over the lazily-enumerated Prop 1
    /// regions (nearest-anchor-first, pruned, memoized per visit).
    L2Check,
    /// Minimal-SR(ℝ, ℓ2): greedy deletion over LP checks (Cor 1).
    L2Minimal,
    /// Minimum-SR(ℝ, ℓ2): implicit hitting set (exact or greedy).
    L2Minimum,
    /// ℓ2 counterfactual: projection QPs over the lazily-enumerated regions
    /// (Thm 2).
    L2Cf,
    /// Check-SR(ℝ, ℓ1), k = 1: witness substitution (Prop 4).
    L1Check,
    /// Minimal-SR(ℝ, ℓ1), k = 1 (Cor 3).
    L1Minimal,
    /// Minimum-SR(ℝ, ℓ1), k = 1: implicit hitting set.
    L1Minimum,
    /// ℓ1 counterfactual, k = 1: exact MILP (Thm 4).
    L1CfMilp,
    /// Check-SR({0,1}, Hamming), k = 1: projected witness (Prop 6).
    HammingCheckK1,
    /// Check-SR({0,1}, Hamming), k ≥ 3: SAT counterexample search (Thm 7).
    HammingCheckSat,
    /// Minimal-SR({0,1}, Hamming): greedy deletion over the per-k checker.
    HammingMinimal,
    /// Minimum-SR({0,1}, Hamming): implicit hitting set (Thm 1 / Thm 8).
    HammingMinimum,
    /// Hamming counterfactual: guarded-cardinality SAT (§9.2), optionally
    /// conflict-budgeted (anytime).
    HammingCf,
    /// ℓp counterfactual heuristic (upper bound; complexity open, §10).
    LpHeuristicCf,
}

/// The paper's complexity classification of the routed cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Complexity {
    /// Polynomial (for fixed k).
    Poly,
    /// NP-complete / NP-hard but exactly solvable by the routed engine.
    NpHard,
    /// Σ₂ᵖ-complete (minimum-SR in the discrete setting, Thm 8).
    Sigma2p,
    /// Open problem (§10); heuristic answer only.
    Open,
}

/// The planner's decision for one request.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    /// The algorithm to run.
    pub route: Route,
    /// Wire tag identifying the route in responses (stable, documented).
    pub tag: &'static str,
    /// Table 1 classification of this cell.
    pub complexity: Complexity,
    /// True when an effort budget demoted an exact route to an anytime or
    /// greedy variant (the response will carry `optimal`/`proven` = false
    /// whenever the heuristic could not close the gap).
    pub budgeted: bool,
}

/// Routes one request per Table 1. `budgeted` reflects the engine-level
/// effort budget. Returns `Err` for cells the workspace has no sound engine
/// for (ℓ1 with k ≥ 3, ℓp abductive queries) and for invalid `k`.
pub fn plan(req: &Request, budgeted: bool) -> Result<Plan, String> {
    if req.k.is_multiple_of(2) || req.k == 0 {
        return Err(format!("k must be odd, got {}", req.k));
    }
    let k1 = req.k == 1;
    let mk = |route, tag, complexity, budgeted| Ok(Plan { route, tag, complexity, budgeted });
    match (req.kind, req.metric) {
        (QueryKind::Classify, Metric::Hamming) => {
            mk(Route::ClassifyHamming, "hamming-index", Complexity::Poly, false)
        }
        (QueryKind::Classify, _) => {
            mk(Route::ClassifyContinuous, "kdtree-class-index", Complexity::Poly, false)
        }

        // The ℓ2 region cells are polynomial for every fixed k and are never
        // demoted to the effort-budget tail: the lazy Prop 1 enumerator
        // serves k ≥ 5 exactly, where the old eager materialization was the
        // de-facto size limit (`O(n^k)` memory before the first answer).
        (QueryKind::CheckSr, Metric::L2) => {
            mk(Route::L2Check, "l2-lp-regions", Complexity::Poly, false)
        }
        (QueryKind::CheckSr, Metric::L1) if k1 => {
            mk(Route::L1Check, "l1-witness", Complexity::Poly, false)
        }
        (QueryKind::CheckSr, Metric::L1) => Err(
            "check-sr under ℓ1 with k ≥ 3 is coNP-complete (Thm 5) and has no exact engine here"
                .into(),
        ),
        (QueryKind::CheckSr, Metric::Hamming) if k1 => {
            mk(Route::HammingCheckK1, "hamming-witness-k1", Complexity::Poly, false)
        }
        (QueryKind::CheckSr, Metric::Hamming) => {
            mk(Route::HammingCheckSat, "hamming-sat-check", Complexity::NpHard, false)
        }

        (QueryKind::MinimalSr, Metric::L2) => {
            mk(Route::L2Minimal, "l2-greedy-deletion", Complexity::Poly, false)
        }
        (QueryKind::MinimalSr, Metric::L1) if k1 => {
            mk(Route::L1Minimal, "l1-greedy-deletion", Complexity::Poly, false)
        }
        (QueryKind::MinimalSr, Metric::L1) => Err(
            "minimal-sr under ℓ1 requires k = 1 (its checker is coNP-complete for k ≥ 3, Thm 5)"
                .into(),
        ),
        (QueryKind::MinimalSr, Metric::Hamming) => mk(
            Route::HammingMinimal,
            if k1 { "hamming-greedy-deletion" } else { "hamming-greedy-deletion-sat" },
            if k1 { Complexity::Poly } else { Complexity::NpHard },
            false,
        ),

        (QueryKind::MinimumSr, Metric::L2) => mk(
            Route::L2Minimum,
            if budgeted { "l2-ihs-greedy" } else { "l2-ihs-exact" },
            Complexity::NpHard,
            budgeted,
        ),
        (QueryKind::MinimumSr, Metric::L1) if k1 => mk(
            Route::L1Minimum,
            if budgeted { "l1-ihs-greedy" } else { "l1-ihs-exact" },
            Complexity::NpHard,
            budgeted,
        ),
        (QueryKind::MinimumSr, Metric::L1) => {
            Err("minimum-sr under ℓ1 requires k = 1 (Thm 5)".into())
        }
        (QueryKind::MinimumSr, Metric::Hamming) => mk(
            Route::HammingMinimum,
            if budgeted { "hamming-ihs-greedy" } else { "hamming-ihs-exact" },
            if k1 { Complexity::NpHard } else { Complexity::Sigma2p },
            budgeted,
        ),

        (QueryKind::Counterfactual, Metric::L2) => {
            mk(Route::L2Cf, "l2-qp-regions", Complexity::Poly, false)
        }
        (QueryKind::Counterfactual, Metric::L1) if k1 => {
            if budgeted {
                // The exact MILP (Thm 4: NP-complete even for singleton
                // classes) has no anytime mode; under a budget, serve the
                // ℓp heuristic's valid-but-unproven witness instead.
                mk(Route::LpHeuristicCf, "l1-heuristic-budgeted", Complexity::NpHard, true)
            } else {
                mk(Route::L1CfMilp, "l1-milp", Complexity::NpHard, false)
            }
        }
        (QueryKind::Counterfactual, Metric::L1) => {
            // No exact model for k ≥ 3; the ℓp heuristic still yields a valid
            // (unproven) counterfactual.
            mk(Route::LpHeuristicCf, "lp-heuristic", Complexity::Open, false)
        }
        (QueryKind::Counterfactual, Metric::Lp(_)) => {
            mk(Route::LpHeuristicCf, "lp-heuristic", Complexity::Open, false)
        }
        (QueryKind::Counterfactual, Metric::Hamming) => mk(
            Route::HammingCf,
            if budgeted { "hamming-sat-budgeted" } else { "hamming-sat" },
            Complexity::NpHard,
            budgeted,
        ),

        (kind, Metric::Lp(p)) => {
            Err(format!("{} under ℓ{p} is not implemented (complexity open, §10)", kind.name()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(kind: QueryKind, metric: Metric, k: u32) -> Request {
        Request { id: "t".into(), kind, metric, k, point: vec![0.0], features: None }
    }

    #[test]
    fn polynomial_cells_route_exact() {
        let p = plan(&req(QueryKind::CheckSr, Metric::L2, 5), true).unwrap();
        assert_eq!(p.route, Route::L2Check);
        assert_eq!(p.complexity, Complexity::Poly);
        assert!(!p.budgeted, "poly routes ignore the budget");
    }

    #[test]
    fn table1_boundaries_refused() {
        assert!(plan(&req(QueryKind::CheckSr, Metric::L1, 3), false).is_err());
        assert!(plan(&req(QueryKind::MinimalSr, Metric::L1, 5), false).is_err());
        assert!(plan(&req(QueryKind::MinimumSr, Metric::L1, 3), false).is_err());
        assert!(plan(&req(QueryKind::CheckSr, Metric::Lp(3), 1), false).is_err());
        assert!(plan(&req(QueryKind::Classify, Metric::L2, 2), false).is_err(), "even k");
        assert!(plan(&req(QueryKind::Classify, Metric::L2, 0), false).is_err());
    }

    #[test]
    fn budget_demotes_hard_tails() {
        let exact = plan(&req(QueryKind::MinimumSr, Metric::Hamming, 3), false).unwrap();
        assert_eq!(exact.tag, "hamming-ihs-exact");
        assert_eq!(exact.complexity, Complexity::Sigma2p);
        let budgeted = plan(&req(QueryKind::MinimumSr, Metric::Hamming, 3), true).unwrap();
        assert_eq!(budgeted.tag, "hamming-ihs-greedy");
        assert!(budgeted.budgeted);

        let cf = plan(&req(QueryKind::Counterfactual, Metric::Hamming, 1), true).unwrap();
        assert_eq!(cf.tag, "hamming-sat-budgeted");

        let l1cf = plan(&req(QueryKind::Counterfactual, Metric::L1, 1), true).unwrap();
        assert_eq!(l1cf.route, Route::LpHeuristicCf);
        assert!(l1cf.budgeted);
        let l1cf_exact = plan(&req(QueryKind::Counterfactual, Metric::L1, 1), false).unwrap();
        assert_eq!(l1cf_exact.route, Route::L1CfMilp);
    }

    #[test]
    fn heuristic_cells_marked_open() {
        let p = plan(&req(QueryKind::Counterfactual, Metric::Lp(4), 3), false).unwrap();
        assert_eq!(p.route, Route::LpHeuristicCf);
        assert_eq!(p.complexity, Complexity::Open);
        let p = plan(&req(QueryKind::Counterfactual, Metric::L1, 3), false).unwrap();
        assert_eq!(p.route, Route::LpHeuristicCf);
    }
}
