//! The engine's wire format: one JSON object per request / response line.
//!
//! ```text
//! {"id":"q1","cmd":"counterfactual","metric":"l2","k":1,"point":[1.5,1.0]}
//! {"id":"q2","cmd":"check-sr","metric":"hamming","k":3,"point":[1,0,1],"features":[0,2]}
//! ```
//!
//! `cmd` is one of `classify`, `minimal-sr`, `minimum-sr`, `check-sr`,
//! `counterfactual`; `metric` is `l2` (default), `l1`, `lp:<p>`, or
//! `hamming`; `k` defaults to 1. Responses echo the request `id` and are
//! byte-deterministic: the same request against the same engine always
//! produces the same line, regardless of worker count, batch order, or cache
//! state.

use crate::json::Value;
use knn_space::Label;

/// The five explanation queries of the paper's Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// The optimistic k-NN label (§2).
    Classify,
    /// A (subset-)minimal sufficient reason (Prop 2).
    MinimalSr,
    /// A minimum-cardinality sufficient reason (NP-hard / Σ₂ᵖ).
    MinimumSr,
    /// Is the given feature set a sufficient reason?
    CheckSr,
    /// The closest differently-classified point.
    Counterfactual,
}

impl QueryKind {
    /// The wire name (`classify`, `minimal-sr`, ...).
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Classify => "classify",
            QueryKind::MinimalSr => "minimal-sr",
            QueryKind::MinimumSr => "minimum-sr",
            QueryKind::CheckSr => "check-sr",
            QueryKind::Counterfactual => "counterfactual",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Result<QueryKind, String> {
        match s {
            "classify" => Ok(QueryKind::Classify),
            "minimal-sr" => Ok(QueryKind::MinimalSr),
            "minimum-sr" => Ok(QueryKind::MinimumSr),
            "check-sr" => Ok(QueryKind::CheckSr),
            "counterfactual" => Ok(QueryKind::Counterfactual),
            other => Err(format!(
                "unknown cmd `{other}` (try classify, minimal-sr, minimum-sr, check-sr, counterfactual)"
            )),
        }
    }
}

/// The metric of a request, normalized (`lp:1` ≡ `l1`, `lp:2` ≡ `l2`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Continuous ℓ2.
    L2,
    /// Continuous ℓ1.
    L1,
    /// Continuous ℓp for `p ≥ 3`.
    Lp(u32),
    /// Discrete Hamming over `{0,1}ⁿ`.
    Hamming,
}

impl Metric {
    /// Parses `l2`, `l1`, `hamming`/`h`, or `lp:<p>` (normalizing p = 1, 2).
    pub fn parse(s: &str) -> Result<Metric, String> {
        match s {
            "l2" => Ok(Metric::L2),
            "l1" => Ok(Metric::L1),
            "hamming" | "h" => Ok(Metric::Hamming),
            other => {
                let p: u32 =
                    other.strip_prefix("lp:").and_then(|p| p.parse().ok()).ok_or_else(|| {
                        format!("unknown metric `{other}` (try l2, l1, lp:<p>, hamming)")
                    })?;
                match p {
                    0 => Err("ℓp exponent must be positive".into()),
                    1 => Ok(Metric::L1),
                    2 => Ok(Metric::L2),
                    p => Ok(Metric::Lp(p)),
                }
            }
        }
    }

    /// The wire name.
    pub fn name(self) -> String {
        match self {
            Metric::L2 => "l2".into(),
            Metric::L1 => "l1".into(),
            Metric::Lp(p) => format!("lp:{p}"),
            Metric::Hamming => "hamming".into(),
        }
    }

    /// The ℓp exponent for the continuous metrics; `None` for Hamming.
    pub fn lp_exponent(self) -> Option<u32> {
        match self {
            Metric::L1 => Some(1),
            Metric::L2 => Some(2),
            Metric::Lp(p) => Some(p),
            Metric::Hamming => None,
        }
    }
}

/// One explanation query.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Caller-chosen identifier, echoed in the response (defaults to the
    /// 1-based input line number when absent in a JSON-lines batch, matching
    /// the `line N:` prefix of parse errors).
    pub id: String,
    /// Which query to run.
    pub kind: QueryKind,
    /// Which metric space to run it in.
    pub metric: Metric,
    /// Neighborhood size (odd).
    pub k: u32,
    /// The query point.
    pub point: Vec<f64>,
    /// Feature indices for `check-sr`.
    pub features: Option<Vec<usize>>,
}

impl Request {
    /// Parses one JSON-lines request. `default_id` is used when the object
    /// carries no `"id"` member.
    pub fn from_json_line(line: &str, default_id: &str) -> Result<Request, String> {
        Self::from_json_bytes(line.as_bytes(), default_id)
    }

    /// [`Request::from_json_line`] over raw bytes. Total over *any* byte
    /// input (network peers control every byte): malformed JSON, invalid
    /// UTF-8, or bad payloads all come back as `Err`, never a panic.
    pub fn from_json_bytes(line: &[u8], default_id: &str) -> Result<Request, String> {
        Self::from_value(&crate::json::parse_bytes(line)?, default_id)
    }

    /// Builds a request from an already-parsed JSON [`Value`] (used by the
    /// network server, whose envelope carries extra members like `dataset`).
    pub fn from_value(v: &Value, default_id: &str) -> Result<Request, String> {
        if !matches!(v, Value::Object(_)) {
            return Err("request must be a JSON object".into());
        }
        let id = match v.get("id") {
            None => default_id.to_string(),
            Some(Value::String(s)) => s.clone(),
            Some(Value::Number(n)) => Value::Number(*n).to_json(),
            Some(_) => return Err("`id` must be a string or number".into()),
        };
        let kind =
            QueryKind::parse(v.get("cmd").and_then(Value::as_str).ok_or("missing `cmd` member")?)?;
        let metric = match v.get("metric") {
            None => Metric::L2,
            Some(m) => Metric::parse(m.as_str().ok_or("`metric` must be a string")?)?,
        };
        let k = match v.get("k") {
            None => 1,
            Some(kv) => {
                let k64 = kv.as_u64().ok_or("`k` must be a non-negative integer")?;
                u32::try_from(k64).map_err(|_| format!("`k` = {k64} is out of range"))?
            }
        };
        let point = v
            .get("point")
            .and_then(Value::as_array)
            .ok_or("missing `point` array")?
            .iter()
            .map(|x| x.as_f64().ok_or_else(|| "`point` must contain numbers".to_string()))
            .collect::<Result<Vec<f64>, String>>()?;
        if point.is_empty() {
            return Err("`point` must not be empty".into());
        }
        let features = match v.get("features") {
            None => None,
            Some(f) => {
                let mut idx = f
                    .as_array()
                    .ok_or("`features` must be an array")?
                    .iter()
                    .map(|x| {
                        x.as_u64().map(|u| u as usize).ok_or_else(|| {
                            "`features` must contain non-negative integers".to_string()
                        })
                    })
                    .collect::<Result<Vec<usize>, String>>()?;
                idx.sort_unstable();
                idx.dedup();
                Some(idx)
            }
        };
        Ok(Request { id, kind, metric, k, point, features })
    }

    /// Serializes back to a JSON line (used by generators and tests).
    pub fn to_json_line(&self) -> String {
        let mut members = vec![
            ("id".to_string(), Value::String(self.id.clone())),
            ("cmd".to_string(), Value::String(self.kind.name().to_string())),
            ("metric".to_string(), Value::String(self.metric.name())),
            ("k".to_string(), Value::Number(self.k as f64)),
            (
                "point".to_string(),
                Value::Array(self.point.iter().map(|&x| Value::Number(x)).collect()),
            ),
        ];
        if let Some(f) = &self.features {
            members.push((
                "features".to_string(),
                Value::Array(f.iter().map(|&i| Value::Number(i as f64)).collect()),
            ));
        }
        Value::Object(members).to_json()
    }

    /// The canonical cache key: everything that determines the answer, with
    /// the point's bits (not its printed form) to avoid `-0.0`/rounding
    /// aliasing. Excludes `id`.
    pub fn cache_key(&self) -> CacheKey {
        CacheKey {
            kind: self.kind,
            metric: self.metric,
            k: self.k,
            point_bits: self.point.iter().map(|x| x.to_bits()).collect(),
            features: self.features.clone(),
        }
    }
}

/// See [`Request::cache_key`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    kind: QueryKind,
    metric: Metric,
    k: u32,
    point_bits: Vec<u64>,
    features: Option<Vec<usize>>,
}

impl CacheKey {
    /// Estimated heap bytes of this key — the key side of the explanation
    /// cache's byte gauge.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.point_bits.len() * std::mem::size_of::<u64>()
            + self.features.as_ref().map_or(0, |f| f.len() * std::mem::size_of::<usize>())
    }
}

/// The meat of a successful response.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// `classify`.
    Label(Label),
    /// `minimal-sr` / `minimum-sr`; `optimal` is false when a budgeted plan
    /// fell back to the greedy hitting-set heuristic.
    Reason {
        /// The feature indices, ascending.
        features: Vec<usize>,
        /// Whether the reason is a proven minimum (`minimum-sr` only; always
        /// true for `minimal-sr`, whose guarantee is subset-minimality).
        optimal: bool,
    },
    /// `check-sr`.
    Check {
        /// Whether the feature set pins the label.
        sufficient: bool,
        /// Counterexample completion when not sufficient.
        witness: Option<Vec<f64>>,
    },
    /// `counterfactual`.
    Counterfactual {
        /// The differently-classified point.
        point: Vec<f64>,
        /// The optimal (infimum) counterfactual distance under the request
        /// metric. When the infimum is not attained (ℓ2 with an open target
        /// region, Thm 2), `point` is a witness *just past* it, so
        /// `d(point, x)` can exceed `dist` by the closure slack (~1e-3 of
        /// the distance); for heuristic routes `dist` is `d(point, x)`.
        dist: f64,
        /// Whether the distance is proven optimal.
        proven: bool,
    },
    /// `counterfactual` when the opposite class region is empty.
    NoCounterfactual,
}

impl Outcome {
    /// Estimated heap bytes of the payload — the value side of the
    /// explanation cache's byte gauge.
    pub fn approx_bytes(&self) -> usize {
        let heap = match self {
            Outcome::Label(_) | Outcome::NoCounterfactual => 0,
            Outcome::Reason { features, .. } => features.len() * std::mem::size_of::<usize>(),
            Outcome::Check { witness, .. } => {
                witness.as_ref().map_or(0, |w| w.len() * std::mem::size_of::<f64>())
            }
            Outcome::Counterfactual { point, .. } => point.len() * std::mem::size_of::<f64>(),
        };
        std::mem::size_of::<Self>() + heap
    }
}

/// One response line.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Echo of the request id.
    pub id: String,
    /// The planner's route tag (e.g. `l2-qp`, `hamming-sat`), or `error`.
    pub route: String,
    /// The outcome, or an error message.
    pub result: Result<Outcome, String>,
}

impl Response {
    /// Parses a line produced by [`Response::to_json_line`] back into a
    /// response — the inverse the cross-replica cache fill needs: a replica
    /// that computed an explanation ships the response *line*, and the
    /// receiving replica reconstructs the `(route, result)` body to cache.
    /// Faithful by construction: floats are printed shortest-roundtrip, so
    /// `parse(line).to_json_line() == line` for every line the serializer
    /// emits (pinned in the tests below). Error responses come back with
    /// route `"error"`; the route of a failed compute is not serialized,
    /// and error lines render without it, so the bytes still agree.
    pub fn from_json_line(line: &str) -> Result<Response, String> {
        let v = crate::json::parse_bytes(line.as_bytes())?;
        if !matches!(v, Value::Object(_)) {
            return Err("response must be a JSON object".into());
        }
        let id = v.get("id").and_then(Value::as_str).ok_or("missing `id` member")?.to_string();
        match v.get("ok") {
            Some(Value::Bool(true)) => {}
            Some(Value::Bool(false)) => {
                let msg = v.get("error").and_then(Value::as_str).ok_or("missing `error`")?;
                return Ok(Response { id, route: "error".into(), result: Err(msg.to_string()) });
            }
            _ => return Err("missing `ok` member".into()),
        }
        let route =
            v.get("route").and_then(Value::as_str).ok_or("missing `route` member")?.to_string();
        let floats = |key: &str| -> Result<Vec<f64>, String> {
            v.get(key)
                .and_then(Value::as_array)
                .ok_or_else(|| format!("`{key}` must be an array"))?
                .iter()
                .map(|x| x.as_f64().ok_or_else(|| format!("`{key}` must contain numbers")))
                .collect()
        };
        let outcome = if let Some(l) = v.get("label") {
            match l.as_str() {
                Some("+") => Outcome::Label(Label::Positive),
                Some("-") => Outcome::Label(Label::Negative),
                _ => return Err("`label` must be \"+\" or \"-\"".into()),
            }
        } else if v.get("reason").is_some() {
            let features = floats("reason")?.iter().map(|&x| x as usize).collect();
            let optimal = match v.get("optimal") {
                Some(Value::Bool(b)) => *b,
                _ => return Err("missing `optimal` member".into()),
            };
            Outcome::Reason { features, optimal }
        } else if let Some(Value::Bool(sufficient)) = v.get("sufficient") {
            let witness = match v.get("witness") {
                None => None,
                Some(_) => Some(floats("witness")?),
            };
            Outcome::Check { sufficient: *sufficient, witness }
        } else if let Some(cf) = v.get("counterfactual") {
            match cf {
                Value::Null => Outcome::NoCounterfactual,
                _ => {
                    let point = floats("counterfactual")?;
                    let dist = v.get("dist").and_then(Value::as_f64).ok_or("missing `dist`")?;
                    let proven = match v.get("proven") {
                        Some(Value::Bool(b)) => *b,
                        _ => return Err("missing `proven` member".into()),
                    };
                    Outcome::Counterfactual { point, dist, proven }
                }
            }
        } else {
            return Err("response carries no recognizable outcome member".into());
        };
        Ok(Response { id, route, result: Ok(outcome) })
    }

    /// Serializes to the deterministic JSON line.
    pub fn to_json_line(&self) -> String {
        let mut members = vec![("id".to_string(), Value::String(self.id.clone()))];
        match &self.result {
            Err(msg) => {
                members.push(("ok".to_string(), Value::Bool(false)));
                members.push(("error".to_string(), Value::String(msg.clone())));
            }
            Ok(outcome) => {
                members.push(("ok".to_string(), Value::Bool(true)));
                members.push(("route".to_string(), Value::String(self.route.clone())));
                match outcome {
                    Outcome::Label(l) => {
                        members.push((
                            "label".to_string(),
                            Value::String(
                                if *l == Label::Positive { "+" } else { "-" }.to_string(),
                            ),
                        ));
                    }
                    Outcome::Reason { features, optimal } => {
                        members.push((
                            "reason".to_string(),
                            Value::Array(
                                features.iter().map(|&i| Value::Number(i as f64)).collect(),
                            ),
                        ));
                        members.push(("optimal".to_string(), Value::Bool(*optimal)));
                    }
                    Outcome::Check { sufficient, witness } => {
                        members.push(("sufficient".to_string(), Value::Bool(*sufficient)));
                        if let Some(w) = witness {
                            members.push((
                                "witness".to_string(),
                                Value::Array(w.iter().map(|&x| Value::Number(x)).collect()),
                            ));
                        }
                    }
                    Outcome::Counterfactual { point, dist, proven } => {
                        members.push((
                            "counterfactual".to_string(),
                            Value::Array(point.iter().map(|&x| Value::Number(x)).collect()),
                        ));
                        members.push(("dist".to_string(), Value::Number(*dist)));
                        members.push(("proven".to_string(), Value::Bool(*proven)));
                    }
                    Outcome::NoCounterfactual => {
                        members.push(("counterfactual".to_string(), Value::Null));
                    }
                }
            }
        }
        Value::Object(members).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let line = r#"{"id":"a","cmd":"check-sr","metric":"hamming","k":3,"point":[1,0,1],"features":[2,0,2]}"#;
        let r = Request::from_json_line(line, "0").unwrap();
        assert_eq!(r.kind, QueryKind::CheckSr);
        assert_eq!(r.metric, Metric::Hamming);
        assert_eq!(r.k, 3);
        assert_eq!(r.features, Some(vec![0, 2]), "features sorted + deduped");
        let r2 = Request::from_json_line(&r.to_json_line(), "0").unwrap();
        assert_eq!(r, r2);
    }

    #[test]
    fn defaults_applied() {
        let r = Request::from_json_line(r#"{"cmd":"classify","point":[0.5]}"#, "17").unwrap();
        assert_eq!(r.id, "17");
        assert_eq!(r.metric, Metric::L2);
        assert_eq!(r.k, 1);
    }

    #[test]
    fn metric_normalization() {
        assert_eq!(Metric::parse("lp:2"), Ok(Metric::L2));
        assert_eq!(Metric::parse("lp:1"), Ok(Metric::L1));
        assert_eq!(Metric::parse("lp:7"), Ok(Metric::Lp(7)));
        assert!(Metric::parse("lp:0").is_err());
        assert!(Metric::parse("cosine").is_err());
    }

    #[test]
    fn malformed_requests_rejected() {
        for bad in [
            "not json",
            "[1,2]",
            r#"{"cmd":"fly","point":[1]}"#,
            r#"{"cmd":"classify"}"#,
            r#"{"cmd":"classify","point":[]}"#,
            r#"{"cmd":"classify","point":[1],"k":-3}"#,
            r#"{"cmd":"classify","point":[1],"k":4294967297}"#,
            r#"{"cmd":"classify","point":["a"]}"#,
        ] {
            assert!(Request::from_json_line(bad, "0").is_err(), "{bad}");
        }
    }

    #[test]
    fn cache_key_ignores_id_but_not_payload() {
        let a =
            Request::from_json_line(r#"{"id":"a","cmd":"classify","point":[1,2]}"#, "0").unwrap();
        let b =
            Request::from_json_line(r#"{"id":"b","cmd":"classify","point":[1,2]}"#, "1").unwrap();
        let c =
            Request::from_json_line(r#"{"id":"a","cmd":"classify","point":[1,3]}"#, "2").unwrap();
        assert_eq!(a.cache_key(), b.cache_key());
        assert_ne!(a.cache_key(), c.cache_key());
    }

    #[test]
    fn response_lines_are_compact_json() {
        let ok = Response {
            id: "q".into(),
            route: "l2-qp".into(),
            result: Ok(Outcome::Counterfactual { point: vec![1.0, 2.5], dist: 2.0, proven: true }),
        };
        assert_eq!(
            ok.to_json_line(),
            r#"{"id":"q","ok":true,"route":"l2-qp","counterfactual":[1,2.5],"dist":2,"proven":true}"#
        );
        let err = Response { id: "q".into(), route: "error".into(), result: Err("boom".into()) };
        assert_eq!(err.to_json_line(), r#"{"id":"q","ok":false,"error":"boom"}"#);
    }

    /// `from_json_line` is a faithful inverse of `to_json_line` — the
    /// property the cross-replica cache fill rides on: an entry rebuilt
    /// from the shipped response line must re-serialize to the exact bytes
    /// the computing replica would have sent.
    #[test]
    fn response_parse_roundtrips_every_outcome() {
        let cases = vec![
            Response {
                id: "a".into(),
                route: "kdtree".into(),
                result: Ok(Outcome::Label(Label::Positive)),
            },
            Response {
                id: "b".into(),
                route: "h-sat".into(),
                result: Ok(Outcome::Label(Label::Negative)),
            },
            Response {
                id: "c".into(),
                route: "greedy".into(),
                result: Ok(Outcome::Reason { features: vec![0, 3, 7], optimal: false }),
            },
            Response {
                id: "d".into(),
                route: "l2-lp".into(),
                result: Ok(Outcome::Check { sufficient: true, witness: None }),
            },
            Response {
                id: "e".into(),
                route: "l2-lp".into(),
                result: Ok(Outcome::Check {
                    sufficient: false,
                    witness: Some(vec![0.1, -2.5, 1.0 / 3.0]),
                }),
            },
            Response {
                id: "f".into(),
                route: "l2-qp".into(),
                result: Ok(Outcome::Counterfactual {
                    point: vec![1.0, 2.5, -0.0],
                    dist: 0.30000000000000004,
                    proven: true,
                }),
            },
            Response {
                id: "g".into(),
                route: "l2-qp".into(),
                result: Ok(Outcome::NoCounterfactual),
            },
            Response { id: "h".into(), route: "error".into(), result: Err("no dataset".into()) },
        ];
        for want in cases {
            let line = want.to_json_line();
            let got = Response::from_json_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(got, want, "{line}");
            assert_eq!(got.to_json_line(), line, "re-serialization must be byte-identical");
        }
        for bad in ["not json", "[1]", r#"{"id":"x"}"#, r#"{"id":"x","ok":true,"route":"r"}"#] {
            assert!(Response::from_json_line(bad).is_err(), "{bad}");
        }
    }
}
