//! A small, dependency-free JSON reader/writer for the engine's wire format.
//!
//! The offline build has no `serde_json`, and the engine's determinism
//! guarantee needs full control of the output bytes anyway: objects preserve
//! insertion order, numbers that are mathematically integers print without a
//! fractional part, and other floats print via Rust's shortest round-trip
//! formatting. Two [`Value`]s that are `==` therefore always serialize to
//! identical bytes.

use std::fmt;

/// A JSON value. Objects are ordered association lists (insertion order is
/// preserved and significant for serialization).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a compact, deterministic JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self);
        out
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(x) => write_number(out, *x),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(members) => {
            out.push('{');
            for (i, (k, val)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_number(out: &mut String, x: f64) {
    use fmt::Write;
    if !x.is_finite() {
        // JSON has no Inf/NaN; the engine never emits them, but be safe.
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 9.0e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document, requiring it to span the entire input.
pub fn parse(text: &str) -> Result<Value, String> {
    parse_bytes(text.as_bytes())
}

/// [`parse`] over raw bytes. Total: any byte sequence — including invalid
/// UTF-8 — yields `Ok` or `Err`, never a panic. This is the entry point for
/// network input, where a peer controls every byte on the wire.
pub fn parse_bytes(bytes: &[u8]) -> Result<Value, String> {
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            None => Err("unexpected end of input".into()),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(_) => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        // The consumed bytes are all ASCII (digits, signs, `.`, `e`), but stay
        // total anyway: network input must never be able to panic the parser.
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        let v: f64 = s.parse().map_err(|_| format!("bad number `{s}` at byte {start}"))?;
        if !v.is_finite() {
            return Err(format!("non-finite number `{s}` at byte {start}"));
        }
        Ok(Value::Number(v))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for the engine's
                            // ASCII wire format; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let text = r#"{"id":"q1","k":3,"point":[1,2.5,-3e-2],"ok":true,"w":null}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("q1"));
        assert_eq!(v.get("k").unwrap().as_u64(), Some(3));
        let pt = v.get("point").unwrap().as_array().unwrap();
        assert_eq!(pt.len(), 3);
        assert_eq!(pt[1].as_f64(), Some(2.5));
        assert_eq!(v.to_json(), r#"{"id":"q1","k":3,"point":[1,2.5,-0.03],"ok":true,"w":null}"#);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::Number(2.0).to_json(), "2");
        assert_eq!(Value::Number(2.5).to_json(), "2.5");
        assert_eq!(Value::Number(-0.0).to_json(), "0");
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{41}"));
        assert_eq!(Value::String("x\ty\n".into()).to_json(), r#""x\ty\n""#);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1e999").is_err(), "overflow to inf rejected");
    }

    #[test]
    fn parse_bytes_total_on_invalid_utf8() {
        assert!(parse_bytes(b"\"\xff\xfe\"").is_err(), "invalid UTF-8 inside a string");
        assert!(parse_bytes(b"{\"a\xff\":1}").is_err(), "invalid UTF-8 inside a key");
        assert!(parse_bytes(b"\xff").is_err(), "invalid UTF-8 as a bare token");
        assert_eq!(parse_bytes(b"[1,2]").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }
}
