//! A small LRU cache for completed explanations.
//!
//! The engine's responses are pure functions of `(dataset, config, request)`,
//! so caching is transparent: a hit returns byte-identical output to a
//! recompute, and the determinism guarantee survives any interleaving of
//! hits and misses across workers.
//!
//! Recency is tracked with a monotone tick and a `BTreeMap<tick, key>` side
//! index, giving `O(log n)` get / insert / evict without unsafe code or an
//! intrusive list.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// Lifetime counters of one [`LruCache`] (see [`LruCache::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found their key.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Entries currently held.
    pub entries: usize,
    /// The capacity bound (0 = cache disabled).
    pub capacity: usize,
    /// Estimated heap bytes of the held entries (sum of the weights passed
    /// to [`LruCache::insert_weighted`]; plain inserts weigh 0).
    pub bytes: u64,
}

/// A least-recently-used map with a fixed capacity.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Sum of the held entries' byte weights (maintained on insert /
    /// replace / evict, so reading it never walks the map).
    bytes: u64,
    map: HashMap<K, (V, u64, u64)>,
    recency: BTreeMap<u64, K>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries (0 disables it).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            bytes: 0,
            map: HashMap::new(),
            recency: BTreeMap::new(),
        }
    }

    /// Lifetime hit/miss/eviction counters plus the current size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
            capacity: self.capacity,
            bytes: self.bytes,
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let found = self.lookup(key).is_some();
        self.record(found);
        // Re-borrow immutably (lookup already bumped recency).
        self.map.get(key).map(|(v, _, _)| v)
    }

    /// [`LruCache::get`] without touching the hit/miss counters, returning
    /// a mutable reference. Callers that need to *inspect* an entry before
    /// deciding whether it counts as a hit (epoch revalidation) pair this
    /// with an explicit [`LruCache::record`].
    pub fn lookup(&mut self, key: &K) -> Option<&mut V> {
        let (_, old_tick, _) = self.map.get(key)?;
        let old_tick = *old_tick;
        self.tick += 1;
        let tick = self.tick;
        self.recency.remove(&old_tick);
        self.recency.insert(tick, key.clone());
        let entry = self.map.get_mut(key).unwrap();
        entry.1 = tick;
        Some(&mut entry.0)
    }

    /// Records the outcome of a [`LruCache::lookup`]-based probe in the
    /// hit/miss counters.
    pub fn record(&mut self, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used entry
    /// when over capacity. No-op when the capacity is 0.
    pub fn insert(&mut self, key: K, value: V) {
        self.insert_weighted(key, value, 0);
    }

    /// [`LruCache::insert`] with an estimated byte weight for the entry,
    /// maintained in [`CacheStats::bytes`] across replacements and
    /// evictions. The weight is accounting only — eviction is still purely
    /// count-based, so weighing entries cannot change which keys survive
    /// (and therefore cannot perturb response bytes).
    pub fn insert_weighted(&mut self, key: K, value: V, bytes: u64) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, old_tick, old_bytes)) = self.map.get(&key) {
            self.bytes -= *old_bytes;
            self.recency.remove(&{ *old_tick });
        }
        self.recency.insert(tick, key.clone());
        self.bytes += bytes;
        self.map.insert(key, (value, tick, bytes));
        while self.map.len() > self.capacity {
            let (_, victim) = self.recency.pop_first().expect("recency tracks every entry");
            if let Some((_, _, b)) = self.map.remove(&victim) {
                self.bytes -= b;
            }
            self.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // refresh a; b is now LRU
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // refresh + new value; b is LRU
        c.insert("c", 3);
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), None);
    }

    #[test]
    fn stats_track_hits_misses_evictions() {
        let mut c = LruCache::new(2);
        assert_eq!(c.stats(), CacheStats { capacity: 2, ..CacheStats::default() });
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"z"), None);
        c.insert("c", 3); // evicts b
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.entries), (1, 1, 1, 2));
    }

    #[test]
    fn byte_weights_track_replacement_and_eviction() {
        let mut c = LruCache::new(2);
        c.insert_weighted("a", 1, 100);
        c.insert_weighted("b", 2, 10);
        assert_eq!(c.stats().bytes, 110);
        c.insert_weighted("a", 3, 40); // replace: 100 → 40
        assert_eq!(c.stats().bytes, 50);
        c.insert_weighted("c", 4, 5); // evicts b (LRU): −10
        let s = c.stats();
        assert_eq!((s.bytes, s.entries, s.evictions), (45, 2, 1));
        // Unweighted inserts coexist at weight 0.
        c.insert("d", 5); // evicts a: −40
        assert_eq!(c.stats().bytes, 5);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        c.insert("a", 1);
        assert!(c.is_empty());
        assert_eq!(c.get(&"a"), None);
    }
}
