//! A small LRU cache for completed explanations.
//!
//! The engine's responses are pure functions of `(dataset, config, request)`,
//! so caching is transparent: a hit returns byte-identical output to a
//! recompute, and the determinism guarantee survives any interleaving of
//! hits and misses across workers.
//!
//! Recency is tracked with a monotone tick and a `BTreeMap<tick, key>` side
//! index, giving `O(log n)` get / insert / evict without unsafe code or an
//! intrusive list.

use crate::request::Request;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// Folds `bytes` into an FNV-1a state (the same platform-stable hash the
/// cluster's rendezvous placement uses — `std`'s hashers are seeded per
/// process and therefore useless for cross-process agreement).
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A deterministic, process-stable 64-bit digest of everything that
/// determines a request's answer — the router-visible equivalent of
/// [`Request::cache_key`]. Two requests have equal affinity hashes whenever
/// their cache keys are equal (same `kind`, `metric`, `k`, point *bits*,
/// `features`; the `id` is excluded), so a router that consistently sends
/// equal-hash queries to the same replica sends every cacheable repeat to
/// the replica that already holds the answer. FNV-1a over the canonical
/// field encoding: stable across processes, platforms, and restarts, which
/// is what lets the router compute it without loading the dataset or
/// building any artifact.
pub fn affinity_hash(req: &Request) -> u64 {
    let mut h = fnv1a(0xcbf29ce484222325, req.kind.name().as_bytes());
    h = fnv1a(h, &[0xff]);
    h = fnv1a(h, req.metric.name().as_bytes());
    h = fnv1a(h, &[0xff]);
    h = fnv1a(h, &req.k.to_le_bytes());
    h = fnv1a(h, &(req.point.len() as u64).to_le_bytes());
    for x in &req.point {
        h = fnv1a(h, &x.to_bits().to_le_bytes());
    }
    match &req.features {
        None => h = fnv1a(h, &[0x00]),
        Some(f) => {
            h = fnv1a(h, &[0x01]);
            h = fnv1a(h, &(f.len() as u64).to_le_bytes());
            for &i in f {
                h = fnv1a(h, &(i as u64).to_le_bytes());
            }
        }
    }
    h
}

/// Lifetime counters of one [`LruCache`] (see [`LruCache::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found their key.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
    /// Entries currently held.
    pub entries: usize,
    /// The capacity bound (0 = cache disabled).
    pub capacity: usize,
    /// Estimated heap bytes of the held entries (sum of the weights passed
    /// to [`LruCache::insert_weighted`]; plain inserts weigh 0).
    pub bytes: u64,
}

/// A least-recently-used map with a fixed capacity.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Sum of the held entries' byte weights (maintained on insert /
    /// replace / evict, so reading it never walks the map).
    bytes: u64,
    map: HashMap<K, (V, u64, u64)>,
    recency: BTreeMap<u64, K>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries (0 disables it).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            bytes: 0,
            map: HashMap::new(),
            recency: BTreeMap::new(),
        }
    }

    /// Lifetime hit/miss/eviction counters plus the current size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
            capacity: self.capacity,
            bytes: self.bytes,
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let found = self.lookup(key).is_some();
        self.record(found);
        // Re-borrow immutably (lookup already bumped recency).
        self.map.get(key).map(|(v, _, _)| v)
    }

    /// [`LruCache::get`] without touching the hit/miss counters, returning
    /// a mutable reference. Callers that need to *inspect* an entry before
    /// deciding whether it counts as a hit (epoch revalidation) pair this
    /// with an explicit [`LruCache::record`].
    pub fn lookup(&mut self, key: &K) -> Option<&mut V> {
        let (_, old_tick, _) = self.map.get(key)?;
        let old_tick = *old_tick;
        self.tick += 1;
        let tick = self.tick;
        self.recency.remove(&old_tick);
        self.recency.insert(tick, key.clone());
        let entry = self.map.get_mut(key).unwrap();
        entry.1 = tick;
        Some(&mut entry.0)
    }

    /// Records the outcome of a [`LruCache::lookup`]-based probe in the
    /// hit/miss counters.
    pub fn record(&mut self, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used entry
    /// when over capacity. No-op when the capacity is 0.
    pub fn insert(&mut self, key: K, value: V) {
        self.insert_weighted(key, value, 0);
    }

    /// [`LruCache::insert`] with an estimated byte weight for the entry,
    /// maintained in [`CacheStats::bytes`] across replacements and
    /// evictions. The weight is accounting only — eviction is still purely
    /// count-based, so weighing entries cannot change which keys survive
    /// (and therefore cannot perturb response bytes).
    pub fn insert_weighted(&mut self, key: K, value: V, bytes: u64) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some((_, old_tick, old_bytes)) = self.map.get(&key) {
            self.bytes -= *old_bytes;
            self.recency.remove(&{ *old_tick });
        }
        self.recency.insert(tick, key.clone());
        self.bytes += bytes;
        self.map.insert(key, (value, tick, bytes));
        while self.map.len() > self.capacity {
            let (_, victim) = self.recency.pop_first().expect("recency tracks every entry");
            if let Some((_, _, b)) = self.map.remove(&victim) {
                self.bytes -= b;
            }
            self.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // refresh a; b is now LRU
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // refresh + new value; b is LRU
        c.insert("c", 3);
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), None);
    }

    #[test]
    fn stats_track_hits_misses_evictions() {
        let mut c = LruCache::new(2);
        assert_eq!(c.stats(), CacheStats { capacity: 2, ..CacheStats::default() });
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"z"), None);
        c.insert("c", 3); // evicts b
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions, s.entries), (1, 1, 1, 2));
    }

    #[test]
    fn byte_weights_track_replacement_and_eviction() {
        let mut c = LruCache::new(2);
        c.insert_weighted("a", 1, 100);
        c.insert_weighted("b", 2, 10);
        assert_eq!(c.stats().bytes, 110);
        c.insert_weighted("a", 3, 40); // replace: 100 → 40
        assert_eq!(c.stats().bytes, 50);
        c.insert_weighted("c", 4, 5); // evicts b (LRU): −10
        let s = c.stats();
        assert_eq!((s.bytes, s.entries, s.evictions), (45, 2, 1));
        // Unweighted inserts coexist at weight 0.
        c.insert("d", 5); // evicts a: −40
        assert_eq!(c.stats().bytes, 5);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        c.insert("a", 1);
        assert!(c.is_empty());
        assert_eq!(c.get(&"a"), None);
    }

    /// Mirrors `cache_key_ignores_id_but_not_payload`: the affinity hash
    /// must agree with cache-key equality (ignore `id`, track everything
    /// that determines the answer) or the router would split one key's
    /// repeats across replicas.
    #[test]
    fn affinity_hash_tracks_cache_key_equality() {
        let parse = |line: &str| Request::from_json_line(line, "0").unwrap();
        let a = parse(r#"{"id":"a","cmd":"classify","point":[1,2]}"#);
        let b = parse(r#"{"id":"b","cmd":"classify","point":[1,2]}"#);
        assert_eq!(affinity_hash(&a), affinity_hash(&b), "id must not shift the hash");
        for other in [
            r#"{"id":"a","cmd":"classify","point":[1,3]}"#,
            r#"{"id":"a","cmd":"classify","point":[1,2],"k":3}"#,
            r#"{"id":"a","cmd":"classify","metric":"l1","point":[1,2]}"#,
            r#"{"id":"a","cmd":"minimal-sr","point":[1,2]}"#,
            r#"{"id":"a","cmd":"check-sr","point":[1,2],"features":[0]}"#,
        ] {
            assert_ne!(affinity_hash(&a), affinity_hash(&parse(other)), "{other}");
        }
    }

    /// The hash is a pinned function of the canonical fields: a new
    /// process, machine, or release computing a different value would
    /// silently de-affinitize every cache in a mixed-version cluster.
    #[test]
    fn affinity_hash_is_process_stable() {
        let r = Request::from_json_line(
            r#"{"id":"x","cmd":"counterfactual","metric":"hamming","k":3,"point":[1,0,1]}"#,
            "0",
        )
        .unwrap();
        assert_eq!(affinity_hash(&r), affinity_hash(&r.clone()));
        assert_eq!(affinity_hash(&r), 0x64a3979e2c691c8a);
    }
}
