//! Repro bundles: self-contained, deterministic reproduction artifacts.
//!
//! A bundle packages everything needed to re-derive a set of served
//! response lines from scratch in a fresh process: the tenant's **seed
//! text** (the dataset as loaded), the **replay ops** that took it from
//! epoch 0 to the latest captured epoch (the same canonical
//! `{"op":...}` items the `load` verb's `"replay"` member takes), the
//! **engine config** members that influence response bytes, and the
//! captured `(request line, served response line)` pairs tagged with the
//! epoch each ran at.
//!
//! Why this is sound: the stack's load-bearing invariant says every
//! response line is a pure function of `(dataset at the query's epoch,
//! config, request)`. The seed plus a prefix of the replay ops
//! reconstructs the dataset at *any* captured epoch bit-for-bit (the
//! `VersionedDataset::to_text` contract), so re-executing a captured
//! request in a fresh engine must reproduce the served bytes exactly —
//! any diff is a real divergence (broken build, corrupted state, or a
//! violated invariant), never replay noise.
//!
//! Serialization is the engine's deterministic JSON writer over a
//! canonical member order, so `serialize → parse → serialize` is
//! byte-identical (pinned by proptest).

use crate::json::{parse, Value};
use crate::{textfmt, EngineConfig, ExplanationEngine, Mutation, Request, Response};
use knn_space::Label;

/// Format tag of the bundle envelope (`"xknn_bundle"` member).
pub const BUNDLE_VERSION: u64 = 1;

/// One captured query inside a bundle: the raw request line, the served
/// response line, and where/when it ran.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BundleEntry {
    /// Server connection the query arrived on.
    pub conn: u64,
    /// Line number within that connection (the server's default id).
    pub seq: u64,
    /// Backend id when the bundle was assembled by the cluster router
    /// (entries from different backends may share `(conn, seq)`).
    pub backend: Option<u64>,
    /// Dataset epoch the served answer was computed at.
    pub epoch: u64,
    /// Flight-recorder trace id, if the query was traced.
    pub trace: Option<String>,
    /// The raw request line, byte-exact.
    pub request: String,
    /// The served response line, byte-exact — what replay must reproduce.
    pub response: String,
}

/// A self-contained reproduction artifact (see module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct ReproBundle {
    /// Tenant name (labels the bundle; replay loads it as this name).
    pub tenant: String,
    /// The engine config the responses were served under. `workers` is
    /// parallelism only, but `effort_budget` (plan demotion) changes
    /// response bytes and the rest is carried for faithfulness.
    pub config: EngineConfig,
    /// The dataset seed in `+/-` text form (epoch 0).
    pub seed: String,
    /// The mutations applied since the seed, oldest first: op `i` is the
    /// epoch `i → i+1` transition, so a prefix of length `e` reconstructs
    /// epoch `e` exactly.
    pub replay: Vec<Mutation>,
    /// The captured queries to re-execute.
    pub entries: Vec<BundleEntry>,
}

/// Builds the canonical `{"op":...}` JSON value for a mutation — the same
/// shape `knn_delta::Mutation::op_json` renders as text and the `load`
/// verb's `"replay"` member parses.
pub fn mutation_to_op(m: &Mutation) -> Value {
    match m {
        Mutation::Insert { point, label } => Value::Object(vec![
            ("op".to_string(), Value::String("insert".to_string())),
            ("label".to_string(), Value::String(label.to_string())),
            ("point".to_string(), Value::Array(point.iter().map(|v| Value::Number(*v)).collect())),
        ]),
        Mutation::Remove { id } => Value::Object(vec![
            ("op".to_string(), Value::String("remove".to_string())),
            ("index".to_string(), Value::Number(*id as f64)),
        ]),
    }
}

/// Parses one canonical `{"op":...}` item back into a [`Mutation`] — the
/// inverse of [`mutation_to_op`], shared with the server protocol's
/// `load`-replay parsing.
pub fn mutation_from_op(v: &Value) -> Result<Mutation, String> {
    if !matches!(v, Value::Object(_)) {
        return Err("replay items must be objects".into());
    }
    match v.get("op").and_then(Value::as_str) {
        Some("insert") => {
            let label = match v.get("label").and_then(Value::as_str) {
                Some("+") => Label::Positive,
                Some("-") => Label::Negative,
                _ => return Err("insert ops need `label` of \"+\" or \"-\"".into()),
            };
            let point = match v.get("point") {
                Some(Value::Array(a)) if !a.is_empty() => a
                    .iter()
                    .map(|x| x.as_f64().ok_or_else(|| "`point` must contain numbers".to_string()))
                    .collect::<Result<Vec<f64>, String>>()?,
                _ => return Err("insert ops need a non-empty `point` array".into()),
            };
            Ok(Mutation::Insert { point, label })
        }
        Some("remove") => match v.get("index").and_then(Value::as_u64) {
            Some(id) => Ok(Mutation::Remove { id: id as usize }),
            None => Err("remove ops need a non-negative `index`".into()),
        },
        _ => Err("replay items need `op` of \"insert\" or \"remove\"".into()),
    }
}

fn member_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("bundle member `{key}` must be a non-negative integer"))
}

fn member_string(v: &Value, key: &str) -> Result<String, String> {
    match v.get(key) {
        Some(Value::String(s)) => Ok(s.clone()),
        _ => Err(format!("bundle member `{key}` must be a string")),
    }
}

impl BundleEntry {
    fn to_value(&self) -> Value {
        let mut members = vec![
            ("conn".to_string(), Value::Number(self.conn as f64)),
            ("seq".to_string(), Value::Number(self.seq as f64)),
        ];
        if let Some(b) = self.backend {
            members.push(("backend".to_string(), Value::Number(b as f64)));
        }
        members.push(("epoch".to_string(), Value::Number(self.epoch as f64)));
        if let Some(t) = &self.trace {
            members.push(("trace".to_string(), Value::String(t.clone())));
        }
        members.push(("request".to_string(), Value::String(self.request.clone())));
        members.push(("response".to_string(), Value::String(self.response.clone())));
        Value::Object(members)
    }

    fn from_value(v: &Value) -> Result<BundleEntry, String> {
        Ok(BundleEntry {
            conn: member_u64(v, "conn")?,
            seq: member_u64(v, "seq")?,
            backend: match v.get("backend") {
                None => None,
                Some(x) => Some(
                    x.as_u64().ok_or("bundle member `backend` must be a non-negative integer")?,
                ),
            },
            epoch: member_u64(v, "epoch")?,
            trace: match v.get("trace") {
                None => None,
                Some(Value::String(s)) => Some(s.clone()),
                Some(_) => return Err("bundle member `trace` must be a string".into()),
            },
            request: member_string(v, "request")?,
            response: member_string(v, "response")?,
        })
    }
}

/// One replayed entry whose re-executed bytes differ from the served ones.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayDivergence {
    /// Capture reference of the diverged entry.
    pub conn: u64,
    /// See `conn`.
    pub seq: u64,
    /// Backend id when router-assembled.
    pub backend: Option<u64>,
    /// Epoch the entry was served (and replayed) at.
    pub epoch: u64,
    /// The served response line the bundle recorded.
    pub expected: String,
    /// The line the replay produced instead.
    pub got: String,
}

/// The outcome of [`ReproBundle::replay`].
#[derive(Clone, Debug, PartialEq)]
pub struct ReplayReport {
    /// Tenant replayed.
    pub tenant: String,
    /// Entries re-executed.
    pub checked: usize,
    /// Epoch the replay engine finished at.
    pub final_epoch: u64,
    /// Entries whose bytes did not match (empty = clean replay).
    pub divergences: Vec<ReplayDivergence>,
}

impl ReproBundle {
    /// Serializes to one canonical JSON line. Deterministic: equal bundles
    /// always produce identical bytes, and parsing the output back
    /// re-serializes to the same bytes.
    pub fn to_json(&self) -> String {
        let mut members = vec![
            ("xknn_bundle".to_string(), Value::Number(BUNDLE_VERSION as f64)),
            ("tenant".to_string(), Value::String(self.tenant.clone())),
            (
                "config".to_string(),
                Value::Object(vec![
                    ("workers".to_string(), Value::Number(self.config.workers as f64)),
                    (
                        "cache_capacity".to_string(),
                        Value::Number(self.config.cache_capacity as f64),
                    ),
                    (
                        "effort_budget".to_string(),
                        match self.config.effort_budget {
                            Some(b) => Value::Number(b as f64),
                            None => Value::Null,
                        },
                    ),
                    ("eager_l2_regions".to_string(), Value::Bool(self.config.eager_l2_regions)),
                ]),
            ),
            ("seed".to_string(), Value::String(self.seed.clone())),
            ("replay".to_string(), Value::Array(self.replay.iter().map(mutation_to_op).collect())),
        ];
        members.push((
            "entries".to_string(),
            Value::Array(self.entries.iter().map(BundleEntry::to_value).collect()),
        ));
        Value::Object(members).to_json()
    }

    /// Parses a bundle produced by [`to_json`](ReproBundle::to_json).
    pub fn from_json(text: &str) -> Result<ReproBundle, String> {
        let v = parse(text.trim())?;
        if !matches!(v, Value::Object(_)) {
            return Err("bundle must be a JSON object".into());
        }
        match v.get("xknn_bundle").and_then(Value::as_u64) {
            Some(BUNDLE_VERSION) => {}
            Some(other) => return Err(format!("unsupported bundle version {other}")),
            None => return Err("missing `xknn_bundle` version tag".into()),
        }
        let cfg = v.get("config").ok_or("missing `config`")?;
        let config = EngineConfig {
            workers: member_u64(cfg, "workers")? as usize,
            cache_capacity: member_u64(cfg, "cache_capacity")? as usize,
            effort_budget: match cfg.get("effort_budget") {
                None | Some(Value::Null) => None,
                Some(x) => Some(
                    x.as_u64().ok_or("`effort_budget` must be null or a non-negative integer")?,
                ),
            },
            eager_l2_regions: match cfg.get("eager_l2_regions") {
                Some(Value::Bool(b)) => *b,
                _ => return Err("`eager_l2_regions` must be a boolean".into()),
            },
        };
        let replay = match v.get("replay") {
            Some(Value::Array(items)) => {
                items.iter().map(mutation_from_op).collect::<Result<Vec<Mutation>, String>>()?
            }
            _ => return Err("`replay` must be an array".into()),
        };
        let entries = match v.get("entries") {
            Some(Value::Array(items)) => items
                .iter()
                .map(BundleEntry::from_value)
                .collect::<Result<Vec<BundleEntry>, String>>()?,
            _ => return Err("`entries` must be an array".into()),
        };
        Ok(ReproBundle {
            tenant: member_string(&v, "tenant")?,
            config,
            seed: member_string(&v, "seed")?,
            replay,
            entries,
        })
    }

    /// Re-executes every captured entry in a fresh engine and byte-diffs
    /// the results against the recorded response lines.
    ///
    /// Entries are replayed in `(epoch, backend, conn, seq)` order so the
    /// replay engine's epoch only ever advances; each entry's epoch is
    /// reached by applying the bundle's replay-op prefix. The recorded
    /// response line supplies the request's default id (responses always
    /// echo the resolved id, so the server-side line number need not be
    /// known here).
    pub fn replay(&self) -> Result<ReplayReport, String> {
        let data = textfmt::parse_dataset(&self.seed).map_err(|e| format!("bad seed: {e}"))?;
        let engine = ExplanationEngine::new(data, self.config.clone());
        let mut entries: Vec<&BundleEntry> = self.entries.iter().collect();
        entries.sort_by_key(|e| (e.epoch, e.backend, e.conn, e.seq));
        let mut applied: usize = 0;
        let mut divergences = Vec::new();
        for entry in &entries {
            if (entry.epoch as usize) > self.replay.len() {
                return Err(format!(
                    "entry (conn {}, seq {}) at epoch {} but the bundle carries only {} replay ops",
                    entry.conn,
                    entry.seq,
                    entry.epoch,
                    self.replay.len()
                ));
            }
            while (applied as u64) < entry.epoch {
                engine
                    .apply(self.replay[applied].clone())
                    .map_err(|e| format!("replay op {applied} rejected: {e}"))?;
                applied += 1;
            }
            let expected = Response::from_json_line(&entry.response).map_err(|e| {
                format!("entry (conn {}, seq {}): bad response: {e}", entry.conn, entry.seq)
            })?;
            let req =
                Request::from_json_bytes(entry.request.as_bytes(), &expected.id).map_err(|e| {
                    format!("entry (conn {}, seq {}): bad request: {e}", entry.conn, entry.seq)
                })?;
            let got = engine.run(&req).to_json_line();
            if got != entry.response {
                divergences.push(ReplayDivergence {
                    conn: entry.conn,
                    seq: entry.seq,
                    backend: entry.backend,
                    epoch: entry.epoch,
                    expected: entry.response.clone(),
                    got,
                });
            }
        }
        // Drain any trailing ops so the reported final epoch matches the
        // bundle's full log even when the last captures ran earlier.
        while applied < self.replay.len() {
            engine
                .apply(self.replay[applied].clone())
                .map_err(|e| format!("replay op {applied} rejected: {e}"))?;
            applied += 1;
        }
        Ok(ReplayReport {
            tenant: self.tenant.clone(),
            checked: entries.len(),
            final_epoch: engine.epoch(),
            divergences,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bundle() -> ReproBundle {
        ReproBundle {
            tenant: "hot".to_string(),
            config: EngineConfig::default(),
            seed: "+ 1 1\n+ 1 0.5\n- 0 0\n- 0 0.25\n".to_string(),
            replay: vec![
                Mutation::Insert { point: vec![2.0, 2.0], label: Label::Positive },
                Mutation::Remove { id: 1 },
            ],
            entries: vec![
                BundleEntry {
                    conn: 1,
                    seq: 1,
                    epoch: 0,
                    request: r#"{"id":"a","cmd":"classify","point":[1,1]}"#.to_string(),
                    response: String::new(), // filled by the round-trip test
                    ..BundleEntry::default()
                },
                BundleEntry {
                    conn: 1,
                    seq: 2,
                    backend: Some(1),
                    epoch: 2,
                    trace: Some("t-9".to_string()),
                    request: r#"{"id":"b","cmd":"classify","point":[0,0]}"#.to_string(),
                    response: String::new(),
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip_is_byte_identical() {
        let b = sample_bundle();
        let text = b.to_json();
        let parsed = ReproBundle::from_json(&text).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.to_json(), text);
        assert!(text.starts_with(r#"{"xknn_bundle":1,"tenant":"hot","config":{"workers":0"#));
    }

    #[test]
    fn op_values_match_the_delta_text_rendering() {
        for m in [
            Mutation::Insert {
                point: vec![1.0, 0.5, -0.0, 0.30000000000000004],
                label: Label::Negative,
            },
            Mutation::Remove { id: 7 },
        ] {
            assert_eq!(mutation_to_op(&m).to_json(), m.op_json());
            assert_eq!(mutation_from_op(&mutation_to_op(&m)).unwrap().op_json(), m.op_json());
        }
    }

    #[test]
    fn malformed_bundles_and_ops_are_rejected() {
        for bad in [
            "not json",
            "[1]",
            r#"{"tenant":"x"}"#,
            r#"{"xknn_bundle":9,"tenant":"x"}"#,
            r#"{"xknn_bundle":1,"tenant":"x","config":{"workers":0,"cache_capacity":0,"eager_l2_regions":false},"seed":"+ 1","replay":[{"op":"fly"}],"entries":[]}"#,
            r#"{"xknn_bundle":1,"tenant":"x","config":{"workers":0,"cache_capacity":0,"eager_l2_regions":false},"seed":"+ 1","replay":[],"entries":[{"conn":0}]}"#,
        ] {
            assert!(ReproBundle::from_json(bad).is_err(), "{bad}");
        }
        assert!(mutation_from_op(&Value::Null).is_err());
        assert!(
            mutation_from_op(&parse(r#"{"op":"insert","label":"+","point":[]}"#).unwrap()).is_err()
        );
        assert!(mutation_from_op(&parse(r#"{"op":"remove"}"#).unwrap()).is_err());
    }

    #[test]
    fn replay_reproduces_and_detects_divergence() {
        // Serve the sample bundle's queries for real to fill in responses.
        let mut b = sample_bundle();
        let data = textfmt::parse_dataset(&b.seed).unwrap();
        let engine = ExplanationEngine::new(data, b.config.clone());
        let req_a = Request::from_json_bytes(b.entries[0].request.as_bytes(), "a").unwrap();
        b.entries[0].response = engine.run(&req_a).to_json_line();
        for op in &b.replay {
            engine.apply(op.clone()).unwrap();
        }
        let req_b = Request::from_json_bytes(b.entries[1].request.as_bytes(), "b").unwrap();
        b.entries[1].response = engine.run(&req_b).to_json_line();

        let report = b.replay().unwrap();
        assert_eq!((report.checked, report.final_epoch), (2, 2));
        assert!(report.divergences.is_empty(), "{:?}", report.divergences);

        // Corrupt one served byte (flip the label): replay must flag
        // exactly that entry.
        let mut corrupt = b.clone();
        corrupt.entries[1].response = if corrupt.entries[1].response.contains("\"label\":\"+\"") {
            corrupt.entries[1].response.replace("\"label\":\"+\"", "\"label\":\"-\"")
        } else {
            corrupt.entries[1].response.replace("\"label\":\"-\"", "\"label\":\"+\"")
        };
        assert_ne!(corrupt.entries[1].response, b.entries[1].response);
        let report = corrupt.replay().unwrap();
        assert_eq!(report.divergences.len(), 1);
        assert_eq!(report.divergences[0].seq, 2);
        assert_eq!(report.divergences[0].expected, corrupt.entries[1].response);
        assert_eq!(report.divergences[0].got, b.entries[1].response);

        // An entry claiming an epoch past the log is an error, not a diff.
        let mut over = b.clone();
        over.entries[1].epoch = 9;
        assert!(over.replay().unwrap_err().contains("replay ops"));
    }
}
