//! The labeled-dataset text format shared by the CLI and the network server.
//!
//! One point per line: a `+` / `-` label first, then whitespace- or
//! comma-separated feature values; `#` starts a comment. The format predates
//! the engine (it was the `xknn` CLI's input format), but the server's `load`
//! verb speaks it too, so the parser lives here where both front ends can
//! reach it.

use crate::artifacts::EngineData;
use knn_space::{ContinuousDataset, Label};

/// Parses one feature vector: comma- or whitespace-separated finite floats.
pub fn parse_point(s: &str) -> Result<Vec<f64>, String> {
    let toks: Vec<&str> =
        s.split(|c: char| c == ',' || c.is_whitespace()).filter(|t| !t.is_empty()).collect();
    if toks.is_empty() {
        return Err("empty point".into());
    }
    toks.iter()
        .map(|t| match t.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(v),
            Ok(_) => Err(format!("non-finite value `{t}`")),
            Err(_) => Err(format!("bad number `{t}`")),
        })
        .collect()
}

/// Parses a full dataset file (see the module docs for the format). The
/// boolean view is derived when every value in the file is 0 or 1.
pub fn parse_dataset(text: &str) -> Result<EngineData, String> {
    let mut points: Vec<(Vec<f64>, Label)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (label, rest) = match line.as_bytes()[0] {
            b'+' => (Label::Positive, &line[1..]),
            b'-' => (Label::Negative, &line[1..]),
            _ => return Err(format!("line {}: must start with `+` or `-` label", lineno + 1)),
        };
        let vals = parse_point(rest).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if let Some((first, _)) = points.first() {
            if first.len() != vals.len() {
                return Err(format!(
                    "line {}: dimension {} does not match first point's {}",
                    lineno + 1,
                    vals.len(),
                    first.len()
                ));
            }
        }
        points.push((vals, label));
    }
    if points.is_empty() {
        return Err("dataset file contains no points".into());
    }
    let dim = points[0].0.len();
    let mut continuous = ContinuousDataset::new(dim);
    for (vals, label) in points {
        continuous.push(vals, label);
    }
    Ok(EngineData::from_continuous(continuous))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boolean_file_gets_both_views() {
        let d = parse_dataset("# c\n+ 1 1 1\n+ 1,1,0 # t\n- 0 0 0\n- 0 0 1\n").unwrap();
        assert_eq!(d.continuous.len(), 4);
        assert_eq!(d.continuous.dim(), 3);
        assert_eq!(d.boolean.as_ref().unwrap().count_of(Label::Positive), 2);
    }

    #[test]
    fn continuous_file_has_no_boolean_view() {
        let d = parse_dataset("+ 2.0 2.0\n- -1.0 -1.0\n").unwrap();
        assert!(d.boolean.is_none());
    }

    #[test]
    fn malformed_files_rejected() {
        assert!(parse_dataset("").is_err());
        assert!(parse_dataset("x 1 2").is_err(), "missing label");
        assert!(parse_dataset("+ 1 2\n- 1 2 3").is_err(), "dimension mismatch");
        assert!(parse_dataset("+ 1 two").is_err(), "non-numeric");
        assert!(parse_dataset("+\n").is_err(), "empty point");
        assert!(parse_dataset("+ 1e309 0").is_err(), "overflow to inf");
        assert!(parse_dataset("+ NaN 0").is_err(), "NaN rejected");
    }
}
