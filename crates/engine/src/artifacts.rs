//! Shared, lazily-built artifacts over the engine's immutable dataset.
//!
//! Three families, all built at most once per engine and shared (via `Arc`)
//! by every worker:
//!
//! * **per-class neighbor indexes** — a KD-tree per `(ℓp, class)` and a
//!   bit-packed Hamming index per class. The optimistic rule of §2 reduces to
//!   comparing the `maj`-th order statistics of the per-class distance
//!   multisets, so classification needs exactly one `maj`-NN probe per class;
//! * **lazy Prop 1 region views** — a [`LazyRegions`] per `k`, feeding the
//!   `*_lazy` fast paths of the ℓ2 abductive and counterfactual engines.
//!   Construction is `O(n)`; regions are enumerated nearest-anchor-first per
//!   query and memoized (bounded) as they are visited, which is what lets
//!   the engine serve k ≥ 5 where the eager decomposition is infeasible;
//! * **eager Prop 1 region caches** — the fully materialized [`RegionCache`]
//!   per `k`, kept as the differential-testing oracle behind
//!   `EngineConfig::eager_l2_regions`;
//! * the **boolean view** of a 0/1 continuous dataset, owned by
//!   [`EngineData`] itself.
//!
//! Each family's map mutex is held only long enough to fetch (or create) the
//! per-key cell; the build itself runs under the cell's `OnceLock`, so
//! concurrent requesters of the *same* artifact block and share one build
//! while distinct artifacts (e.g. region caches for k = 1 and k = 3) build
//! in parallel.

use knn_core::regions::{LazyRegions, RegionCache};
use knn_index::{HammingIndex, KdTree};
use knn_space::{BitVec, BooleanDataset, ContinuousDataset, Label, LpMetric, OddK};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex, OnceLock};

/// The engine's immutable dataset: the continuous view always, the boolean
/// view when every coordinate is 0/1.
#[derive(Clone, Debug)]
pub struct EngineData {
    /// Continuous view.
    pub continuous: ContinuousDataset<f64>,
    /// Boolean view, when the data is binary.
    pub boolean: Option<BooleanDataset>,
}

impl EngineData {
    /// Wraps pre-built views.
    pub fn new(continuous: ContinuousDataset<f64>, boolean: Option<BooleanDataset>) -> Self {
        EngineData { continuous, boolean }
    }

    /// Builds from the continuous view alone, deriving the boolean view when
    /// every value is 0 or 1.
    pub fn from_continuous(continuous: ContinuousDataset<f64>) -> Self {
        let all_binary = continuous.iter().all(|(p, _)| p.iter().all(|&v| v == 0.0 || v == 1.0));
        let boolean = all_binary.then(|| {
            let mut ds = BooleanDataset::new(continuous.dim());
            for (p, label) in continuous.iter() {
                ds.push(
                    BitVec::from_bools(&p.iter().map(|&v| v == 1.0).collect::<Vec<_>>()),
                    label,
                );
            }
            ds
        });
        EngineData { continuous, boolean }
    }
}

/// A keyed family of build-once artifacts: the map mutex guards only cell
/// lookup/creation, and each cell's `OnceLock` serializes same-key builds
/// while distinct keys build concurrently.
#[derive(Debug)]
struct Family<K, V> {
    cells: Mutex<HashMap<K, Arc<OnceLock<Arc<V>>>>>,
}

impl<K: Eq + Hash + Clone, V> Default for Family<K, V> {
    fn default() -> Self {
        Family { cells: Mutex::new(HashMap::new()) }
    }
}

impl<K: Eq + Hash + Clone, V> Family<K, V> {
    fn get_or_build(&self, key: K, build: impl FnOnce() -> V) -> Arc<V> {
        let cell = self.cells.lock().unwrap().entry(key).or_default().clone();
        cell.get_or_init(|| Arc::new(build())).clone()
    }

    /// How many artifacts of this family have finished building.
    fn built_count(&self) -> usize {
        self.cells.lock().unwrap().values().filter(|c| c.get().is_some()).count()
    }
}

/// Lazily-built shared artifacts (see module docs).
#[derive(Debug, Default)]
pub struct ArtifactStore {
    kd_class: Family<(u32, Label), KdTree>,
    hamming_class: Family<Label, HammingIndex>,
    l2_regions: Family<u32, RegionCache<f64>>,
    l2_lazy: Family<u32, LazyRegions<f64>>,
}

impl ArtifactStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The KD-tree over the `label` class under ℓp, building it on first use.
    pub fn kd_class_index(&self, data: &EngineData, p: u32, label: Label) -> Arc<KdTree> {
        self.kd_class.get_or_build((p, label), || {
            KdTree::new(data.continuous.points_of(label), LpMetric::new(p))
        })
    }

    /// The Hamming index over the `label` class. The caller must have checked
    /// that the boolean view exists.
    pub fn hamming_class_index(&self, data: &EngineData, label: Label) -> Arc<HammingIndex> {
        self.hamming_class.get_or_build(label, || {
            let ds = data.boolean.as_ref().expect("hamming artifact needs the boolean view");
            HammingIndex::new(ds.points_of(label))
        })
    }

    /// The eager Prop 1 ℓ2 region cache for `k`, building it on first use.
    /// `O(n^k)` memory — the test-oracle path; serving uses
    /// [`ArtifactStore::l2_lazy_regions`].
    pub fn l2_regions(&self, data: &EngineData, k: OddK) -> Arc<RegionCache<f64>> {
        self.l2_regions.get_or_build(k.get(), || RegionCache::build(&data.continuous, k))
    }

    /// The lazy Prop 1 ℓ2 region view for `k`. Cheap to build; visited
    /// regions are memoized inside the view (bounded), so every worker
    /// sharing this artifact also shares the warm enumeration.
    pub fn l2_lazy_regions(&self, data: &EngineData, k: OddK) -> Arc<LazyRegions<f64>> {
        self.l2_lazy.get_or_build(k.get(), || LazyRegions::new(&data.continuous, k))
    }

    /// How many artifacts (across all families) have finished building —
    /// the `artifacts_built` observability counter of the server's `stats`
    /// verb, so operators can tell a cold tenant (expensive first queries
    /// ahead) from a warmed one.
    pub fn built_count(&self) -> usize {
        self.kd_class.built_count()
            + self.hamming_class.built_count()
            + self.l2_regions.built_count()
            + self.l2_lazy.built_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> EngineData {
        let ds = ContinuousDataset::from_sets(
            vec![vec![1.0, 1.0], vec![1.0, 0.0]],
            vec![vec![0.0, 0.0], vec![0.0, 1.0]],
        );
        EngineData::from_continuous(ds)
    }

    #[test]
    fn binary_data_gets_boolean_view() {
        let d = toy();
        assert!(d.boolean.is_some());
        assert_eq!(d.boolean.as_ref().unwrap().count_of(Label::Positive), 2);
        let nonbin = EngineData::from_continuous(ContinuousDataset::from_sets(
            vec![vec![0.5]],
            vec![vec![0.0]],
        ));
        assert!(nonbin.boolean.is_none());
    }

    #[test]
    fn artifacts_are_shared_not_rebuilt() {
        let d = toy();
        let store = ArtifactStore::new();
        let a = store.kd_class_index(&d, 2, Label::Positive);
        let b = store.kd_class_index(&d, 2, Label::Positive);
        assert!(Arc::ptr_eq(&a, &b), "same artifact instance on the second request");
        let r1 = store.l2_regions(&d, OddK::ONE);
        let r2 = store.l2_regions(&d, OddK::ONE);
        assert!(Arc::ptr_eq(&r1, &r2));
        assert!(!r1.entries(Label::Positive).is_empty());
        let l1 = store.l2_lazy_regions(&d, OddK::ONE);
        let l2 = store.l2_lazy_regions(&d, OddK::ONE);
        assert!(Arc::ptr_eq(&l1, &l2));
        assert_eq!(l1.memoized(), 0, "lazy view starts empty — nothing visited yet");
    }
}
