//! Shared, lazily-built artifacts over the engine's immutable dataset.
//!
//! Three families, all built at most once per engine and shared (via `Arc`)
//! by every worker:
//!
//! * **per-class neighbor indexes** — a KD-tree per `(ℓp, class)` and a
//!   bit-packed Hamming index per class. The optimistic rule of §2 reduces to
//!   comparing the `maj`-th order statistics of the per-class distance
//!   multisets, so classification needs exactly one `maj`-NN probe per class;
//! * **lazy Prop 1 region views** — a [`LazyRegions`] per `k`, feeding the
//!   `*_lazy` fast paths of the ℓ2 abductive and counterfactual engines.
//!   Construction is `O(n)`; regions are enumerated nearest-anchor-first per
//!   query and memoized (bounded) as they are visited, which is what lets
//!   the engine serve k ≥ 5 where the eager decomposition is infeasible;
//! * **eager Prop 1 region caches** — the fully materialized [`RegionCache`]
//!   per `k`, kept as the differential-testing oracle behind
//!   `EngineConfig::eager_l2_regions`;
//! * the **boolean view** of a 0/1 continuous dataset, owned by
//!   [`EngineData`] itself.
//!
//! Each family's map mutex is held only long enough to fetch (or create) the
//! per-key cell; the build itself runs under the cell's `OnceLock`, so
//! concurrent requesters of the *same* artifact block and share one build
//! while distinct artifacts (e.g. region caches for k = 1 and k = 3) build
//! in parallel.

use knn_core::regions::{LazyRegions, RegionCache, RegionCounters};
use knn_index::{HammingIndex, KdTree};
use knn_space::{BitVec, BooleanDataset, ContinuousDataset, Label, LpMetric, OddK};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Lifetime artifact-build accounting, shared (via `Arc`) across every
/// [`ArtifactStore::carry_over`] generation of one engine so the totals
/// survive mutations. Plain relaxed atomics — always on; the cost is paid
/// only by the worker that actually runs a build.
#[derive(Debug, Default)]
pub struct StoreMetrics {
    build_nanos: AtomicU64,
    built: AtomicU64,
    carried: AtomicU64,
}

impl StoreMetrics {
    /// Total nanoseconds spent inside artifact builders so far. The
    /// engine's per-query artifact phase is the delta of this across one
    /// execution (attribution is approximate when builds race, exact when
    /// one query pays for its own build — the common case).
    pub fn build_nanos(&self) -> u64 {
        self.build_nanos.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> StoreMetricsSnapshot {
        StoreMetricsSnapshot {
            build_us: self.build_nanos.load(Ordering::Relaxed) / 1_000,
            built: self.built.load(Ordering::Relaxed),
            carried: self.carried.load(Ordering::Relaxed),
        }
    }

    /// Runs `build` under the clock, charging its wall time and one build
    /// to the totals.
    fn time<T>(&self, build: impl FnOnce() -> T) -> T {
        let started = Instant::now();
        let value = build();
        self.build_nanos.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.built.fetch_add(1, Ordering::Relaxed);
        value
    }
}

/// Byte/occupancy accounting of one [`ArtifactStore`]'s completed cells
/// (see [`ArtifactStore::resources`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArtifactResources {
    /// Estimated bytes of completed index/region artifacts (KD-trees,
    /// Hamming indexes, eager region caches, lazy views' dataset copies).
    pub artifact_bytes: usize,
    /// Estimated bytes of the lazy views' bounded region memos.
    pub memo_bytes: usize,
    /// Entries held across all region memos (prune verdicts included).
    pub memo_len: usize,
    /// Combined insert bound of those memos (the fill gauge denominator).
    pub memo_cap: usize,
}

/// An owned copy of [`StoreMetrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreMetricsSnapshot {
    /// Total wall time spent inside artifact builders, µs.
    pub build_us: u64,
    /// Artifact cells built over the engine's lifetime (rebuilds after
    /// invalidation included — contrast with the live
    /// [`ArtifactStore::built_count`]).
    pub built: u64,
    /// Completed cells carried across mutations instead of rebuilt.
    pub carried: u64,
}

/// The engine's immutable dataset: the continuous view always, the boolean
/// view when every coordinate is 0/1.
#[derive(Clone, Debug)]
pub struct EngineData {
    /// Continuous view.
    pub continuous: ContinuousDataset<f64>,
    /// Boolean view, when the data is binary.
    pub boolean: Option<BooleanDataset>,
}

impl EngineData {
    /// Wraps pre-built views.
    pub fn new(continuous: ContinuousDataset<f64>, boolean: Option<BooleanDataset>) -> Self {
        EngineData { continuous, boolean }
    }

    /// Builds from the continuous view alone, deriving the boolean view when
    /// every value is 0 or 1.
    pub fn from_continuous(continuous: ContinuousDataset<f64>) -> Self {
        let all_binary = continuous.iter().all(|(p, _)| p.iter().all(|&v| v == 0.0 || v == 1.0));
        let boolean = all_binary.then(|| {
            let mut ds = BooleanDataset::new(continuous.dim());
            for (p, label) in continuous.iter() {
                ds.push(
                    BitVec::from_bools(&p.iter().map(|&v| v == 1.0).collect::<Vec<_>>()),
                    label,
                );
            }
            ds
        });
        EngineData { continuous, boolean }
    }

    /// The view after appending one labeled point: a clone plus an `O(d)`
    /// update instead of [`EngineData::from_continuous`]'s full re-scan —
    /// the mutation layer's per-epoch derivation cost. Semantics match a
    /// re-derivation exactly: a non-0/1 insert drops the boolean view (the
    /// dataset is no longer binary), and a view inconsistent with the
    /// continuous one (hand-built test data) falls back to re-deriving.
    pub fn with_insert(&self, point: &[f64], label: Label) -> EngineData {
        let binary = point.iter().all(|&v| v == 0.0 || v == 1.0);
        let mut continuous = self.continuous.clone();
        continuous.push(point.to_vec(), label);
        let boolean = match &self.boolean {
            Some(b)
                if binary
                    && b.dim() == self.continuous.dim()
                    && b.len() == self.continuous.len() =>
            {
                let mut b = b.clone();
                b.push(
                    BitVec::from_bools(&point.iter().map(|&v| v == 1.0).collect::<Vec<_>>()),
                    label,
                );
                Some(b)
            }
            Some(_) if binary => return EngineData::from_continuous(continuous),
            // A binary insert cannot make a non-binary dataset binary, and
            // a non-binary insert un-binaries any dataset.
            _ => None,
        };
        EngineData { continuous, boolean }
    }

    /// The view after removing the `id`-th point (see
    /// [`EngineData::with_insert`]). When there was no boolean view, the
    /// removal may have deleted the last non-0/1 point, so fresh-load
    /// semantics require a re-derivation.
    pub fn with_remove(&self, id: usize) -> EngineData {
        let mut continuous = self.continuous.clone();
        continuous.remove(id);
        match &self.boolean {
            Some(b) if b.dim() == self.continuous.dim() && b.len() == self.continuous.len() => {
                let mut b = b.clone();
                b.remove(id);
                EngineData { continuous, boolean: Some(b) }
            }
            _ => EngineData::from_continuous(continuous),
        }
    }
}

/// A keyed family of build-once artifacts: the map mutex guards only cell
/// lookup/creation, and each cell's `OnceLock` serializes same-key builds
/// while distinct keys build concurrently.
#[derive(Debug)]
struct Family<K, V> {
    cells: Mutex<HashMap<K, Arc<OnceLock<Arc<V>>>>>,
}

impl<K: Eq + Hash + Clone, V> Default for Family<K, V> {
    fn default() -> Self {
        Family { cells: Mutex::new(HashMap::new()) }
    }
}

impl<K: Eq + Hash + Clone, V> Family<K, V> {
    fn get_or_build(&self, key: K, build: impl FnOnce() -> V) -> Arc<V> {
        let cell = self.cells.lock().unwrap().entry(key).or_default().clone();
        cell.get_or_init(|| Arc::new(build())).clone()
    }

    /// How many artifacts of this family have finished building.
    fn built_count(&self) -> usize {
        self.cells.lock().unwrap().values().filter(|c| c.get().is_some()).count()
    }

    /// Folds `weigh` over the *completed* artifacts. In-flight builds
    /// contribute nothing — their memory is transient and unobservable
    /// without blocking on the build.
    fn built_bytes(&self, weigh: impl Fn(&V) -> usize) -> usize {
        self.cells.lock().unwrap().values().filter_map(|c| c.get()).map(|v| weigh(v)).sum()
    }

    /// A new family holding the *completed* artifacts whose key passes
    /// `keep`, each behind a fresh cell. Copying only finished builds
    /// matters: an in-flight build shares its old cell and must complete
    /// into the *old* family only — it is computing over the pre-mutation
    /// dataset, and the new family must never serve it.
    fn carry(&self, keep: impl Fn(&K) -> bool) -> Family<K, V> {
        let cells = self.cells.lock().unwrap();
        let kept = cells
            .iter()
            .filter(|(k, _)| keep(k))
            .filter_map(|(k, cell)| {
                cell.get().map(|v| {
                    let fresh = OnceLock::new();
                    let _ = fresh.set(v.clone());
                    (k.clone(), Arc::new(fresh))
                })
            })
            .collect();
        Family { cells: Mutex::new(kept) }
    }
}

/// Lazily-built shared artifacts (see module docs).
#[derive(Debug, Default)]
pub struct ArtifactStore {
    kd_class: Family<(u32, Label), KdTree>,
    hamming_class: Family<Label, HammingIndex>,
    l2_regions: Family<u32, RegionCache<f64>>,
    l2_lazy: Family<u32, LazyRegions<f64>>,
    /// Build-time accounting, shared across carry-over generations.
    metrics: Arc<StoreMetrics>,
    /// Region-enumeration counters every lazy view (any `k`, any
    /// generation) records into, so prune/yield totals are engine-wide.
    region_counters: Arc<RegionCounters>,
}

impl ArtifactStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The KD-tree over the `label` class under ℓp, building it on first use.
    pub fn kd_class_index(&self, data: &EngineData, p: u32, label: Label) -> Arc<KdTree> {
        self.kd_class.get_or_build((p, label), || {
            self.metrics.time(|| KdTree::new(data.continuous.points_of(label), LpMetric::new(p)))
        })
    }

    /// The Hamming index over the `label` class. The caller must have checked
    /// that the boolean view exists.
    pub fn hamming_class_index(&self, data: &EngineData, label: Label) -> Arc<HammingIndex> {
        self.hamming_class.get_or_build(label, || {
            self.metrics.time(|| {
                let ds = data.boolean.as_ref().expect("hamming artifact needs the boolean view");
                HammingIndex::new(ds.points_of(label))
            })
        })
    }

    /// The eager Prop 1 ℓ2 region cache for `k`, building it on first use.
    /// `O(n^k)` memory — the test-oracle path; serving uses
    /// [`ArtifactStore::l2_lazy_regions`].
    pub fn l2_regions(&self, data: &EngineData, k: OddK) -> Arc<RegionCache<f64>> {
        self.l2_regions
            .get_or_build(k.get(), || self.metrics.time(|| RegionCache::build(&data.continuous, k)))
    }

    /// The lazy Prop 1 ℓ2 region view for `k`. Cheap to build; visited
    /// regions are memoized inside the view (bounded), so every worker
    /// sharing this artifact also shares the warm enumeration.
    pub fn l2_lazy_regions(&self, data: &EngineData, k: OddK) -> Arc<LazyRegions<f64>> {
        self.l2_lazy.get_or_build(k.get(), || {
            self.metrics.time(|| {
                LazyRegions::with_counters(&data.continuous, k, self.region_counters.clone())
            })
        })
    }

    /// Build-time accounting (engine-lifetime — survives carry-overs).
    pub fn metrics(&self) -> &Arc<StoreMetrics> {
        &self.metrics
    }

    /// The engine-wide region-enumeration counters (see
    /// [`RegionCounters`]).
    pub fn region_counters(&self) -> &Arc<RegionCounters> {
        &self.region_counters
    }

    /// How many artifacts (across all families) have finished building —
    /// the `artifacts_built` observability counter of the server's `stats`
    /// verb, so operators can tell a cold tenant (expensive first queries
    /// ahead) from a warmed one.
    pub fn built_count(&self) -> usize {
        self.kd_class.built_count()
            + self.hamming_class.built_count()
            + self.l2_regions.built_count()
            + self.l2_lazy.built_count()
    }

    /// Estimated bytes and memo occupancy of the completed artifacts — the
    /// `artifact` / `memo` components of the engine's resource gauges. One
    /// pass over the cell maps; never triggers or waits for a build. Byte
    /// figures are estimates (element payloads + container headers), not
    /// allocator-exact — see DESIGN.md §7c for the estimation rules.
    pub fn resources(&self) -> ArtifactResources {
        let mut r = ArtifactResources::default();
        r.artifact_bytes += self.kd_class.built_bytes(|t| t.approx_bytes());
        r.artifact_bytes += self.hamming_class.built_bytes(|h| h.approx_bytes());
        r.artifact_bytes += self.l2_regions.built_bytes(|c| c.approx_bytes());
        // Lazy views split: the owned dataset copy counts as artifact, the
        // bounded memos as the separately-capped memo component.
        r.artifact_bytes += self.l2_lazy.built_bytes(|l| l.approx_bytes() - l.memo_bytes());
        r.memo_bytes += self.l2_lazy.built_bytes(|l| l.memo_bytes());
        r.memo_len += self.l2_lazy.built_bytes(|l| l.memoized());
        r.memo_cap += self.l2_lazy.built_bytes(|l| l.memo_cap());
        r
    }

    /// The store for the epoch after a mutation of class `mutated`: the
    /// *other* class's neighbor indexes (KD-trees, Hamming index) are
    /// carried over — a mutation cannot change a class it did not touch,
    /// and inserts append / removals preserve the survivors' order, so the
    /// untouched class's index inputs are identical at both epochs. Every
    /// region artifact is dropped: Prop 1 regions are built from
    /// cross-class point pairs, so any mutation invalidates them for every
    /// `k`. (The invalidation matrix lives in DESIGN.md §3d.)
    pub fn carry_over(&self, mutated: Label) -> ArtifactStore {
        let next = ArtifactStore {
            kd_class: self.kd_class.carry(|&(_, label)| label != mutated),
            hamming_class: self.hamming_class.carry(|&label| label != mutated),
            l2_regions: Family::default(),
            l2_lazy: Family::default(),
            metrics: self.metrics.clone(),
            region_counters: self.region_counters.clone(),
        };
        self.metrics.carried.fetch_add(next.built_count() as u64, Ordering::Relaxed);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> EngineData {
        let ds = ContinuousDataset::from_sets(
            vec![vec![1.0, 1.0], vec![1.0, 0.0]],
            vec![vec![0.0, 0.0], vec![0.0, 1.0]],
        );
        EngineData::from_continuous(ds)
    }

    #[test]
    fn binary_data_gets_boolean_view() {
        let d = toy();
        assert!(d.boolean.is_some());
        assert_eq!(d.boolean.as_ref().unwrap().count_of(Label::Positive), 2);
        let nonbin = EngineData::from_continuous(ContinuousDataset::from_sets(
            vec![vec![0.5]],
            vec![vec![0.0]],
        ));
        assert!(nonbin.boolean.is_none());
    }

    #[test]
    fn artifacts_are_shared_not_rebuilt() {
        let d = toy();
        let store = ArtifactStore::new();
        let a = store.kd_class_index(&d, 2, Label::Positive);
        let b = store.kd_class_index(&d, 2, Label::Positive);
        assert!(Arc::ptr_eq(&a, &b), "same artifact instance on the second request");
        let r1 = store.l2_regions(&d, OddK::ONE);
        let r2 = store.l2_regions(&d, OddK::ONE);
        assert!(Arc::ptr_eq(&r1, &r2));
        assert!(!r1.entries(Label::Positive).is_empty());
        let l1 = store.l2_lazy_regions(&d, OddK::ONE);
        let l2 = store.l2_lazy_regions(&d, OddK::ONE);
        assert!(Arc::ptr_eq(&l1, &l2));
        assert_eq!(l1.memoized(), 0, "lazy view starts empty — nothing visited yet");
    }

    #[test]
    fn incremental_views_match_full_rederivation() {
        let mut ds = ContinuousDataset::from_sets(vec![vec![1.0, 0.0]], vec![vec![0.0, 1.0]]);
        ds.push(vec![0.5, 0.5], Label::Positive); // non-binary
        let d = EngineData::from_continuous(ds);
        assert!(d.boolean.is_none());
        // Removing the only non-binary point resurrects the boolean view
        // (fresh-load semantics).
        let removed = d.with_remove(2);
        assert!(removed.boolean.is_some());
        assert_eq!(removed.continuous.len(), 2);
        // A binary insert extends the view; a non-binary one drops it.
        let grown = removed.with_insert(&[1.0, 1.0], Label::Negative);
        let b = grown.boolean.as_ref().unwrap();
        assert_eq!((b.len(), b.label(2)), (3, Label::Negative));
        assert!(b.point(2).get(0) && b.point(2).get(1));
        let degraded = grown.with_insert(&[0.25, 1.0], Label::Positive);
        assert!(degraded.boolean.is_none());
        assert_eq!(degraded.continuous.len(), 4);
    }

    #[test]
    fn carry_over_keeps_the_untouched_class_and_drops_the_rest() {
        let d = toy();
        let store = ArtifactStore::new();
        let pos_kd = store.kd_class_index(&d, 2, Label::Positive);
        let neg_kd = store.kd_class_index(&d, 2, Label::Negative);
        let neg_ham = store.hamming_class_index(&d, Label::Negative);
        store.l2_regions(&d, OddK::ONE);
        store.l2_lazy_regions(&d, OddK::ONE);
        assert_eq!(store.built_count(), 5);

        let next = store.carry_over(Label::Positive);
        assert_eq!(next.built_count(), 2, "negative KD + negative Hamming survive");
        // The surviving artifacts are the same instances, not rebuilds.
        assert!(Arc::ptr_eq(&neg_kd, &next.kd_class_index(&d, 2, Label::Negative)));
        assert!(Arc::ptr_eq(&neg_ham, &next.hamming_class_index(&d, Label::Negative)));
        // The mutated class rebuilds fresh.
        assert!(!Arc::ptr_eq(&pos_kd, &next.kd_class_index(&d, 2, Label::Positive)));
        assert_eq!(next.built_count(), 3);
    }
}
