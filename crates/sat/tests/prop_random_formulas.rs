//! Property tests for the CDCL solver: on arbitrary small formulas (clauses
//! plus guarded and unguarded cardinality constraints), the solver's verdict
//! must match exhaustive enumeration, and every `Sat` model must actually
//! satisfy every constraint.

use knn_sat::{Lit, SolveResult, Solver, Var};
use proptest::prelude::*;

/// One literal per variable index (no duplicate / complementary pairs).
#[derive(Clone, Debug)]
struct CardSpec {
    guard: Option<(usize, bool)>,
    lits: Vec<(usize, bool)>,
    bound: u32,
}

#[derive(Clone, Debug)]
struct Formula {
    nvars: usize,
    clauses: Vec<Vec<(usize, bool)>>,
    cards: Vec<CardSpec>,
}

fn clause_strategy(nvars: usize) -> impl Strategy<Value = Vec<(usize, bool)>> {
    prop::collection::btree_map(0..nvars, any::<bool>(), 1..=3.min(nvars))
        .prop_map(|m| m.into_iter().collect())
}

fn card_strategy(nvars: usize) -> impl Strategy<Value = CardSpec> {
    (
        prop::option::of((0..nvars, any::<bool>())),
        prop::collection::btree_map(0..nvars, any::<bool>(), 2..=nvars),
        1..=4u32,
    )
        .prop_map(|(guard, lits, bound)| CardSpec {
            guard,
            lits: lits.into_iter().collect(),
            bound,
        })
}

fn formula_strategy() -> impl Strategy<Value = Formula> {
    (3..=9usize).prop_flat_map(|nvars| {
        (
            prop::collection::vec(clause_strategy(nvars), 0..8),
            prop::collection::vec(card_strategy(nvars), 0..4),
        )
            .prop_map(move |(clauses, cards)| Formula { nvars, clauses, cards })
    })
}

fn lit_true(assign: u32, (v, pos): (usize, bool)) -> bool {
    ((assign >> v) & 1 == 1) == pos
}

fn brute_force(f: &Formula) -> Option<u32> {
    'outer: for assign in 0u32..(1 << f.nvars) {
        for c in &f.clauses {
            if !c.iter().any(|&l| lit_true(assign, l)) {
                continue 'outer;
            }
        }
        for card in &f.cards {
            let active = card.guard.is_none_or(|g| lit_true(assign, g));
            if active {
                let sum = card.lits.iter().filter(|&&l| lit_true(assign, l)).count();
                if (sum as u32) < card.bound {
                    continue 'outer;
                }
            }
        }
        return Some(assign);
    }
    None
}

fn build_solver(f: &Formula) -> Solver {
    let mut s = Solver::new();
    let vars: Vec<Var> = s.new_vars(f.nvars);
    for c in &f.clauses {
        let lits: Vec<Lit> = c.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
        s.add_clause(&lits);
    }
    for card in &f.cards {
        let lits: Vec<Lit> = card.lits.iter().map(|&(v, pos)| vars[v].lit(pos)).collect();
        let guard = card.guard.map(|(v, pos)| vars[v].lit(pos));
        s.add_card_ge(guard, &lits, card.bound);
    }
    s
}

fn model_satisfies(f: &Formula, s: &Solver) -> bool {
    let val = |v: usize| s.value(Var(v as u32)).unwrap_or(false);
    let lit = |(v, pos): (usize, bool)| val(v) == pos;
    f.clauses.iter().all(|c| c.iter().any(|&l| lit(l)))
        && f.cards.iter().all(|card| {
            let active = card.guard.is_none_or(&lit);
            !active || card.lits.iter().filter(|&&l| lit(l)).count() as u32 >= card.bound
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Verdict matches exhaustive enumeration; models check out.
    #[test]
    fn solver_matches_brute_force(f in formula_strategy()) {
        let brute = brute_force(&f);
        let mut s = build_solver(&f);
        match s.solve() {
            SolveResult::Sat => {
                prop_assert!(brute.is_some(), "solver SAT but brute force UNSAT");
                prop_assert!(model_satisfies(&f, &s), "model violates a constraint");
            }
            SolveResult::Unsat => {
                prop_assert!(brute.is_none(), "solver UNSAT but {:?} works", brute);
            }
        }
    }

    /// Solving twice (incremental reuse) gives the same verdict, and solving
    /// under assumptions is consistent with adding unit clauses.
    #[test]
    fn assumptions_agree_with_unit_clauses(f in formula_strategy(), pol in any::<bool>()) {
        let mut s = build_solver(&f);
        let first = s.solve();
        let again = s.solve();
        prop_assert_eq!(first, again, "re-solve changed the verdict");

        // Assume literal (v0, pol); compare with a fresh solver that adds it
        // as a unit clause.
        let assumption = Var(0).lit(pol);
        let with_assumption = s.solve_with(&[assumption]);
        let mut s2 = build_solver(&f);
        s2.add_clause(&[assumption]);
        let with_unit = s2.solve();
        prop_assert_eq!(with_assumption, with_unit);
        // And the original formula is still solvable as before afterwards.
        prop_assert_eq!(s.solve(), first, "assumptions leaked into the formula");
    }
}
