//! CNF encodings of cardinality constraints (sequential counter).
//!
//! These are the *baseline* against which native cardinality propagation is
//! ablated (`benches/substrates.rs`): the paper's pitch for
//! cardinality-cadical is precisely that native klauses beat CNF encodings.
//!
//! The encoding is Sinz's sequential counter for `Σ ℓᵢ ≤ k`, applied to
//! `Σ ℓᵢ ≥ b` via `Σ ¬ℓᵢ ≤ n − b`. A guard literal `g` weakens every emitted
//! clause with `¬g`, which gives exactly the guarded semantics
//! `g ⇒ (Σ ℓᵢ ≥ b)`.

use crate::lit::Lit;
use crate::solver::Solver;

/// Adds `guard ⇒ (Σ lits ≥ bound)` to `solver` as pure CNF using the
/// sequential-counter encoding (auxiliary variables are created internally).
pub fn add_card_ge_cnf(solver: &mut Solver, guard: Option<Lit>, lits: &[Lit], bound: u32) {
    if bound == 0 {
        return;
    }
    let n = lits.len();
    if (bound as usize) > n {
        match guard {
            Some(g) => {
                solver.add_clause(&[g.negate()]);
            }
            None => {
                // Unsatisfiable: encode with the empty clause.
                solver.add_clause(&[]);
            }
        }
        return;
    }
    // Σ lits ≥ bound  ⟺  Σ ¬lits ≤ n − bound.
    let k = (n as u32 - bound) as usize;
    let neg: Vec<Lit> = lits.iter().map(|l| l.negate()).collect();
    add_at_most_k(solver, guard, &neg, k);
}

/// Sinz sequential counter for `Σ lits ≤ k`, guard-weakened.
fn add_at_most_k(solver: &mut Solver, guard: Option<Lit>, lits: &[Lit], k: usize) {
    let n = lits.len();
    let emit = |solver: &mut Solver, clause: &mut Vec<Lit>| {
        if let Some(g) = guard {
            clause.push(g.negate());
        }
        solver.add_clause(clause);
    };
    if k == 0 {
        for &l in lits {
            emit(solver, &mut vec![l.negate()]);
        }
        return;
    }
    if n <= k {
        return; // trivially satisfied
    }
    // s[i][j] ⟺ at least j+1 of lits[0..=i] are true, for j < k.
    let mut s: Vec<Vec<Lit>> = Vec::with_capacity(n - 1);
    for _ in 0..n - 1 {
        s.push((0..k).map(|_| solver.new_var().pos()).collect());
    }
    // Base: l0 → s[0][0]; ¬s[0][j] for j ≥ 1.
    emit(solver, &mut vec![lits[0].negate(), s[0][0]]);
    for j in 1..k {
        emit(solver, &mut vec![s[0][j].negate()]);
    }
    for i in 1..n - 1 {
        // lᵢ → s[i][0]; s[i−1][0] → s[i][0]
        emit(solver, &mut vec![lits[i].negate(), s[i][0]]);
        emit(solver, &mut vec![s[i - 1][0].negate(), s[i][0]]);
        for j in 1..k {
            // lᵢ ∧ s[i−1][j−1] → s[i][j];  s[i−1][j] → s[i][j]
            emit(solver, &mut vec![lits[i].negate(), s[i - 1][j - 1].negate(), s[i][j]]);
            emit(solver, &mut vec![s[i - 1][j].negate(), s[i][j]]);
        }
        // Overflow: lᵢ ∧ s[i−1][k−1] → ⊥
        emit(solver, &mut vec![lits[i].negate(), s[i - 1][k - 1].negate()]);
    }
    // Last literal overflow.
    emit(solver, &mut vec![lits[n - 1].negate(), s[n - 2][k - 1].negate()]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    fn count_true(s: &Solver, vars: &[crate::lit::Var]) -> usize {
        vars.iter().filter(|&&v| s.value(v) == Some(true)).count()
    }

    #[test]
    fn cnf_at_least_sat() {
        let mut s = Solver::new();
        let v = s.new_vars(5);
        let lits: Vec<Lit> = v.iter().map(|x| x.pos()).collect();
        add_card_ge_cnf(&mut s, None, &lits, 3);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(count_true(&s, &v) >= 3);
    }

    #[test]
    fn cnf_at_least_unsat_when_too_many_forced_false() {
        let mut s = Solver::new();
        let v = s.new_vars(4);
        let lits: Vec<Lit> = v.iter().map(|x| x.pos()).collect();
        add_card_ge_cnf(&mut s, None, &lits, 3);
        s.add_clause(&[v[0].neg()]);
        s.add_clause(&[v[1].neg()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn cnf_guarded_matches_native_semantics() {
        let mut s = Solver::new();
        let g = s.new_var();
        let v = s.new_vars(3);
        let lits: Vec<Lit> = v.iter().map(|x| x.pos()).collect();
        add_card_ge_cnf(&mut s, Some(g.pos()), &lits, 3);
        s.add_clause(&[v[1].neg()]);
        // Guard must be forced off.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(g), Some(false));
        // Under the guard assumption it is unsat.
        assert_eq!(s.solve_with(&[g.pos()]), SolveResult::Unsat);
    }

    #[test]
    fn cnf_and_native_agree_exhaustively() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let n = rng.gen_range(2..7usize);
            let bound = rng.gen_range(1..=n as u32);
            let forced_false = rng.gen_range(0..=n);
            let build = |native: bool| -> bool {
                let mut s = Solver::new();
                let v = s.new_vars(n);
                let lits: Vec<Lit> = v.iter().map(|x| x.pos()).collect();
                if native {
                    s.add_card_ge(None, &lits, bound);
                } else {
                    add_card_ge_cnf(&mut s, None, &lits, bound);
                }
                for x in v.iter().take(forced_false) {
                    s.add_clause(&[x.neg()]);
                }
                s.solve() == SolveResult::Sat
            };
            assert_eq!(build(true), build(false), "n={n} bound={bound} ff={forced_false}");
        }
    }

    #[test]
    fn bound_exceeding_length() {
        let mut s = Solver::new();
        let v = s.new_vars(2);
        let lits: Vec<Lit> = v.iter().map(|x| x.pos()).collect();
        add_card_ge_cnf(&mut s, None, &lits, 3);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }
}
