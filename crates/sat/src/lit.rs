//! Variables and literals.

use std::fmt;

/// A propositional variable, numbered from 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(pub u32);

impl Var {
    /// Index into per-variable arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn pos(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    // Not `std::ops::Neg`: this constructs a `Lit` from a `Var`, it does not
    // negate a `Var` (the paired constructor is `pos`, mirroring DIMACS).
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Lit {
        Lit((self.0 << 1) | 1)
    }

    /// The literal of this variable with the given polarity.
    pub fn lit(self, positive: bool) -> Lit {
        if positive {
            self.pos()
        } else {
            self.neg()
        }
    }
}

/// A literal: a variable with a polarity, encoded as `var << 1 | sign`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub u32);

impl Lit {
    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True iff this is the positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Negation.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Index into per-literal arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "x{}", self.var().0)
        } else {
            write!(f, "¬x{}", self.var().0)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Three-valued assignment state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    Undef,
}

impl LBool {
    /// Truth value of a literal given its variable's assignment.
    pub fn of_lit(self, lit: Lit) -> LBool {
        match (self, lit.is_positive()) {
            (LBool::Undef, _) => LBool::Undef,
            (LBool::True, true) | (LBool::False, false) => LBool::True,
            _ => LBool::False,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let v = Var(3);
        assert_eq!(v.pos().index(), 6);
        assert_eq!(v.neg().index(), 7);
        assert_eq!(v.pos().negate(), v.neg());
        assert_eq!(v.neg().negate(), v.pos());
        assert_eq!(v.pos().var(), v);
        assert_eq!(v.neg().var(), v);
        assert!(v.pos().is_positive());
        assert!(!v.neg().is_positive());
        assert_eq!(v.lit(true), v.pos());
        assert_eq!(v.lit(false), v.neg());
    }

    #[test]
    fn lbool_of_lit() {
        assert_eq!(LBool::True.of_lit(Var(0).pos()), LBool::True);
        assert_eq!(LBool::True.of_lit(Var(0).neg()), LBool::False);
        assert_eq!(LBool::False.of_lit(Var(0).neg()), LBool::True);
        assert_eq!(LBool::Undef.of_lit(Var(0).pos()), LBool::Undef);
    }
}
